"""Reproduction-extra ablations (DESIGN.md section 4).

Not paper artifacts: quantify the individual design choices — PVS scan
choice, enumeration reorder, PML vs BFS oracle — plus microbenchmarks of
the core primitives (PML query, CAP edge processing).
"""

import random

import pytest

from benchmarks.conftest import ASSERT_SHAPES, SCALE, experiment_tables, numeric, show
from repro.datasets.registry import get_dataset


@pytest.fixture(scope="module")
def ablation_tables():
    return experiment_tables("exp8")


def test_ablation_scan_choice(benchmark, ablation_tables):
    table = ablation_tables["Ablation A"]
    show(table)
    if ASSERT_SHAPES:
        model_idx = table.headers.index("cost-model")
        in_idx = table.headers.index("forced in-scan")
        out_idx = table.headers.index("forced out-scan")
        for row in table.rows:
            best_forced = min(row[in_idx], row[out_idx])
            # cost-model choice tracks the better forced arm (2x headroom)
            assert row[model_idx] <= best_forced * 2 + 5

    bundle = get_dataset("dblp", SCALE)
    pml = bundle.pre.pml
    rng = random.Random(0)
    n = bundle.graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(1000)]

    def thousand_queries():
        for u, v in pairs:
            pml.distance(u, v)

    benchmark(thousand_queries)


def test_ablation_reorder(benchmark, ablation_tables):
    table = ablation_tables["Ablation B"]
    show(table)
    # identical match counts whatever the order
    re_idx = table.headers.index("matches (re)")
    draw_idx = table.headers.index("matches (draw)")
    for row in table.rows:
        assert row[re_idx] == row[draw_idx]

    bundle = get_dataset("wordnet", SCALE)
    graph = bundle.graph

    def two_hop_scan():
        from repro.indexing.twohop import two_hop_neighbors

        total = 0
        for v in range(0, graph.num_vertices, 37):
            total += len(two_hop_neighbors(graph, v))
        return total

    benchmark(two_hop_scan)


def test_ablation_oracle(benchmark, ablation_tables):
    table = ablation_tables["Ablation C"]
    show(table)
    matches_idx = table.headers.index("matches")
    values = numeric([row[matches_idx] for row in table.rows])
    assert len(set(values)) == 1  # PML and BFS oracles agree exactly

    bundle = get_dataset("dblp", SCALE)
    from repro.graph.algorithms import bfs_distances

    def one_bfs():
        return int(bfs_distances(bundle.graph, 0).max())

    benchmark(one_bfs)


def test_ablation_evaluators(benchmark, ablation_tables):
    table = ablation_tables["Ablation D"]
    show(table)
    if ASSERT_SHAPES:
        di_idx = table.headers.index("blended DI")
        dj_idx = table.headers.index("distance join")
        bu_idx = table.headers.index("BU")
        di_total = sum(numeric([row[di_idx] for row in table.rows]))
        dj_cells = [row[dj_idx] for row in table.rows]
        bu_cells = [row[bu_idx] for row in table.rows]
        dj_total = sum(numeric(dj_cells))
        # The blended engine beats both post-formulation evaluators in
        # aggregate (or they DNF outright).
        dj_dominated = any(c == "DNF" for c in dj_cells) or di_total < dj_total
        bu_dominated = any(c == "DNF" for c in bu_cells) or di_total < sum(
            numeric(bu_cells)
        )
        assert dj_dominated and bu_dominated

    from repro.baseline.distance_join import DistanceJoin
    from repro.workload.generator import instantiate

    bundle = get_dataset("dblp", SCALE)
    instance = instantiate("Q1", bundle.graph, seed=17, dataset="dblp")
    query = instance.build_query()

    benchmark.pedantic(
        lambda: DistanceJoin(
            bundle.make_context(), max_results=5000
        ).evaluate(query.copy()).srt_seconds,
        rounds=1,
        iterations=1,
    )
