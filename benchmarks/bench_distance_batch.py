"""Batched distance kernels vs the per-pair scalar loop — ``BENCH_batch.json``.

The ISSUE-4 acceptance criteria, pinned at bench scale:

1. **Fewer interpreter-level oracle invocations.**  A batched Run must
   issue at least ``CALL_REDUCTION_FACTOR`` (3x) fewer *Python-level*
   oracle calls (``oracle_calls``) than the scalar arm, for the *same*
   logical ``distance_queries`` total — the kernels change transport, not
   work.
2. **Not slower.**  Interleaved A/B (order alternated per repeat, per-arm
   minimum over ``REPEATS``): the batched arm's wall-clock must not exceed
   the scalar arm's by more than a small noise allowance.  The CI
   ``batch-kernels`` job enforces this.
3. **Bit-identical answers.**  Same matches, same counts, both arms —
   asserted unconditionally at every scale.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import pytest

from benchmarks.conftest import ASSERT_SHAPES, SCALE
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import session_for

REPEATS = 5
#: Minimum factor by which batching must cut Python-level oracle calls.
CALL_REDUCTION_FACTOR = 3.0
#: The batched arm may be at most this much slower (machine noise).
SLOWDOWN_ALLOWANCE = 1.10

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


@pytest.fixture(scope="module")
def bundle():
    return get_dataset("wordnet", SCALE)


@pytest.fixture(scope="module")
def instance(bundle):
    return exp3_instance("wordnet", "Q1", bundle.graph)


def _run_once(bundle, instance, batch_enabled):
    session = session_for(bundle)
    session.ctx = replace(session.ctx, batch_enabled=batch_enabled)
    start = time.perf_counter()
    result = session.run(instance, strategy="DI")
    return time.perf_counter() - start, result


def match_set(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


def test_batched_kernels_cut_oracle_calls(bundle, instance, benchmark):
    batch_times, scalar_times = [], []
    batch_result = scalar_result = None
    for repeat in range(REPEATS):
        arms = [(True, batch_times), (False, scalar_times)]
        if repeat % 2:  # alternate order: cancels warm-cache / drift bias
            arms.reverse()
        for batch_enabled, sink in arms:
            elapsed, result = _run_once(bundle, instance, batch_enabled)
            sink.append(elapsed)
            if batch_enabled:
                batch_result = result
            else:
                scalar_result = result

    batch_counters = batch_result.run.counters
    scalar_counters = scalar_result.run.counters
    batch_calls = batch_counters["oracle_calls"]
    scalar_calls = scalar_counters["oracle_calls"]
    reduction = scalar_calls / batch_calls if batch_calls else float("inf")

    batch_min = min(batch_times)
    scalar_min = min(scalar_times)
    speedup = scalar_min / batch_min if batch_min else float("inf")

    print(
        f"\nbatch kernels ({SCALE}, min of {REPEATS}): "
        f"scalar {scalar_min * 1e3:.2f} ms / {scalar_calls} oracle calls, "
        f"batched {batch_min * 1e3:.2f} ms / {batch_calls} oracle calls "
        f"({reduction:.1f}x fewer calls, {speedup:.2f}x wall-clock)"
    )

    # Bit-identical answers and identical logical work — at every scale.
    assert match_set(batch_result.run.matches) == match_set(
        scalar_result.run.matches
    )
    assert (
        batch_counters["distance_queries"] == scalar_counters["distance_queries"]
    )
    assert batch_counters["pairs_added"] == scalar_counters["pairs_added"]
    assert batch_calls < scalar_calls

    if ASSERT_SHAPES:
        assert reduction >= CALL_REDUCTION_FACTOR, (
            f"batched arm made {batch_calls} Python-level oracle calls vs "
            f"{scalar_calls} scalar ({reduction:.1f}x); need "
            f">= {CALL_REDUCTION_FACTOR:.0f}x reduction"
        )
        assert batch_min <= scalar_min * SLOWDOWN_ALLOWANCE, (
            f"batched arm {batch_min * 1e3:.2f} ms is slower than scalar "
            f"{scalar_min * 1e3:.2f} ms beyond the "
            f"{SLOWDOWN_ALLOWANCE:.0%} allowance"
        )

    OUTPUT.write_text(
        json.dumps(
            {
                "artifact": "BENCH_batch",
                "scale": SCALE,
                "dataset": bundle.name,
                "repeats": REPEATS,
                "scalar_min_seconds": scalar_min,
                "batch_min_seconds": batch_min,
                "wall_clock_speedup": speedup,
                "scalar_oracle_calls": scalar_calls,
                "batch_oracle_calls": batch_calls,
                "call_reduction_factor": reduction,
                "distance_queries": batch_counters["distance_queries"],
                "matches": len(match_set(batch_result.run.matches)),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {OUTPUT.name}")

    benchmark.pedantic(
        lambda: _run_once(bundle, instance, True),
        rounds=3,
        iterations=1,
    )
