"""Figure 5 — 3-strategy vs 1-strategy PVS under Immediate construction.

Regenerates the per-query SRT comparison on the DBLP analog and times one
IC session under each arm.
"""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    column,
    experiment_tables,
    numeric,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.harness import scale_settings, session_for
from repro.workload.generator import instantiate


@pytest.fixture(scope="module")
def fig5_table():
    return experiment_tables("exp1")["Figure 5"]


def test_fig5_three_strategy_beats_one_strategy(benchmark, fig5_table):
    show(fig5_table)
    three = numeric(column(fig5_table, "3-strategy SRT (ms)"))
    one = numeric(column(fig5_table, "1-strategy SRT (ms)"))
    if ASSERT_SHAPES:
        # Paper: significantly smaller SRT for all queries.  Aggregate must
        # favor 3-strategy clearly; most queries individually too.
        assert sum(three) < sum(one)
        wins = sum(1 for a, b in zip(three, one) if a <= b * 1.1)
        assert wins >= len(three) - 1

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = instantiate("Q2", bundle.graph, dataset="dblp")
    session = session_for(bundle)

    def one_session():
        return session.run(
            instance, strategy="IC", max_results=settings.max_results
        ).srt_seconds

    benchmark.pedantic(one_session, rounds=1, iterations=1)


def test_fig5_forced_arm_does_more_distance_queries(benchmark, bench_scale):
    """The 1-strategy arm's cost driver: all-pairs PML work on cheap edges."""
    bundle = get_dataset("dblp", bench_scale)
    settings = scale_settings(bench_scale)
    instance = instantiate("Q2", bundle.graph, dataset="dblp")
    session = session_for(bundle)

    normal = session.run(instance, strategy="IC", max_results=settings.max_results)
    forced = session.run(
        instance,
        strategy="IC",
        force_large_upper=True,
        max_results=settings.max_results,
    )
    assert (
        forced.run.counters["distance_queries"]
        > normal.run.counters["distance_queries"]
    )

    benchmark.pedantic(
        lambda: session.run(
            instance,
            strategy="IC",
            force_large_upper=True,
            max_results=settings.max_results,
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )
