"""Figure 6 — effect of pruning isolated vertices (SRT + CAP size)."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    column,
    experiment_tables,
    numeric,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.harness import scale_settings, session_for
from repro.workload.generator import instantiate


@pytest.fixture(scope="module")
def fig6():
    tables = experiment_tables("exp2")
    return tables["Figure 6(a)"], tables["Figure 6(b)"]


def test_fig6a_pruning_shrinks_srt(benchmark, fig6):
    srt_table, _ = fig6
    show(srt_table)
    pruned = numeric(column(srt_table, "pruning SRT (ms)"))
    unpruned = numeric(column(srt_table, "no-pruning SRT (ms)"))
    if ASSERT_SHAPES:
        assert sum(pruned) < sum(unpruned)

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = instantiate("Q5", bundle.graph, dataset="dblp")
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="IC", pruning=True, max_results=settings.max_results
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig6b_pruning_shrinks_cap_size(benchmark, fig6):
    _, size_table = fig6
    show(size_table)
    pruned = numeric(column(size_table, "pruning size"))
    unpruned = numeric(column(size_table, "no-pruning size"))
    # Structural guarantee, not a timing artifact: holds at every scale.
    assert all(p <= u for p, u in zip(pruned, unpruned))
    assert sum(pruned) < sum(unpruned)

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = instantiate("Q5", bundle.graph, dataset="dblp")
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="IC", pruning=False, max_results=settings.max_results
        ).cap_size,
        rounds=1,
        iterations=1,
    )
