"""Figure 7 — SRT of BU vs IC vs DR vs DI across the three datasets.

The headline comparison of the paper.  Expected shape: BU at least an
order of magnitude above IC on the WordNet/DBLP analogs (with DNFs on the
hardest WordNet queries), IC well above DR/DI where expensive edges exist,
and all four roughly level on the Flickr analog.
"""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    experiment_tables,
    numeric,
    rows_where,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import scale_settings, session_for


@pytest.fixture(scope="module")
def fig7():
    return experiment_tables("exp3")["Figure 7"]


def _cols(rows, table, header):
    index = table.headers.index(header)
    return [row[index] for row in rows]


def test_fig7_bu_dominated_on_wordnet_and_dblp(benchmark, fig7):
    show(fig7)
    if ASSERT_SHAPES:
        for dataset in ("wordnet", "dblp"):
            rows = rows_where(fig7, dataset=dataset)
            bu = _cols(rows, fig7, "BU (ms)")
            di = numeric(_cols(rows, fig7, "DI (ms)"))
            # Every BU run either DNFed or took >= 5x the DI SRT in aggregate.
            bu_numeric = numeric(bu)
            dnfs = sum(1 for cell in bu if cell == "DNF")
            assert dnfs > 0 or sum(bu_numeric) > 5 * sum(di), dataset

    bundle = get_dataset("wordnet", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("wordnet", "Q1", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DI", max_results=settings.max_results
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig7_deferment_beats_ic_on_wordnet(benchmark, fig7):
    if ASSERT_SHAPES:
        rows = rows_where(fig7, dataset="wordnet")
        ic = numeric(_cols(rows, fig7, "IC (ms)"))
        dr = numeric(_cols(rows, fig7, "DR (ms)"))
        di = numeric(_cols(rows, fig7, "DI (ms)"))
        # Aggregate SRT: deferment clearly ahead where expensive edges live.
        assert sum(dr) < sum(ic)
        assert sum(di) < sum(ic)

    bundle = get_dataset("wordnet", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("wordnet", "Q1", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="IC", max_results=settings.max_results
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig7_flickr_strategies_equivalent(benchmark, fig7):
    if ASSERT_SHAPES:
        rows = rows_where(fig7, dataset="flickr")
        ic = sum(numeric(_cols(rows, fig7, "IC (ms)")))
        dr = sum(numeric(_cols(rows, fig7, "DR (ms)")))
        di = sum(numeric(_cols(rows, fig7, "DI (ms)")))
        # Nothing is expensive on the Flickr analog: all within ~3x.
        smallest, largest = min(ic, dr, di), max(ic, dr, di)
        assert largest <= 3 * smallest + 50  # +50ms absolute slack

    bundle = get_dataset("flickr", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("flickr", "Q2", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="IC", max_results=settings.max_results
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig7_all_strategies_same_answers(benchmark, fig7):
    """|V_delta| in the table is strategy-independent by construction; verify
    live on one query per dataset."""
    settings = scale_settings(SCALE)
    for dataset in ("wordnet", "dblp", "flickr"):
        bundle = get_dataset(dataset, SCALE)
        instance = exp3_instance(dataset, "Q1", bundle.graph)
        session = session_for(bundle)
        counts = {
            s: session.run(
                instance, strategy=s, max_results=settings.max_results
            ).num_matches
            for s in ("IC", "DR", "DI")
        }
        assert len(set(counts.values())) == 1, (dataset, counts)

    bundle = get_dataset("dblp", SCALE)
    instance = exp3_instance("dblp", "Q1", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DR", max_results=settings.max_results
        ).num_matches,
        rounds=1,
        iterations=1,
    )
