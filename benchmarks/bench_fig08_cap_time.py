"""Figure 8 — average CAP construction time for IC / DR / DI."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    experiment_tables,
    numeric,
    rows_where,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import scale_settings, session_for


@pytest.fixture(scope="module")
def fig8():
    return experiment_tables("exp3")["Figure 8"]


def _cols(rows, table, header):
    index = table.headers.index(header)
    return [row[index] for row in rows]


def test_fig8_deferment_shrinks_cap_time_on_wordnet(benchmark, fig8):
    show(fig8)
    if ASSERT_SHAPES:
        rows = rows_where(fig8, dataset="wordnet")
        ic = sum(numeric(_cols(rows, fig8, "IC (ms)")))
        dr = sum(numeric(_cols(rows, fig8, "DR (ms)")))
        di = sum(numeric(_cols(rows, fig8, "DI (ms)")))
        # Deferred expensive edges are processed on pruned sets: cheaper.
        assert dr < ic
        assert di < ic
        # And something actually got deferred on the WordNet analog.
        deferred = sum(numeric(_cols(rows, fig8, "deferred")))
        assert deferred > 0

    bundle = get_dataset("wordnet", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("wordnet", "Q1", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DR", max_results=settings.max_results
        ).cap_construction_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig8_flickr_construction_flat(benchmark, fig8):
    if ASSERT_SHAPES:
        rows = rows_where(fig8, dataset="flickr")
        # nothing deferred on the Flickr analog
        assert sum(numeric(_cols(rows, fig8, "deferred"))) == 0
        ic = sum(numeric(_cols(rows, fig8, "IC (ms)")))
        di = sum(numeric(_cols(rows, fig8, "DI (ms)")))
        smallest, largest = min(ic, di), max(ic, di)
        assert largest <= 3 * smallest + 50

    bundle = get_dataset("flickr", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("flickr", "Q2", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="IC", max_results=settings.max_results
        ).cap_construction_seconds,
        rounds=1,
        iterations=1,
    )
