"""Figure 9 — average (peak) CAP index size for IC / DR / DI."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    experiment_tables,
    numeric,
    rows_where,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import scale_settings, session_for


@pytest.fixture(scope="module")
def fig9():
    return experiment_tables("exp3")["Figure 9"]


def _cols(rows, table, header):
    index = table.headers.index(header)
    return [row[index] for row in rows]


def test_fig9_deferment_bounds_peak_size(benchmark, fig9):
    show(fig9)
    # DR/DI peaks do not exceed IC's beyond permutation noise: IC may
    # transiently materialize expensive edges' pairs before pruning, but the
    # exact transient depends on the processing order, so strict per-row
    # dominance is not a theorem — a small tolerance is.
    for dataset in ("wordnet", "dblp", "flickr"):
        rows = rows_where(fig9, dataset=dataset)
        ic = numeric(_cols(rows, fig9, "IC peak"))
        dr = numeric(_cols(rows, fig9, "DR peak"))
        di = numeric(_cols(rows, fig9, "DI peak"))
        assert all(d <= i * 1.25 + 10 for d, i in zip(dr, ic)), dataset
        assert all(d <= i * 1.25 + 10 for d, i in zip(di, ic)), dataset
    if ASSERT_SHAPES:
        # On the WordNet analog deferment strictly shrinks the aggregate peak.
        rows = rows_where(fig9, dataset="wordnet")
        assert sum(numeric(_cols(rows, fig9, "DR peak"))) < sum(
            numeric(_cols(rows, fig9, "IC peak"))
        )

    bundle = get_dataset("wordnet", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("wordnet", "Q2", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DR", max_results=settings.max_results
        ).cap_peak_size,
        rounds=1,
        iterations=1,
    )


def test_fig9_peak_at_least_final(benchmark, fig9):
    final_index = fig9.headers.index("final")
    peak_indices = [fig9.headers.index(h) for h in ("IC peak", "DR peak", "DI peak")]
    for row in fig9.rows:
        # every peak is a valid size and dominates the final fixpoint size
        assert all(row[i] >= 0 for i in peak_indices)
        assert max(row[i] for i in peak_indices) >= row[final_index]

    bundle = get_dataset("flickr", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("flickr", "Q1", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DI", max_results=settings.max_results
        ).cap_size,
        rounds=1,
        iterations=1,
    )
