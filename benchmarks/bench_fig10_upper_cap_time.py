"""Figure 10 — CAP construction time vs upper bound (DBLP + Flickr)."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    experiment_tables,
    numeric,
    rows_where,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.exp4_upper_bound import exp4_instance
from repro.experiments.harness import scale_settings, session_for


@pytest.fixture(scope="module")
def fig10():
    return experiment_tables("exp4")["Figure 10"]


def _series(table, dataset, query, header):
    rows = rows_where(table, dataset=dataset, query=query)
    rows.sort(key=lambda r: r[table.headers.index("upper")])
    idx = table.headers.index(header)
    return [row[idx] for row in rows]


def test_fig10_cost_grows_with_upper(benchmark, fig10):
    show(fig10)
    if ASSERT_SHAPES:
        # For every (dataset, query): cost at the max swept bound exceeds
        # cost at bound 1 for at least one strategy (growth), and the step
        # from the top two bounds is smaller than the initial step in most
        # series (flattening).
        for dataset in ("dblp", "flickr"):
            for query in ("Q2", "Q5", "Q6"):
                ic = numeric(_series(fig10, dataset, query, "IC (ms)"))
                assert len(ic) >= 3
                assert ic[-1] >= ic[0] * 0.5  # monotone-ish, noise-tolerant
        dblp_q2 = numeric(_series(fig10, "dblp", "Q2", "IC (ms)"))
        assert dblp_q2[-1] > dblp_q2[0]

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = exp4_instance("dblp", "Q2", bundle.graph, upper=5)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DI", max_results=settings.max_results
        ).cap_construction_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig10_deferment_helps_at_high_bounds_on_dblp(benchmark, fig10):
    if ASSERT_SHAPES:
        rows = rows_where(fig10, dataset="dblp")
        top = [r for r in rows if r[fig10.headers.index("upper")] >= 5]
        ic = sum(numeric([r[fig10.headers.index("IC (ms)")] for r in top]))
        dr = sum(numeric([r[fig10.headers.index("DR (ms)")] for r in top]))
        assert dr <= ic * 1.2  # DR no worse; typically clearly better

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = exp4_instance("dblp", "Q2", bundle.graph, upper=10 if SCALE == "small" else 5)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DR", max_results=settings.max_results
        ).cap_construction_seconds,
        rounds=1,
        iterations=1,
    )
