"""Figure 11 — SRT vs upper bound, including the BU comparison."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    experiment_tables,
    numeric,
    rows_where,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.exp4_upper_bound import exp4_instance
from repro.experiments.harness import run_bu, scale_settings


@pytest.fixture(scope="module")
def fig11():
    return experiment_tables("exp4")["Figure 11"]


def test_fig11_strategies_orders_of_magnitude_below_bu(benchmark, fig11):
    show(fig11)
    if ASSERT_SHAPES:
        bu_idx = fig11.headers.index("BU (ms)")
        di_idx = fig11.headers.index("DI (ms)")
        bu_cells = [row[bu_idx] for row in fig11.rows]
        di_total = sum(numeric([row[di_idx] for row in fig11.rows]))
        bu_total = sum(numeric(bu_cells))
        dnfs = sum(1 for c in bu_cells if c == "DNF")
        assert dnfs > 0 or bu_total > 5 * di_total

    bundle = get_dataset("flickr", SCALE)
    settings = scale_settings(SCALE)
    instance = exp4_instance("flickr", "Q5", bundle.graph, upper=3)
    benchmark.pedantic(
        lambda: run_bu(bundle, instance, settings).srt_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig11_di_no_worse_than_dr_overall(benchmark, fig11):
    if ASSERT_SHAPES:
        dr_idx = fig11.headers.index("DR (ms)")
        di_idx = fig11.headers.index("DI (ms)")
        dr_total = sum(numeric([row[dr_idx] for row in fig11.rows]))
        di_total = sum(numeric([row[di_idx] for row in fig11.rows]))
        # "DI has either the same or shorter SRT in a majority of test
        # cases" — aggregate tolerance 1.5x.
        assert di_total <= dr_total * 1.5 + 50

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = exp4_instance("dblp", "Q6", bundle.graph, upper=5)
    from repro.experiments.harness import session_for

    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DI", max_results=settings.max_results
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig11_rows_cover_the_sweep(benchmark, fig11):
    uppers = {row[fig11.headers.index("upper")] for row in fig11.rows}
    assert {1, 3, 5} <= uppers
    datasets = {row[fig11.headers.index("dataset")] for row in fig11.rows}
    assert datasets == {"dblp", "flickr"}
    queries = {row[fig11.headers.index("query")] for row in fig11.rows}
    assert queries == {"Q2", "Q5", "Q6"}

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = exp4_instance("dblp", "Q2", bundle.graph, upper=1)
    from repro.experiments.harness import session_for

    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="IC", max_results=settings.max_results
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )
