"""Figure 13 (Appendix D) — peak CAP size vs upper bound."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    experiment_tables,
    numeric,
    rows_where,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.exp4_upper_bound import exp4_instance
from repro.experiments.harness import scale_settings, session_for


@pytest.fixture(scope="module")
def fig13():
    return experiment_tables("exp4")["Figure 13"]


def test_fig13_size_grows_with_bound(benchmark, fig13):
    show(fig13)
    if ASSERT_SHAPES:
        for dataset in ("dblp", "flickr"):
            for query in ("Q2", "Q5", "Q6"):
                rows = rows_where(fig13, dataset=dataset, query=query)
                rows.sort(key=lambda r: r[fig13.headers.index("upper")])
                sizes = numeric(
                    [r[fig13.headers.index("IC")] for r in rows]
                )
                assert sizes[-1] >= sizes[0], (dataset, query)

    bundle = get_dataset("flickr", SCALE)
    settings = scale_settings(SCALE)
    instance = exp4_instance("flickr", "Q2", bundle.graph, upper=5)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="IC", max_results=settings.max_results
        ).cap_peak_size,
        rounds=1,
        iterations=1,
    )


def test_fig13_size_is_modest(benchmark, fig13):
    """The paper's point: CAP 'can easily fit in a modern machine'.

    Bound the worst observed peak by a small multiple of |V| x |E_B|-ish
    budget — quadratic blow-up would violate this by orders of magnitude.
    """
    worst = max(
        numeric([r[fig13.headers.index("IC")] for r in fig13.rows]), default=0
    )
    graph = get_dataset("dblp", SCALE).graph
    assert worst < 200 * graph.num_vertices

    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    instance = exp4_instance("dblp", "Q5", bundle.graph, upper=3)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DI", max_results=settings.max_results
        ).cap_peak_size,
        rounds=1,
        iterations=1,
    )
