"""Figure 14 (Appendix D) — cost of the just-in-time lower-bound check."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    column,
    experiment_tables,
    numeric,
    show,
)
from repro.core.lowerbound import filter_by_lower_bound
from repro.datasets.registry import get_dataset
from repro.experiments.exp5_lower_bound import exp5_instance
from repro.experiments.harness import scale_settings, session_for


@pytest.fixture(scope="module")
def fig14():
    return experiment_tables("exp5")["Figure 14"]


def test_fig14_check_cost_far_below_interactivity_budget(benchmark, fig14):
    show(fig14)
    costs = numeric(column(fig14, "avg check (ms)"))
    # The paper's acceptability bar is 5 s per result.
    assert all(c < 5000 for c in costs)
    if ASSERT_SHAPES:
        assert max(costs, default=0) < 1000  # comfortably interactive

    bundle = get_dataset("wordnet", SCALE)
    settings = scale_settings(SCALE)
    instance = exp5_instance("wordnet", "Q2", bundle.graph, lower=2)
    session = session_for(bundle)
    result = session.run(instance, strategy="DI", max_results=settings.max_results)
    matches = result.run.matches.matches[:5]
    assert matches, "expected at least one V_P to check"
    boomer = result.boomer

    def check_one():
        return filter_by_lower_bound(matches[0], boomer.query, boomer.engine.ctx)

    benchmark.pedantic(check_one, rounds=3, iterations=1)


def test_fig14_lower_bound_actually_filters(benchmark):
    """With lower >= 2, some upper-bound matches must fail JIT validation
    somewhere in the sweep (otherwise the check would be vacuous)."""
    settings = scale_settings(SCALE)
    bundle = get_dataset("wordnet", SCALE)
    session = session_for(bundle)
    any_rejected = False
    for lower in (2, 3):
        instance = exp5_instance("wordnet", "Q2", bundle.graph, lower=lower)
        result = session.run(
            instance, strategy="DI", max_results=settings.max_results
        )
        boomer = result.boomer
        for match in result.run.matches.matches[:50]:
            if filter_by_lower_bound(match, boomer.query, boomer.engine.ctx) is None:
                any_rejected = True
                break
        if any_rejected:
            break
    # Rejection is instance-dependent; report it rather than hard-fail so a
    # lucky label draw cannot break the bench.  The hard guarantee checked
    # below is that every *accepted* path respects the bounds.
    print(f"\nlower-bound JIT check rejected some V_P: {any_rejected}")

    instance = exp5_instance("wordnet", "Q2", bundle.graph, lower=2)
    result = session.run(instance, strategy="DI", max_results=settings.max_results)
    boomer = result.boomer

    def validate_paths():
        for match in result.run.matches.matches[:3]:
            sub = filter_by_lower_bound(match, boomer.query, boomer.engine.ctx)
            if sub is not None:
                for edge in boomer.query.edges():
                    length = sub.path_length(edge.u, edge.v)
                    assert edge.lower <= length <= edge.upper
        return True

    benchmark.pedantic(validate_paths, rounds=1, iterations=1)
