"""Figures 15/16/17 (Appendix D) — impact of the query formulation sequence."""

import pytest

from benchmarks.conftest import (
    ASSERT_SHAPES,
    SCALE,
    experiment_tables,
    numeric,
    show,
)
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import scale_settings, session_for
from repro.workload.qfs import qfs_edge_order


@pytest.fixture(scope="module")
def qfs_tables():
    return experiment_tables("exp7")


def _strategy_spread(table, dataset, strategy):
    """max/min of a strategy's metric across the QFS rows of a dataset."""
    idx = table.headers.index(strategy)
    values = numeric(
        [row[idx] for row in table.rows if row[0] == dataset]
    )
    return (max(values), min(values)) if values else (0.0, 0.0)


def test_fig16_ic_sensitive_deferment_insensitive(benchmark, qfs_tables):
    fig16 = qfs_tables["Figure 16"]
    show(qfs_tables["Figure 15"])
    show(fig16)
    show(qfs_tables["Figure 17"])
    if ASSERT_SHAPES:
        ic_max, ic_min = _strategy_spread(fig16, "wordnet", "IC")
        dr_max, dr_min = _strategy_spread(fig16, "wordnet", "DR")
        # IC's spread across sequences exceeds DR's (deferment reorders
        # internally, so drawing order stops mattering).
        ic_spread = ic_max / max(ic_min, 1e-9)
        dr_spread = dr_max / max(dr_min, 1e-9)
        assert ic_max > dr_max or ic_spread > dr_spread

    bundle = get_dataset("wordnet", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("wordnet", "Q1", bundle.graph)
    session = session_for(bundle)
    worst_order = qfs_edge_order("Q1", "S1")  # expensive e1 first
    benchmark.pedantic(
        lambda: session.run(
            instance,
            strategy="IC",
            edge_order=worst_order,
            max_results=settings.max_results,
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )


def test_fig15_17_results_independent_of_qfs(benchmark, qfs_tables):
    """Whatever the drawing order, the answers are identical."""
    bundle = get_dataset("wordnet", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("wordnet", "Q1", bundle.graph)
    session = session_for(bundle)
    counts = set()
    for sequence in ("S1", "S2", "S3"):
        result = session.run(
            instance,
            strategy="DI",
            edge_order=qfs_edge_order("Q1", sequence),
            max_results=settings.max_results,
        )
        counts.add(result.num_matches)
    assert len(counts) == 1

    benchmark.pedantic(
        lambda: session.run(
            instance,
            strategy="DI",
            edge_order=qfs_edge_order("Q1", "S3"),
            max_results=settings.max_results,
        ).num_matches,
        rounds=1,
        iterations=1,
    )


def test_fig17_deferment_caps_worst_case_peak(benchmark, qfs_tables):
    """Deferment's *worst* peak over the drawing orders stays at or below
    IC's worst peak: IC can be forced into the full-set blow-up by an
    expensive-edge-first order, while DR/DI reorder internally.  (Per-row
    dominance is NOT a theorem — transient sizes depend on the processing
    permutation — so the comparison is per dataset-worst-case.)"""
    fig17 = qfs_tables["Figure 17"]
    ic_idx = fig17.headers.index("IC")
    dr_idx = fig17.headers.index("DR")
    di_idx = fig17.headers.index("DI")
    datasets = {row[0] for row in fig17.rows}
    for dataset in datasets:
        rows = [r for r in fig17.rows if r[0] == dataset]
        ic_worst = max(r[ic_idx] for r in rows)
        dr_worst = max(r[dr_idx] for r in rows)
        di_worst = max(r[di_idx] for r in rows)
        assert dr_worst <= ic_worst * 1.05 + 10, dataset
        assert di_worst <= ic_worst * 1.05 + 10, dataset

    bundle = get_dataset("flickr", SCALE)
    settings = scale_settings(SCALE)
    instance = exp3_instance("flickr", "Q1", bundle.graph)
    session = session_for(bundle)
    benchmark.pedantic(
        lambda: session.run(
            instance,
            strategy="IC",
            edge_order=qfs_edge_order("Q1", "S2"),
            max_results=settings.max_results,
        ).cap_peak_size,
        rounds=1,
        iterations=1,
    )
