"""Index-footprint comparison (paper §5.2 Remark, reproduction extra).

The paper rejects static k-neighborhood signatures (SPath-style) for the
blended paradigm because "it may store a large portion of the entire data
graph for larger k", while the CAP index "is lightweight in practice and is
created on-the-fly ... only for candidate matches of the query vertices".

This bench quantifies both sides on the DBLP analog: the static index's
total entries as k grows vs the peak CAP size of an actual query session
at the corresponding upper bound.
"""

import pytest

from benchmarks.conftest import ASSERT_SHAPES, SCALE
from repro.datasets.registry import get_dataset
from repro.experiments.exp4_upper_bound import exp4_instance
from repro.experiments.harness import scale_settings, session_for
from repro.indexing.kneighborhood import KNeighborhoodIndex

KS = (1, 2, 3) if SCALE == "small" else (1, 2)


@pytest.fixture(scope="module")
def footprints():
    bundle = get_dataset("dblp", SCALE)
    settings = scale_settings(SCALE)
    session = session_for(bundle)
    rows = []
    for k in KS:
        static_entries = KNeighborhoodIndex(bundle.graph, k=k).total_entries()
        instance = exp4_instance("dblp", "Q2", bundle.graph, upper=k)
        result = session.run(
            instance, strategy="DI", max_results=settings.max_results
        )
        rows.append(
            {
                "k": k,
                "static_entries": static_entries,
                "cap_peak": result.cap_peak_size,
            }
        )
    return rows


def test_cap_far_smaller_than_static_signatures(benchmark, footprints):
    print()
    for row in footprints:
        ratio = row["static_entries"] / max(row["cap_peak"], 1)
        print(
            f"  k={row['k']}: SPath-style entries {row['static_entries']:>9,} "
            f"vs CAP peak {row['cap_peak']:>9,}  (ratio {ratio:,.1f}x)"
        )
    if ASSERT_SHAPES:
        for row in footprints:
            assert row["static_entries"] > row["cap_peak"]

    bundle = get_dataset("dblp", SCALE)
    benchmark.pedantic(
        lambda: KNeighborhoodIndex(bundle.graph, k=1).total_entries(),
        rounds=1,
        iterations=1,
    )


def test_static_footprint_superlinear_in_k(benchmark, footprints):
    entries = [row["static_entries"] for row in footprints]
    assert entries == sorted(entries)
    assert entries[-1] > entries[0]

    bundle = get_dataset("dblp", SCALE)
    benchmark.pedantic(
        lambda: KNeighborhoodIndex(bundle.graph, k=KS[-1]).average_signature_size(),
        rounds=1,
        iterations=1,
    )
