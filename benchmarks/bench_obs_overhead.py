"""Observability overhead — emits ``BENCH_obs.json``.

Two costs are pinned, matching the ISSUE-3 acceptance criteria:

1. **Disabled (the default):** every instrumentation point in the engine
   calls into :data:`~repro.obs.trace.NULL_TRACER`.  The per-call cost is
   microbenchmarked directly, multiplied by the number of instrumentation
   points a real Figure-8-style session actually hits (counted from an
   enabled run), and compared against the session's wall time — the
   implied overhead must stay under 2%.  This formulation measures the
   *mechanism* precisely instead of trying to resolve a sub-2% wall-clock
   delta through machine noise.

2. **Enabled:** a live :class:`~repro.obs.trace.Tracer` (span objects,
   clock reads, ring buffer) versus the null tracer on the same workload,
   interleaved A/B (order alternated per repeat), per-arm minimum over
   ``REPEATS``.  Budget: 5% relative with a small absolute floor (the CI
   ``obs-overhead`` job enforces this).

Either way the match sets must be identical — observability may never
change answers.
"""

import json
import statistics
import time
from pathlib import Path

import pytest

from benchmarks.conftest import ASSERT_SHAPES, SCALE
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import session_for
from repro.obs import export
from repro.obs.trace import NULL_TRACER, Tracer

REPEATS = 7
#: Budget for the *enabled* tracer (spans allocated and recorded).
ENABLED_RELATIVE_BUDGET = 0.05
#: Budget for the *disabled* (null) tracer — the default configuration.
NULL_RELATIVE_BUDGET = 0.02
ABSOLUTE_FLOOR_SECONDS = 0.002
#: Microbench iterations for the null-span per-call cost.
NULL_CALLS = 200_000

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


@pytest.fixture(scope="module")
def bundle():
    return get_dataset("wordnet", SCALE)


@pytest.fixture(scope="module")
def instance(bundle):
    return exp3_instance("wordnet", "Q1", bundle.graph)


def _run_once(bundle, instance, tracer):
    session = session_for(bundle)
    session.tracer = tracer
    start = time.perf_counter()
    result = session.run(instance, strategy="DI")
    return time.perf_counter() - start, result


def match_set(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


def _null_span_cost_seconds() -> float:
    """Median per-call cost of one disabled instrumentation point."""
    span = NULL_TRACER.span  # the exact call the engine makes
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(NULL_CALLS):
            with span("cap.process_edge", edge="e"):
                pass
        samples.append((time.perf_counter() - start) / NULL_CALLS)
    return statistics.median(samples)


def test_observability_overhead_within_budget(bundle, instance, benchmark):
    # Interleaved A/B: the two arms see the same machine noise.
    null_times, traced_times = [], []
    null_result = traced_result = None
    spans_started = 0
    trace_records = []
    for repeat in range(REPEATS):
        tracer = Tracer()
        arms = [
            ("null", NULL_TRACER, null_times),
            ("traced", tracer, traced_times),
        ]
        if repeat % 2:  # alternate order: cancels warm-cache / drift bias
            arms.reverse()
        for name, arm_tracer, sink in arms:
            elapsed, result = _run_once(bundle, instance, arm_tracer)
            sink.append(elapsed)
            if name == "null":
                null_result = result
            else:
                traced_result = result
        tracer.finish()
        spans_started = tracer.started
        trace_records = tracer.export()

    # Per-arm minimum: the least-noise estimate of each arm's true cost
    # (session runtimes swing several percent run-to-run; the deltas of
    # interest here are well below that noise floor).
    baseline = min(null_times)
    traced = min(traced_times)
    enabled_overhead = traced - baseline

    # Disabled-path cost: measured mechanism cost x observed call count.
    per_call = _null_span_cost_seconds()
    implied_null_overhead = spans_started * per_call
    null_fraction = implied_null_overhead / baseline

    decomposition = export.srt_decomposition(trace_records)
    print(
        f"\nobs overhead ({SCALE}, min of {REPEATS}): "
        f"null {baseline * 1e3:.2f} ms, traced {traced * 1e3:.2f} ms, "
        f"enabled {enabled_overhead * 1e3:+.2f} ms "
        f"({enabled_overhead / baseline:+.1%}); "
        f"null span call {per_call * 1e9:.0f} ns x {spans_started} spans "
        f"= {null_fraction:.3%} implied disabled overhead"
    )

    # Observability may never change answers.
    assert match_set(traced_result.run.matches) == match_set(
        null_result.run.matches
    )
    # The trace must actually decompose the session (SRT recoverable).
    assert decomposition["runs"] == 1
    assert decomposition["srt"] > 0.0
    assert export.summarize(trace_records)["balanced"] is True

    if ASSERT_SHAPES:
        assert null_fraction <= NULL_RELATIVE_BUDGET, (
            f"disabled-tracer overhead {null_fraction:.2%} exceeds "
            f"{NULL_RELATIVE_BUDGET:.0%} budget"
        )
        enabled_budget = max(
            baseline * ENABLED_RELATIVE_BUDGET, ABSOLUTE_FLOOR_SECONDS
        )
        assert enabled_overhead <= enabled_budget, (
            f"enabled-tracer overhead {enabled_overhead * 1e3:.2f} ms exceeds "
            f"budget {enabled_budget * 1e3:.2f} ms"
        )

    OUTPUT.write_text(
        json.dumps(
            {
                "artifact": "BENCH_obs",
                "scale": SCALE,
                "dataset": bundle.name,
                "repeats": REPEATS,
                "null_min_seconds": baseline,
                "traced_min_seconds": traced,
                "enabled_overhead_seconds": enabled_overhead,
                "enabled_overhead_fraction": enabled_overhead / baseline,
                "null_span_call_seconds": per_call,
                "spans_per_session": spans_started,
                "implied_null_overhead_fraction": null_fraction,
                "decomposition": decomposition,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {OUTPUT.name}")

    benchmark.pedantic(
        lambda: _run_once(bundle, instance, Tracer()),
        rounds=3,
        iterations=1,
    )
