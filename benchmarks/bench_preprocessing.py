"""Preprocessing costs (paper Section 4: one-time offline phase).

Not a numbered figure, but the paper reports PML construction < 15 min and
cognitively-negligible t_avg estimation; this bench records the analogous
costs at the emulated scale.
"""

import pytest

from benchmarks.conftest import SCALE
from repro.core.preprocessor import measure_t_avg, preprocess
from repro.datasets.registry import dataset_config, get_dataset
from repro.graph.generators import wordnet_like
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts


@pytest.mark.parametrize("dataset", ["wordnet", "dblp", "flickr"])
def test_preprocessing_summary(benchmark, dataset):
    """Report the cached preprocessing profile per dataset."""
    bundle = get_dataset(dataset, SCALE)
    print(f"\n{bundle.pre.summary()}")
    # t_avg estimation itself is the cheap, repeatable part: benchmark it.
    benchmark.pedantic(
        lambda: measure_t_avg(bundle.pre.pml, bundle.graph, samples=2000),
        rounds=3,
        iterations=1,
    )
    assert bundle.pre.t_avg > 0


def test_pml_build_cost(benchmark):
    """PML construction on a fresh mid-size wordnet analog."""
    config = dataset_config("wordnet", SCALE)
    n = max(300, config.num_vertices // 2)
    graph = wordnet_like(n, seed=3)
    pml = benchmark.pedantic(
        lambda: PrunedLandmarkLabeling.build(graph), rounds=1, iterations=1
    )
    assert pml.average_label_size() > 0


def test_two_hop_counts_cost(benchmark):
    config = dataset_config("dblp", SCALE)
    n = max(300, config.num_vertices // 2)
    from repro.graph.generators import dblp_like

    graph = dblp_like(n, seed=3, num_labels=16)
    counts = benchmark.pedantic(
        lambda: two_hop_counts(graph), rounds=1, iterations=1
    )
    assert len(counts) == graph.num_vertices


def test_full_preprocess_pipeline(benchmark):
    graph = wordnet_like(400, seed=9)
    result = benchmark.pedantic(
        lambda: preprocess(graph, t_avg_samples=2000), rounds=1, iterations=1
    )
    assert result.t_avg > 0
