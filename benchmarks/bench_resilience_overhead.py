"""Resilience-layer overhead — fault-free sessions must stay within 5%.

The resilience wrapper sits on the hottest paths (``process_edge``, pool
probing, the Run drain) even when nothing ever fails, so its fault-free
cost is the price every protected session pays.  This bench runs the same
Exp-3 query with resilience off and with the default posture (retries +
degradation armed, no deadline, no audit), interleaved to decorrelate
machine noise, and compares median wall time.

Expected shape: overhead is one extra function call per processed edge
plus a couple of no-op checkpoints per pool probe — well under the 5%
budget.  The match sets must be identical: a fault-free protected run may
never change answers.
"""

import statistics
import time

import pytest

from benchmarks.conftest import ASSERT_SHAPES, SCALE
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import session_for
from repro.resilience import ResilienceConfig

REPEATS = 7
#: 5% relative budget, with a tiny absolute floor so micro-second sessions
#: (tiny scale) don't fail on scheduler jitter alone.
RELATIVE_BUDGET = 0.05
ABSOLUTE_FLOOR_SECONDS = 0.002


@pytest.fixture(scope="module")
def bundle():
    return get_dataset("wordnet", SCALE)


@pytest.fixture(scope="module")
def instance(bundle):
    return exp3_instance("wordnet", "Q1", bundle.graph)


def _run_once(bundle, instance, resilience):
    session = session_for(bundle)
    session.resilience = resilience
    start = time.perf_counter()
    result = session.run(instance, strategy="DI")
    return time.perf_counter() - start, result


def match_set(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


def test_fault_free_overhead_within_budget(bundle, instance, benchmark):
    protected_config = ResilienceConfig.default()
    baseline_times, protected_times = [], []
    baseline_result = protected_result = None
    for _ in range(REPEATS):  # interleaved: both arms see the same noise
        elapsed, baseline_result = _run_once(bundle, instance, None)
        baseline_times.append(elapsed)
        elapsed, protected_result = _run_once(bundle, instance, protected_config)
        protected_times.append(elapsed)

    baseline = statistics.median(baseline_times)
    protected = statistics.median(protected_times)
    overhead = protected - baseline
    print(
        f"\nresilience overhead ({SCALE}, median of {REPEATS}): "
        f"baseline {baseline * 1e3:.2f} ms, protected {protected * 1e3:.2f} ms, "
        f"overhead {overhead * 1e3:+.2f} ms ({overhead / baseline:+.1%})"
    )

    # Fault-free protection may never change answers (degradation unused).
    assert not protected_result.degraded
    assert match_set(protected_result.run.matches) == match_set(
        baseline_result.run.matches
    )
    if ASSERT_SHAPES:
        budget = max(baseline * RELATIVE_BUDGET, ABSOLUTE_FLOOR_SECONDS)
        assert overhead <= budget, (
            f"resilience overhead {overhead * 1e3:.2f} ms exceeds "
            f"budget {budget * 1e3:.2f} ms"
        )

    benchmark.pedantic(
        lambda: _run_once(bundle, instance, protected_config),
        rounds=3,
        iterations=1,
    )
