"""Scalability sweep (reproduction extra): cost vs data-graph size.

Not a paper artifact.  The paper fixes three datasets; this bench sweeps
the WordNet-analog generator over |V| and reports how preprocessing, CAP
construction, and SRT scale — documenting where the pure-Python substrate
stands relative to the paper's Java/C++ testbed (DESIGN.md substitution
table).
"""

import pytest

from benchmarks.conftest import SCALE
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import make_context, preprocess
from repro.graph.generators import wordnet_like
from repro.gui.session import VisualSession
from repro.workload.generator import instantiate

SIZES = (400, 800, 1600) if SCALE == "small" else (200, 400)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in SIZES:
        graph = wordnet_like(n, seed=5)
        pre = preprocess(graph, t_avg_samples=2000)
        latency = GUILatencyConstants().scaled(0.02)
        session = VisualSession(make_context(pre, latency=latency), latency)
        instance = instantiate("Q2", graph, seed=3, dataset=f"wn{n}")
        result = session.run(instance, strategy="DI", max_results=10_000)
        rows.append(
            {
                "n": graph.num_vertices,
                "pml_seconds": pre.pml_build_seconds,
                "avg_label": pre.pml.average_label_size(),
                "cap_seconds": result.cap_construction_seconds,
                "srt_seconds": result.srt_seconds,
                "cap_size": result.cap_size,
            }
        )
    return rows


def test_scalability_report(benchmark, sweep):
    print()
    for row in sweep:
        print(
            f"  |V|={row['n']:>5}: PML {row['pml_seconds'] * 1e3:8.1f}ms "
            f"(avg label {row['avg_label']:5.1f})  CAP {row['cap_seconds'] * 1e3:8.1f}ms  "
            f"SRT {row['srt_seconds'] * 1e3:8.1f}ms  size {row['cap_size']}"
        )
    # CAP stays compact: bounded by a small multiple of |V| at every size
    # (instances are label-sampled independently per size, so strict
    # monotonicity is not expected — boundedness is the claim that matters,
    # echoing Fig. 13's "modest and easily fits in a modern machine").
    for row in sweep:
        assert row["cap_size"] < 60 * row["n"]

    graph = wordnet_like(SIZES[0], seed=5)
    benchmark.pedantic(
        lambda: preprocess(graph, t_avg_samples=1000).t_avg, rounds=1, iterations=1
    )


def test_pml_label_size_stays_sublinear(benchmark, sweep):
    """PML's average label size must grow far slower than |V| (that is the
    whole point of pruned landmark labeling)."""
    first, last = sweep[0], sweep[-1]
    growth_v = last["n"] / first["n"]
    growth_label = last["avg_label"] / max(first["avg_label"], 1e-9)
    assert growth_label < growth_v * 0.75  # clearly sublinear in |V|

    graph = wordnet_like(SIZES[-1], seed=5)
    from repro.indexing.pml import PrunedLandmarkLabeling

    benchmark.pedantic(
        lambda: PrunedLandmarkLabeling.build(graph).average_label_size(),
        rounds=1,
        iterations=1,
    )
