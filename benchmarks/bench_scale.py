"""Scale ladder over the storage backends — emits ``BENCH_scale.json``.

Climbs the dataset-registry presets from test scale toward the paper's
real dimensions and, at every rung, serves the same formulation through
all three :mod:`repro.storage` backends:

* **build** — graph generation + PML + two-hop, timed (the one-time cost
  the on-disk basis amortizes away across restarts);
* **basis** — the fully-resident footprint (``EngineBasis.nbytes()``)
  and the mmap save/open round trip;
* **serve** — one scripted Run per backend, recording SRT and asserting
  the matches are byte-identical everywhere (the conformance invariant
  at bench scale);
* **tiering** — the mmap arm runs under a hot-tier byte budget of
  ``BUDGET_FRACTION`` (25%) of the resident footprint, and the
  ``repro_storage_resident_bytes`` gauge must stay under it — the
  ISSUE-8 acceptance shape: paper-scale data served in a quarter of the
  memory without changing a single answer.

The ``flickr/paper`` rung (1.8M vertices, ~23M edges) is hours of
pure-Python PML construction, so it only joins the ladder when
``REPRO_BENCH_PAPER=1`` — the ``scale-nightly`` CI job runs the largest
rung that fits its memory, and the artifact records which rungs ran so
a truncated ladder is never mistaken for a full one.
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.datasets.registry import clear_memory_cache, get_dataset
from repro.obs.metrics import metrics
from repro.service import canonical_matches
from repro.storage import (
    basis_from_context,
    open_backend,
)

#: (dataset, scale) rungs, smallest first.  The paper rung is env-gated.
STEPS: tuple[tuple[str, str], ...] = (
    ("wordnet", "tiny"),
    ("flickr", "tiny"),
    ("flickr", "small"),
)
PAPER_STEP = ("flickr", "paper")
#: Hot-tier budget as a fraction of the fully-resident basis footprint.
BUDGET_FRACTION = 0.25
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"


def _steps() -> tuple[tuple[str, str], ...]:
    if os.environ.get("REPRO_BENCH_PAPER") == "1":
        return STEPS + (PAPER_STEP,)
    return STEPS


def _script(graph) -> list:
    """A tiny two-vertex formulation using the dataset's own labels."""
    labels = graph.labels()
    a = labels[0]
    b = next((lab for lab in labels if lab != a), a)
    return [
        NewVertex(0, a),
        NewVertex(1, b),
        NewEdge(0, 1, 1, 2),
        Run(),
    ]


def _serve_once(ctx, actions) -> tuple[float, tuple]:
    """Run the script over ``ctx``; (SRT seconds, canonical matches)."""
    boomer = Boomer(ctx, strategy="DI", max_results=10_000)
    for action in actions:
        boomer.apply(action)
    run = boomer.run_result
    return run.srt_seconds, canonical_matches(run.matches)


def _series_value(name: str) -> float:
    """Sum of a metric's series in the process registry (0.0 if absent)."""
    total = 0.0
    for key, value in metrics.snapshot().items():
        if (key == name or key.startswith(name + "{")) and isinstance(
            value, (int, float)
        ):
            total += value
    return total


def _peak_rss_bytes() -> int:
    # ru_maxrss is KiB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def bench_step(name: str, scale: str, tmp_root: Path) -> dict:
    clear_memory_cache()
    t0 = time.perf_counter()
    bundle = get_dataset(name, scale)
    build_seconds = time.perf_counter() - t0

    basis = basis_from_context(bundle.make_context())
    nbytes = basis.nbytes()
    budget = max(1, int(nbytes * BUDGET_FRACTION))
    actions = _script(bundle.graph)

    row: dict = {
        "dataset": name,
        "scale": scale,
        "num_vertices": bundle.graph.num_vertices,
        "num_edges": bundle.graph.num_edges,
        "build_seconds": round(build_seconds, 4),
        "basis_nbytes": nbytes,
        "budget_bytes": budget,
        "backends": {},
    }

    basis_dir = tmp_root / f"{name}-{scale}.basis"
    matches_by_backend: dict[str, tuple] = {}
    for backend_name in ("resident", "shm", "mmap"):
        t0 = time.perf_counter()
        backend = open_backend(
            backend_name,
            basis=basis,
            directory=basis_dir if backend_name == "mmap" else None,
            budget_bytes=budget if backend_name == "mmap" else None,
        )
        open_seconds = time.perf_counter() - t0
        try:
            ctx = backend.context()
            srt, matches = _serve_once(ctx, actions)
            if backend_name == "mmap":
                # The Run above rides the batch kernels (raw array reads);
                # scalar oracle queries are what flow through the tiered
                # label views, so probe a spread of pairs to exercise the
                # hot tier before reading its gauges.
                n = bundle.graph.num_vertices
                for v in range(0, n, max(1, n // 512)):
                    ctx.oracle.distance(0, v)
        finally:
            backend.close()
        matches_by_backend[backend_name] = matches
        entry = {
            "open_seconds": round(open_seconds, 4),
            "srt_seconds": round(srt, 6),
            "num_matches": len(matches),
        }
        if backend_name == "mmap":
            resident = _series_value("repro_storage_resident_bytes")
            entry["hot_tier_resident_bytes"] = int(resident)
            entry["hot_tier_hits"] = int(_series_value("repro_storage_hits_total"))
            assert resident <= budget, (
                f"{name}/{scale}: hot tier {resident:.0f}B exceeds the "
                f"{budget}B budget (25% of the {nbytes}B footprint)"
            )
        row["backends"][backend_name] = entry

    reference = matches_by_backend["resident"]
    for backend_name, matches in matches_by_backend.items():
        assert matches == reference, (
            f"{name}/{scale}: {backend_name} matches diverged from resident"
        )
    row["matches_identical"] = True
    row["peak_rss_bytes"] = _peak_rss_bytes()
    return row


def test_scale_ladder(tmp_path: Path) -> None:
    rows = [bench_step(name, scale, tmp_path) for name, scale in _steps()]
    payload = {
        "budget_fraction": BUDGET_FRACTION,
        "paper_rung_included": os.environ.get("REPRO_BENCH_PAPER") == "1",
        "cpu_count": os.cpu_count(),
        "steps": rows,
    }
    OUTPUT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":  # pragma: no cover - manual runs
    import tempfile

    test_scale_ladder(Path(tempfile.mkdtemp(prefix="bench-scale-")))
