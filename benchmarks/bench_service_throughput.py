"""Multi-session service throughput — emits ``BENCH_service.json``.

Drives the full wire path (``QueryServer`` on an ephemeral TCP port, one
:class:`ServiceClient` connection per simulated user) at 1, 8, 32, 128
and 512 concurrent scripted sessions over one shared graph + PML oracle,
for each backend in the worker-count sweep: ``workers=0`` (the threaded
:class:`SessionManager` — the GIL-bound baseline) and ``workers=N`` (the
:class:`~repro.service.PoolDispatcher` fleet sharing the engine basis
zero-copy).  Each row records sessions/sec plus p50/p95 Run latency and
the worker count that produced it.

Correctness rides along: every concurrent session's canonical match set
must be byte-identical to a serial single-session run of the same script
(the service acceptance criterion), so the numbers in the JSON are only
reported for answers known to be right.

The artifact seeds the service perf trajectory — future PRs compare
their ``BENCH_service.json`` against the checked-in history, not against
absolute numbers (CI machines vary; the shape and the identity assertion
are what must hold).  ``cpu_count`` is recorded per run precisely so a
flat pool-vs-threaded curve on a 1-core box is read as what it is.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
from pathlib import Path

import pytest

from benchmarks.conftest import SCALE
from repro.core.actions import Run
from repro.core.blender import Boomer
from repro.datasets.registry import get_dataset
from repro.gui.latency import LatencyModel
from repro.gui.simulator import SimulatedUser
from repro.service import (
    PoolDispatcher,
    QueryServer,
    ServiceClient,
    SessionManager,
    canonical_matches,
)
from repro.workload.generator import instantiate

CONCURRENCIES = (1, 8, 32, 128, 512)
#: Fleet-wide session budget — must clear the largest concurrency rung.
MAX_SESSIONS = 600
#: Distinct formulation scripts cycled across sessions.
NUM_SCRIPTS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def worker_counts() -> tuple[int, ...]:
    """Backends to sweep: threaded baseline, then a core-bounded pool."""
    cores = os.cpu_count() or 1
    return (0, min(4, max(1, cores)))


@pytest.fixture(scope="module")
def bundle():
    return get_dataset("wordnet", SCALE)


@pytest.fixture(scope="module")
def scripts(bundle):
    """Pre-Run action lists (the server's ``run`` op is the Run click)."""
    out = []
    for seed in range(NUM_SCRIPTS):
        instance = instantiate("Q1", bundle.graph, seed=seed, dataset=bundle.name)
        user = SimulatedUser(LatencyModel(bundle.latency, jitter=0.0, seed=seed))
        actions = user.formulate(instance)
        assert isinstance(actions[-1], Run)
        out.append(actions[:-1])
    return out


@pytest.fixture(scope="module")
def reference(bundle, scripts):
    """Serial single-session canonical match sets, one per script."""
    out = []
    for actions in scripts:
        # max_results mirrors SessionLimits' default so hosted truncation
        # (deterministic: per-session enumeration order is fixed) agrees.
        boomer = Boomer(
            bundle.make_context(), strategy="DI", auto_idle=False,
            max_results=10_000,
        )
        for action in actions:
            boomer.apply(action)
        boomer.apply(Run())
        out.append(canonical_matches(boomer.run_result.matches))
    return out


def drive(address, scripts, reference, n_sessions):
    """n_sessions concurrent clients; returns (wall, run_latencies)."""
    run_latencies = [0.0] * n_sessions
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_sessions + 1)

    def worker(i: int) -> None:
        try:
            script = scripts[i % len(scripts)]
            with ServiceClient(*address, timeout=600.0) as client:
                sid = client.create_session(strategy="DI")
                barrier.wait()
                for action in script:
                    client.action(sid, action)
                start = time.perf_counter()
                client.run(sid)
                run_latencies[i] = time.perf_counter() - start
                matches = client.matches(sid)
                assert matches == reference[i % len(scripts)], (
                    f"session {sid}: concurrent matches diverged from serial"
                )
                client.close_session(sid)
        except BaseException as exc:  # noqa: BLE001 - surfaced by caller
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"user-{i}")
        for i in range(n_sessions)
    ]
    for t in threads:
        t.start()
    barrier.wait()  # all sessions created; the clock starts at Run traffic
    wall_start = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    return wall, run_latencies


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _sweep_backend(bundle, scripts, reference, workers):
    """All concurrency rungs against one backend; returns (rows, stats)."""
    ctx = bundle.make_context()
    # cap_entry_budget=None: this benchmark measures raw throughput at
    # 512 concurrent sessions; a CAP budget would LRU-evict live sessions
    # mid-drive (admission behavior is bench_soak's subject, not ours).
    if workers > 0:
        backend = PoolDispatcher(
            ctx,
            workers=workers,
            max_sessions=MAX_SESSIONS,
            cap_entry_budget=None,
        )
    else:
        backend = SessionManager(
            ctx, max_sessions=MAX_SESSIONS, cap_entry_budget=None
        )
    server = QueryServer(backend, host="127.0.0.1", port=0).start()
    rows = []
    try:
        for n_sessions in CONCURRENCIES:
            wall, latencies = drive(server.address, scripts, reference, n_sessions)
            rows.append(
                {
                    "workers": workers,
                    "concurrent_sessions": n_sessions,
                    "sessions_per_second": n_sessions / wall if wall > 0 else 0.0,
                    "wall_seconds": wall,
                    "run_p50_seconds": statistics.median(latencies),
                    "run_p95_seconds": percentile(latencies, 0.95),
                    "matches_identical_to_serial": True,  # asserted per session
                }
            )
            print(
                f"\nworkers={workers} {n_sessions:>3} sessions: "
                f"{rows[-1]['sessions_per_second']:.1f}/s, "
                f"Run p50 {rows[-1]['run_p50_seconds'] * 1e3:.1f} ms, "
                f"p95 {rows[-1]['run_p95_seconds'] * 1e3:.1f} ms"
            )
        # Harvest stats while the backend is alive (the pool's workers
        # answer the aggregated ``stats`` op; close() tears them down).
        if workers > 0:
            stats = backend.dispatch({"op": "stats"})
        else:
            stats = backend.stats()
    finally:
        server.stop()

    # All sessions went through one backend over one shared oracle.
    assert stats["sessions_created"] == sum(CONCURRENCIES)
    assert stats["open_sessions"] == 0
    return rows, stats


def test_service_throughput(bundle, scripts, reference):
    rows = []
    accounting = {}
    for workers in worker_counts():
        backend_rows, stats = _sweep_backend(bundle, scripts, reference, workers)
        rows.extend(backend_rows)
        accounting[f"workers_{workers}"] = {
            "sessions_created": stats["sessions_created"],
            "sessions_evicted": stats["sessions_evicted"],
            "admission_rejections": stats["admission_rejections"],
            "requests_shed": stats["requests_shed"],
            "sessions_restored": stats["sessions_restored"],
        }

    OUTPUT.write_text(
        json.dumps(
            {
                "artifact": "BENCH_service",
                "scale": SCALE,
                "dataset": bundle.name,
                "graph_vertices": bundle.graph.num_vertices,
                "graph_edges": bundle.graph.num_edges,
                "num_scripts": NUM_SCRIPTS,
                "cpu_count": os.cpu_count(),
                "worker_counts": list(worker_counts()),
                "rows": rows,
                "accounting": accounting,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {OUTPUT}")
