"""Chaos soak of the live service — emits ``BENCH_soak.json``.

Runs :func:`repro.soak.run_soak` against a registry dataset with
deliberately tight budgets (so backpressure, eviction, checkpointing and
restore all fire), seeded chaos enabled (transient oracle faults, GUI
latency turbulence, abandoning users = client-thread death), and the
lockorder monitor watching every lock the service takes.

The assertion is the SLO itself: run latency percentiles, zero leaked
sessions, zero lock-order inversions, zero unresolved sheds, zero
restore mismatches (drained-and-restored sessions must reproduce their
original matches byte-for-byte), bounded traced-memory growth, and no
untyped client-visible failures.  Unlike the figure benchmarks there is
no paper artifact to match — the artifact *is* the robustness verdict.

Scale knobs:

* ``REPRO_BENCH_SCALE=tiny`` (smoke, ~30 s): fewer sessions on the tiny
  dataset — the regular test workflow's smoke-soak.
* default ``small`` (nightly, minutes): more sessions, small dataset,
  longer exposure.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import SCALE
from repro.datasets.registry import get_dataset
from repro.faults import FaultPlan, GUIFaultSpec, OracleFaultSpec
from repro.service.overload import OverloadPolicy
from repro.soak import SLO, run_soak
from repro.workload import SoakWorkloadConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_soak.json"

#: Per-scale traffic shape: (sessions, max_sessions, mean interarrival).
_SHAPES = {
    "tiny": (12, 8, 1.0),
    "small": (40, 12, 1.0),
}


def test_soak_meets_slo():
    sessions, max_sessions, interarrival = _SHAPES.get(SCALE, _SHAPES["small"])
    bundle = get_dataset("dblp", SCALE if SCALE in _SHAPES else "small")
    plan = FaultPlan(
        seed=2024,
        oracle=OracleFaultSpec(transient_rate=0.02, transient_burst=2),
        gui=GUIFaultSpec(drop_rate=0.05, spike_rate=0.05),
    )
    workload = SoakWorkloadConfig(
        seed=2024,
        sessions=sessions,
        mean_interarrival_seconds=interarrival,
        modify_rate=0.3,
        abandon_rate=0.15,
        postures=("default", "strict"),
    )
    slo = SLO(
        # Generous wall-clock bounds: CI machines vary wildly, and the
        # structural clauses (leaks, inversions, mismatches, untyped
        # failures) are the real regression net.
        p50_run_seconds=30.0,
        p95_run_seconds=120.0,
        p99_run_seconds=240.0,
    )
    report = run_soak(
        bundle.make_context(),
        workload,
        fault_plan=plan,
        slo=slo,
        overload=OverloadPolicy(
            session_watermark=0.75, cap_watermark=0.85, max_inflight=32
        ),
        max_sessions=max_sessions,
        cap_entry_budget=100_000,
        time_scale=0.02,
        lock_monitor=True,
    )

    payload = report.to_dict()
    payload["scale"] = SCALE
    payload["dataset"] = bundle.name
    payload["fault_plan"] = plan.to_dict()
    OUTPUT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print()
    print(
        f"soak[{SCALE}]: {report.runs_completed} runs "
        f"(p95 {report.run_latency.get('p95', 0.0):.3f}s), "
        f"{report.requests_shed} shed, {report.sessions_evicted} evicted, "
        f"{report.sessions_restored} restored, "
        f"{report.memory_growth_mib:.1f} MiB growth, "
        f"{report.wall_seconds:.1f}s wall"
    )

    # The soak must have actually exercised the resilience machinery —
    # a pass with nothing fired would be vacuous.
    assert report.runs_completed >= 1
    assert report.sessions_checkpointed >= 1
    assert report.sessions_restored >= 1

    assert report.passed, "SLO violations:\n" + "\n".join(report.violations)


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    raise SystemExit(pytest.main([__file__, "-s", "-q"]))
