"""Table 1 (Appendix D) — query-modification cost under Defer-to-Idle."""

import pytest

from benchmarks.conftest import ASSERT_SHAPES, SCALE, experiment_tables, show
from repro.core.actions import DeleteEdge, ModifyBounds
from repro.datasets.registry import get_dataset
from repro.experiments.exp6_modification import exp6_instance, formulate_without_run


@pytest.fixture(scope="module")
def table1():
    return experiment_tables("exp6")["Table 1"]


def _cells(table, kind_prefix):
    out = []
    for i, header in enumerate(table.headers):
        if header.startswith(kind_prefix):
            for row in table.rows:
                if isinstance(row[i], (int, float)):
                    out.append(float(row[i]))
    return out


def test_table1_tighten_cheapest(benchmark, table1):
    show(table1)
    tighten = _cells(table1, "tighten")
    loosen = _cells(table1, "loosen")
    if ASSERT_SHAPES:
        # Paper: tighten is cognitively negligible compared to loosen
        # (loosening rolls back the component and re-runs PVS; tightening
        # only re-checks surviving pairs).
        assert sum(tighten) / len(tighten) < sum(loosen) / len(loosen)
        # And the cost tracks |V_q|: the WordNet analog's loosen costs more
        # than the Flickr analog's (paper: "more expensive on WordNet").
        wn_loosen = [
            float(row[i])
            for i, header in enumerate(table1.headers)
            if header.startswith("loosen")
            for row in table1.rows
            if row[0] == "wordnet" and isinstance(row[i], (int, float))
        ]
        fl_loosen = [
            float(row[i])
            for i, header in enumerate(table1.headers)
            if header.startswith("loosen")
            for row in table1.rows
            if row[0] == "flickr" and isinstance(row[i], (int, float))
        ]
        assert sum(wn_loosen) / len(wn_loosen) > sum(fl_loosen) / len(fl_loosen)

    bundle = get_dataset("wordnet", SCALE)
    instance = exp6_instance("wordnet", "Q5", bundle.graph)

    def tighten_once():
        boomer = formulate_without_run(bundle, instance)
        u, v = instance.template.edges[2]
        report = boomer.apply(ModifyBounds(u=u, v=v, lower=1, upper=1))
        return report.modification.elapsed_seconds

    benchmark.pedantic(tighten_once, rounds=1, iterations=1)


def test_table1_delete_worst_case_bounded(benchmark, table1):
    delete = _cells(table1, "delete")
    # Interactivity sanity: the worst rollback stays well under 5 s.
    assert max(delete, default=0) < 5000

    bundle = get_dataset("flickr", SCALE)
    instance = exp6_instance("flickr", "Q4", bundle.graph)

    def delete_first_edge():
        boomer = formulate_without_run(bundle, instance)
        u, v = instance.template.edges[0]
        report = boomer.apply(DeleteEdge(u=u, v=v))
        return report.modification.elapsed_seconds

    benchmark.pedantic(delete_first_edge, rounds=1, iterations=1)


def test_table1_missing_edges_marked(benchmark, table1):
    # Q5 lacks e5/e6 -> '-' cells, matching the paper's table layout.
    q5_rows = [row for row in table1.rows if row[1] == "Q5"]
    assert q5_rows
    e5_index = table1.headers.index("tighten e5 (ms)")
    assert all(row[e5_index] == "-" for row in q5_rows)

    bundle = get_dataset("wordnet", SCALE)
    instance = exp6_instance("wordnet", "Q6", bundle.graph)

    def loosen_once():
        boomer = formulate_without_run(bundle, instance)
        u, v = instance.template.edges[3]
        report = boomer.apply(ModifyBounds(u=u, v=v, lower=1, upper=3))
        return report.modification.elapsed_seconds

    benchmark.pedantic(loosen_once, rounds=1, iterations=1)
