"""User-speed robustness (exp9, reproduction extra).

Regenerates the simulated user panel and checks the paper-implied shape:
deferment strategies are robust to how fast the user formulates; Immediate
construction is the strategy whose SRT depends on user speed (fast users
leave less latency to hide expensive edges in).
"""

import pytest

from benchmarks.conftest import ASSERT_SHAPES, SCALE, experiment_tables, show
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import scale_settings
from repro.gui.session import VisualSession


@pytest.fixture(scope="module")
def panel():
    return experiment_tables("exp9")["User panel"]


def _mean_by(table, strategy, speed):
    for row in table.rows:
        if row[0] == strategy and row[1] == speed:
            return float(row[2])
    raise AssertionError(f"missing row {strategy}/{speed}")


def test_user_panel_deferment_robust_to_speed(benchmark, panel):
    show(panel)
    if ASSERT_SHAPES:
        # IC: a fast user (speed 0.5) costs clearly more SRT than a slow
        # one (speed 2.0) — the backlog effect.
        assert _mean_by(panel, "IC", 0.5) > _mean_by(panel, "IC", 2.0)
        # DR: run-phase drain dominates; speed changes SRT far less than
        # it changes IC's.  Compare spreads.
        ic_spread = _mean_by(panel, "IC", 0.5) - _mean_by(panel, "IC", 2.0)
        dr_spread = abs(_mean_by(panel, "DR", 0.5) - _mean_by(panel, "DR", 2.0))
        assert dr_spread < ic_spread

    settings = scale_settings(SCALE)
    bundle = get_dataset("wordnet", SCALE)
    instance = exp3_instance("wordnet", "Q1", bundle.graph)
    session = VisualSession(
        bundle.make_context(), bundle.latency, jitter=0.15, speed=0.5, seed=3
    )
    benchmark.pedantic(
        lambda: session.run(
            instance, strategy="DI", max_results=settings.max_results
        ).srt_seconds,
        rounds=1,
        iterations=1,
    )
