"""Shared benchmark infrastructure.

Each ``bench_*`` module regenerates one (or a few) of the paper's artifacts
at the ``small`` scale.  Experiment runs are expensive, so they execute
once per pytest session (cached in ``_table_cache``) and every benchmark
function then:

1. prints the regenerated table (the same rows/series the paper reports),
2. asserts the paper's qualitative *shape* (who wins, roughly by how much),
3. times a representative measured operation through pytest-benchmark
   (rounds kept minimal — the interesting numbers are in the tables, the
   benchmark timer documents the per-operation cost).

Set ``REPRO_BENCH_SCALE=tiny`` to smoke the whole bench suite quickly
(shape assertions are relaxed at tiny scale, where latency windows dwarf
compute and several paper effects vanish by design).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_experiment
from repro.experiments.harness import ExperimentTable

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
#: Shape assertions only run at the calibrated benchmark scale.
ASSERT_SHAPES = SCALE == "small"

_table_cache: dict[str, dict[str, ExperimentTable]] = {}


def experiment_tables(exp_id: str) -> dict[str, ExperimentTable]:
    """Run (once) and cache an experiment's tables, keyed by artifact."""
    if exp_id not in _table_cache:
        experiment = get_experiment(exp_id)
        _table_cache[exp_id] = {t.artifact: t for t in experiment.run(scale=SCALE)}
    return _table_cache[exp_id]


def show(table: ExperimentTable) -> None:
    """Print a regenerated artifact (pytest -s / bench logs capture it)."""
    print()
    print(table.render())


def column(table: ExperimentTable, header: str) -> list:
    """Extract one column by header name."""
    index = table.headers.index(header)
    return [row[index] for row in table.rows]


def rows_where(table: ExperimentTable, **filters) -> list[list]:
    """Rows whose named columns equal the given values."""
    indices = {table.headers.index(k): v for k, v in filters.items()}
    return [
        row
        for row in table.rows
        if all(row[i] == v for i, v in indices.items())
    ]


def numeric(values: list) -> list[float]:
    """Drop non-numeric cells (e.g. 'DNF') and coerce the rest."""
    out = []
    for v in values:
        if isinstance(v, (int, float)):
            out.append(float(v))
    return out


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return SCALE
