"""Driving the experiment harness from Python.

The benchmark suite (`pytest benchmarks/ --benchmark-only`) regenerates
every paper artifact, but the harness is also a plain library: pick an
experiment, run it at a scale, inspect the tables, render markdown.  This
example runs the cheapest experiment (exp9, the simulated-user panel) at
the tiny scale and shows the full reporting pipeline, including the
programmatic claim verdicts.

Run with:  python examples/benchmark_walkthrough.py
"""

from repro.experiments import EXPERIMENT_REGISTRY, get_experiment, render_markdown
from repro.experiments.claims import evaluate_claims


def main() -> None:
    print("registered experiments:")
    for exp_id in sorted(EXPERIMENT_REGISTRY):
        cls = EXPERIMENT_REGISTRY[exp_id]
        print(f"  {exp_id}: {cls.title} [{', '.join(cls.artifacts)}]")

    experiment = get_experiment("exp9")
    print(f"\nrunning {experiment.id} at scale=tiny ...")
    tables = experiment.run(scale="tiny")
    for table in tables:
        print()
        print(table.render())

    # The markdown path is what writes EXPERIMENTS.md; claim verdicts are
    # evaluated over whatever artifacts the run produced (exp9 alone feeds
    # none of the paper-claim checkers, so all verdicts come back "—").
    verdicts = evaluate_claims({t.artifact: t for t in tables})
    undecidable = sum(1 for v in verdicts if v.passed is None)
    print(
        f"\nclaim checkers defined: {len(verdicts)}; "
        f"not decidable from exp9 alone: {undecidable} "
        "(run `python -m repro.experiments all` for the full record)"
    )

    markdown = render_markdown(tables, scale="tiny")
    print(f"\nmarkdown report: {len(markdown.splitlines())} lines "
          f"(see EXPERIMENTS.md for the full small-scale run)")


if __name__ == "__main__":
    main()
