"""Example 1.1 of the paper: cross-species apoptosis pathway matching.

Bob knows the protein-protein interactions (PPI) of four apoptosis genes in
*C. elegans* (egl-1, ced-3, ced-4, ced-9) and their human homologs (BID,
CASP3, APAF1, BCL2).  He asks whether the worm's interaction structure is
*conserved* in the human PPI — but evolution may have inserted intermediate
interactions, so a query edge should match a bounded *path*, not only a
direct edge.  That is exactly a BPH query.

This example builds a small synthetic human-PPI neighborhood (the real
BioGRID network is proprietary-scale; the synthetic one preserves the
relevant structure: the four homologs plus intermediate signalling
proteins), formulates the Figure-1(c) query through the simulated GUI, and
prints the conserved sub-pathways with their matching paths.

Run with:  python examples/bio_homolog_search.py
"""

from repro.core import Bounds, make_context, preprocess
from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.graph import GraphBuilder


def build_human_ppi():
    """A toy human apoptosis PPI neighborhood.

    Gene-family labels play the role of vertex labels (a protein may have
    several paralogs carrying the same family label — e.g. two caspase-3
    family members — which is what makes the search non-trivial).
    """
    builder = GraphBuilder("human-ppi")
    proteins = [
        ("BID", "BID"),        # 0
        ("CASP3", "CASP3"),    # 1
        ("CASP3b", "CASP3"),   # 2  paralog
        ("APAF1", "APAF1"),    # 3
        ("BCL2", "BCL2"),      # 4
        ("BCL2L1", "BCL2"),    # 5  paralog (BCL-xL)
        ("CASP9", "SIG"),      # 6  intermediate: apoptosome caspase
        ("CYCS", "SIG"),       # 7  intermediate: cytochrome c
        ("BAX", "SIG"),        # 8  intermediate: pore former
        ("TP53", "SIG"),       # 9  unrelated hub
        ("MDM2", "SIG"),       # 10
    ]
    ids = {}
    for name, family in proteins:
        ids[name] = builder.add_vertex(family)
    interactions = [
        # conserved core (with evolutionary detours)
        ("BID", "BAX"), ("BAX", "BCL2"),          # BID - BCL2 via BAX (2 hops)
        ("BID", "CASP3"),                          # direct
        ("BCL2", "APAF1"),                         # direct
        ("APAF1", "CASP9"), ("CASP9", "CASP3"),    # APAF1 - CASP3 via CASP9
        ("CYCS", "APAF1"), ("BCL2", "CYCS"),
        ("BCL2L1", "BAX"),
        ("CASP3b", "CASP9"),
        # background interactions
        ("TP53", "MDM2"), ("TP53", "BAX"), ("TP53", "BCL2"),
    ]
    for a, b in interactions:
        builder.add_edge(ids[a], ids[b])
    return builder.build(), ids


#: Figure 1(c): the worm-derived query.  Vertices carry homolog families;
#: edges carry [lower, upper] path-length constraints ("should not be far
#: apart, but need not interact directly").
QUERY_EDGES = [
    ("BID", "CASP3", Bounds(1, 2)),   # egl-1 -- ced-3
    ("BID", "BCL2", Bounds(1, 2)),    # egl-1 -- ced-9
    ("CASP3", "APAF1", Bounds(1, 2)), # ced-3 -- ced-4
    ("APAF1", "BCL2", Bounds(1, 1)),  # ced-4 -- ced-9 (tight: must interact)
]


def main() -> None:
    graph, ids = build_human_ppi()
    print(f"human PPI neighborhood: {graph}")
    pre = preprocess(graph, t_avg_samples=1000)
    boomer = Boomer(make_context(pre), strategy="DI")

    families = ["BID", "CASP3", "APAF1", "BCL2"]
    family_vertex = {}
    for qid, family in enumerate(families):
        family_vertex[family] = qid
        boomer.apply(NewVertex(qid, family))
    for a, b, bounds in QUERY_EDGES:
        boomer.apply(
            NewEdge(family_vertex[a], family_vertex[b], bounds.lower, bounds.upper)
        )
    boomer.apply(Run())

    result = boomer.run_result
    print(
        f"\n{result.num_matches} candidate conserved pathway(s) "
        f"(SRT {result.srt_seconds * 1e3:.2f} ms)"
    )
    name_of = {v: name for name, v in ids.items()}
    for subgraph in boomer.results():
        print("\nconserved apoptosis pathway match:")
        for qid, family in enumerate(families):
            print(f"  {family:>6} -> {name_of[subgraph.assignment[qid]]}")
        for (u, v), path in sorted(subgraph.paths.items()):
            chain = " - ".join(name_of[x] for x in path)
            print(
                f"  {families[u]}..{families[v]} conserved via {chain} "
                f"(length {len(path) - 1})"
            )
    if result.num_matches:
        print(
            "\nconclusion: the worm pathway structure is conserved in this "
            "human PPI neighborhood — C. elegans is a plausible model here."
        )


if __name__ == "__main__":
    main()
