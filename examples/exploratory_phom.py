"""Extensions tour: similarity matching, exploration, ranking, rendering.

Four capabilities layered on the BPH core:

1. **Similarity-based vertex matching** — the full 1-1 p-hom semantics of
   Fan et al. (paper Section 2): a query vertex matches any data vertex
   whose label is *similar enough* (``M(v, u) >= t``), not only equal.
2. **Exploratory search** (paper Section 1's usability argument): while
   the query is half-drawn, the live CAP index can *suggest* which label
   to attach next, and report how constrained each query vertex already is.
3. **Result ranking** — compactest matches first on the Results Panel.
4. **DOT rendering** — the small-region visualization as Graphviz.

Run with:  python examples/exploratory_phom.py
"""

from repro.core import make_context, preprocess
from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.explore import estimate_selectivity, suggest_extension_labels
from repro.core.matcher import SimilarityMatcher
from repro.core.ranking import rank_results
from repro.datasets import get_dataset
from repro.gui.render import to_dot


def main() -> None:
    bundle = get_dataset("wordnet", scale="tiny")
    graph = bundle.graph
    print(f"dataset: {graph}")

    # --- similarity matching: 'n' and 'v' are deemed interchangeable ----
    def pos_similarity(query_label, data_label):
        if query_label == data_label:
            return 1.0
        interchangeable = {"n", "v"}
        if {query_label, data_label} <= interchangeable:
            return 0.7
        return 0.0

    ctx = make_context(bundle.pre, latency=bundle.latency)
    ctx.matcher = SimilarityMatcher(pos_similarity, threshold=0.6)
    boomer = Boomer(ctx, strategy="DI", max_results=300)

    boomer.apply(NewVertex(0, "n"))  # matches both nouns AND verbs now
    boomer.apply(NewVertex(1, "a"))
    boomer.apply(NewEdge(0, 1, 1, 1))
    print(
        f"q0 ('n', threshold 0.6) candidate pool: "
        f"{boomer.cap.candidate_count(0)} vertices "
        f"(label-equality would give {len(graph.vertices_with_label('n'))})"
    )

    # --- exploration on the half-drawn query -----------------------------
    selectivity = estimate_selectivity(boomer.engine)
    print(
        "selectivity so far: "
        + ", ".join(f"q{q}: {s:.0%} alive" for q, s in sorted(selectivity.items()))
    )
    suggestions = suggest_extension_labels(boomer.engine, 1, top_k=3)
    print(
        "suggested labels to attach to q1: "
        + ", ".join(f"{label!r} (support {n})" for label, n in suggestions)
    )

    # Take the top suggestion as the user's next move.
    next_label = suggestions[0][0]
    boomer.apply(NewVertex(2, next_label))
    boomer.apply(NewEdge(1, 2, 1, 2))
    boomer.apply(Run())
    run = boomer.run_result
    print(
        f"\n{run.num_matches} upper-bound matches"
        f"{' (capped)' if run.matches.truncated else ''}; "
        f"SRT {run.srt_seconds * 1e3:.2f} ms"
    )

    # --- ranking + rendering ---------------------------------------------
    results = boomer.results(limit=25)
    ranked = rank_results(results, boomer.query, ctx, scheme="compactness", limit=3)
    print("\ntop 3 most compact matches:")
    for result in ranked:
        total = sum(len(p) - 1 for p in result.paths.values())
        print(f"  {dict(sorted(result.assignment.items()))}  total path length {total}")

    dot = to_dot(ranked[0], graph, boomer.query)
    print(f"\nDOT preview of the best match ({len(dot.splitlines())} lines):")
    print("\n".join(dot.splitlines()[:6]) + "\n  ...")


if __name__ == "__main__":
    main()
