"""Query modification mid-formulation (Section 6 of the paper).

A user rarely draws the right query first try: bounds get loosened and
tightened, edges get deleted.  BOOMER maintains the CAP index through these
edits instead of rebuilding from scratch:

* tightening an upper bound re-checks existing AIVS pairs (cheap);
* loosening or deleting rolls back only the affected connected component
  of *processed* query edges and re-pools its edges;
* lower-bound edits are free (lower bounds are checked just-in-time).

This example formulates a query on the WordNet analog, applies one of each
modification, prints the engine's maintenance report per edit, and shows
that the final answers equal those of a from-scratch session.

Run with:  python examples/interactive_modification.py
"""

from repro.core.actions import DeleteEdge, ModifyBounds, NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.datasets import get_dataset


def formulate(boomer: Boomer) -> None:
    """A 4-vertex flower: n-v-a triangle plus an s petal."""
    boomer.apply(NewVertex(0, "n"))
    boomer.apply(NewVertex(1, "v"))
    boomer.apply(NewEdge(0, 1, 1, 2))
    boomer.apply(NewVertex(2, "a"))
    boomer.apply(NewEdge(1, 2, 1, 1))
    boomer.apply(NewEdge(0, 2, 1, 2))
    boomer.apply(NewVertex(3, "s"))
    boomer.apply(NewEdge(0, 3, 1, 2))


def describe(report) -> str:
    return (
        f"{report.kind}: edge {report.edge}, "
        f"{'processed' if report.was_processed else 'unprocessed'}, "
        f"levels touched {report.affected_levels or '-'}, "
        f"re-pooled {report.repooled_edges or '-'}, "
        f"pruned {report.pruned_vertices}, "
        f"{report.elapsed_seconds * 1e3:.2f} ms"
    )


def main() -> None:
    bundle = get_dataset("wordnet", scale="tiny")
    print(f"dataset: {bundle.graph}")

    boomer = Boomer(bundle.make_context(), strategy="DI", max_results=2000)
    formulate(boomer)
    print(f"formulated: {boomer.query}")
    print(f"CAP before edits: {boomer.cap.size_report().total} entries")

    # 1. Tighten (0,1) from [1,2] to [1,1]: pair re-check + prune.
    report = boomer.apply(ModifyBounds(0, 1, 1, 1)).modification
    print("\nedit 1 ", describe(report))

    # 2. Loosen (1,2) from [1,1] to [1,3]: component rollback + re-pool.
    report = boomer.apply(ModifyBounds(1, 2, 1, 3)).modification
    print("edit 2 ", describe(report))

    # 3. Raise a lower bound: free — checked just-in-time at visualization.
    report = boomer.apply(ModifyBounds(0, 3, 2, 2)).modification
    print("edit 3 ", describe(report))

    # 4. Delete the triangle chord (0,2).
    report = boomer.apply(DeleteEdge(0, 2)).modification
    print("edit 4 ", describe(report))

    boomer.apply(Run())
    edited = boomer.run_result
    print(
        f"\nafter edits: {edited.num_matches} upper-bound matches, "
        f"SRT {edited.srt_seconds * 1e3:.2f} ms"
    )

    # Cross-check: a fresh session formulating the *final* query directly.
    fresh = Boomer(bundle.make_context(), strategy="DI", max_results=2000)
    fresh.apply(NewVertex(0, "n"))
    fresh.apply(NewVertex(1, "v"))
    fresh.apply(NewEdge(0, 1, 1, 1))
    fresh.apply(NewVertex(2, "a"))
    fresh.apply(NewEdge(1, 2, 1, 3))
    fresh.apply(NewVertex(3, "s"))
    fresh.apply(NewEdge(0, 3, 2, 2))
    fresh.apply(Run())

    key = lambda r: {tuple(sorted(m.items())) for m in r.matches}
    assert key(edited) == key(fresh.run_result), "modification diverged!"
    print(
        "verified: edited session's answers equal a from-scratch session "
        f"({fresh.run_result.num_matches} matches)"
    )


if __name__ == "__main__":
    main()
