"""Quickstart: blend formulation and processing of a BPH query.

Reproduces the paper's running example (Figure 2): a triangle query
A -[1,1]- B -[1,2]- C -[1,3]- A over a 12-vertex data graph.  The engine
processes each visual action as it "arrives", and pressing Run finishes the
CAP index, enumerates the upper-bound matches V_Delta, and just-in-time
validates lower bounds while materializing one matching path per edge.

Run with:  python examples/quickstart.py
"""

from repro import Boomer, NewEdge, NewVertex, Run
from repro.core import make_context, preprocess
from repro.graph import GraphBuilder


def build_data_graph():
    """The Figure-2(b)-style data graph (0-based ids: paper's v1 = 0)."""
    builder = GraphBuilder("fig2")
    builder.add_vertices(["A", "A", "A", "A", "B", "B", "B", "B", "X", "X", "X", "C"])
    for u, v in [
        (1, 4), (2, 5), (2, 7), (3, 6), (4, 8), (8, 11),
        (5, 9), (9, 11), (7, 11), (4, 5), (0, 8),
    ]:
        builder.add_edge(u, v)
    return builder.build()


def main() -> None:
    graph = build_data_graph()
    print(f"data graph: {graph}")

    # One-time offline phase: PML distance index, 2-hop counts, t_avg.
    pre = preprocess(graph, t_avg_samples=2000)
    print(pre.summary())

    # A blender with the Defer-to-Idle strategy (the paper's best).
    boomer = Boomer(make_context(pre), strategy="DI")

    # The user draws the query.  Each action is processed inside GUI latency.
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, lower=1, upper=1))
    boomer.apply(NewVertex(2, "C"))
    boomer.apply(NewEdge(1, 2, lower=1, upper=2))
    boomer.apply(NewEdge(0, 2, lower=1, upper=3))

    # Run: complete the CAP index and enumerate V_Delta.
    boomer.apply(Run())
    result = boomer.run_result
    print(
        f"\nV_Delta: {result.num_matches} upper-bound matches "
        f"(SRT {result.srt_seconds * 1e3:.2f} ms, "
        f"CAP size {result.cap_size.total})"
    )

    # Visualize: lower bounds are checked just-in-time per displayed result.
    for subgraph in boomer.results():
        mapping = ", ".join(
            f"q{q} -> v{v + 1}" for q, v in sorted(subgraph.assignment.items())
        )
        print(f"\nmatch: {mapping}")
        for (u, v), path in sorted(subgraph.paths.items()):
            pretty = " -> ".join(f"v{x + 1}" for x in path)
            print(f"  edge (q{u}, q{v}) matched by path {pretty}")


if __name__ == "__main__":
    main()
