"""Lower bounds > 1: friends-of-friends exploration on a social network.

Section 3.1 of the paper motivates non-trivial lower bounds with the
friends-of-friends (FOF) pattern: "given a user A, explore the FOF
neighborhood of A" — the query edge from A carries bounds [2, 2]: a match
must be connected to A by a simple path of length exactly two (through a
mutual friend).  Note the semantics is existential (Definition 3.1): a
*direct* friend still qualifies if a mutual friend also exists; what the
lower bound excludes is friends connected *only* directly.

The same mechanism powers the drug-target use case from the introduction
(putative targets 1-2 hops away from an "undruggable" oncogene -> bounds
[2, 3] exclude the oncogene's direct interactors).

This example runs the FOF query on a DBLP-like collaboration network from
the dataset registry, via the full simulated-GUI pipeline.

Run with:  python examples/social_fof.py
"""

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.datasets import get_dataset


def main() -> None:
    bundle = get_dataset("dblp", scale="tiny")
    graph = bundle.graph
    print(f"collaboration network: {graph}")

    # Pick a well-connected "user A" and query for FOF pairs: a triangle-free
    # wedge A -[2,2]- F where F shares A's community label.
    hub = max(graph.iter_vertices(), key=graph.degree)
    hub_label = graph.label(hub)
    print(f"user A = vertex {hub} (label {hub_label}, degree {graph.degree(hub)})")

    boomer = Boomer(bundle.make_context(), strategy="DI", max_results=500)
    boomer.apply(NewVertex(0, hub_label))       # A's community
    boomer.apply(NewVertex(1, hub_label))       # FOF candidate, same community
    boomer.apply(NewEdge(0, 1, lower=2, upper=2))  # exactly two hops apart
    boomer.apply(Run())

    result = boomer.run_result
    print(
        f"\n{result.num_matches} candidate pairs satisfy the upper bound "
        f"(SRT {result.srt_seconds * 1e3:.2f} ms)"
    )

    # Visualization phase: keep only pairs where user A itself is matched
    # and the JIT lower-bound check confirms a genuine 2-hop connection.
    shown = 0
    rejected_direct = 0
    for match in result.matches:
        if match[0] != hub:
            continue
        subgraph = boomer.visualize(match)
        if subgraph is None:
            rejected_direct += 1
            continue
        friend_of_friend = match[1]
        path = subgraph.paths[(0, 1)]
        middle = path[1]
        is_direct = graph.has_edge(hub, friend_of_friend)
        print(
            f"  FOF: {hub} -> {middle} -> {friend_of_friend}"
            f"{'  (also direct friends)' if is_direct else ''}"
        )
        assert len(path) - 1 == 2
        shown += 1
        if shown >= 10:
            print("  ... (showing first 10)")
            break
    print(
        f"\n{rejected_direct} candidate(s) rejected by the just-in-time "
        "lower-bound check (no simple 2-hop path)"
    )


if __name__ == "__main__":
    main()
