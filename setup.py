"""Legacy setup shim.

The canonical project metadata lives in pyproject.toml; this file exists so
that `pip install -e .` works in offline environments lacking the `wheel`
package (pip falls back to `setup.py develop` when no [build-system] table
is present).
"""
from setuptools import setup

setup()
