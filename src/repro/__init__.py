"""BOOMER (SIGMOD'18) reproduction.

Blending visual formulation and processing of bounded 1-1 p-homomorphic
(BPH) queries on large networks, built from scratch in Python:

* :mod:`repro.graph` — labeled-graph substrate (CSR, generators, IO);
* :mod:`repro.indexing` — Pruned Landmark Labeling distance index;
* :mod:`repro.core` — BPH queries, the CAP index, IC/DR/DI construction
  strategies, result enumeration and just-in-time lower-bound checking;
* :mod:`repro.baseline` — the BOOMER-unaware (BU) baseline;
* :mod:`repro.gui` — the simulated visual interface (latency model,
  simulated users, measured sessions);
* :mod:`repro.workload` — template queries Q1–Q6 and instantiation;
* :mod:`repro.datasets` — emulated WordNet/DBLP/Flickr datasets;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro.datasets import get_dataset
    from repro.gui import VisualSession
    from repro.workload import instantiate

    bundle = get_dataset("wordnet", scale="tiny")
    session = VisualSession(bundle.make_context(), bundle.latency)
    result = session.run(instantiate("Q1", bundle.graph), strategy="DI")
    print(result.num_matches, result.srt_seconds)
"""

from repro import obs
from repro.core import (
    BlenderEngine,
    Boomer,
    BPHQuery,
    Bounds,
    CAPIndex,
    GUILatencyConstants,
    NewEdge,
    NewVertex,
    ModifyBounds,
    DeleteEdge,
    Run,
    RunResult,
    make_context,
    preprocess,
)
from repro.baseline import BoomerUnaware
from repro.errors import (
    CAPCorruptionError,
    DeadlineExceededError,
    DegradedModeError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
)
from repro.faults import FaultPlan
from repro.graph import Graph
from repro.gui import SessionResult, VisualSession
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    metrics,
)
from repro.resilience import Deadline, ResilienceConfig, RetryPolicy
from repro.service import QueryServer, ServiceClient, SessionManager

__version__ = "1.0.0"

#: The supported public surface.  ``tests/test_public_api.py`` pins this
#: list — additions and removals are API decisions, made deliberately
#: there, never as an import side effect.
__all__ = [
    # engine
    "Boomer",
    "BlenderEngine",
    "BPHQuery",
    "Bounds",
    "CAPIndex",
    "Graph",
    "GUILatencyConstants",
    "NewEdge",
    "NewVertex",
    "ModifyBounds",
    "DeleteEdge",
    "Run",
    "RunResult",
    "make_context",
    "preprocess",
    "BoomerUnaware",
    # harness
    "VisualSession",
    "SessionResult",
    # service
    "QueryServer",
    "ServiceClient",
    "SessionManager",
    # observability
    "obs",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "metrics",
    # errors & resilience
    "ReproError",
    "ResilienceError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    "CAPCorruptionError",
    "DegradedModeError",
    "FaultPlan",
    "Deadline",
    "ResilienceConfig",
    "RetryPolicy",
    "__version__",
]
