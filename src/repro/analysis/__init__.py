"""Codebase-aware static analysis and runtime invariant checking.

Two halves, one goal — the invariants BOOMER's blending guarantee rests
on are *enforced on every commit*, not sampled by tests:

* **boomerlint** (:mod:`~repro.analysis.engine`,
  :mod:`~repro.analysis.rules`, :mod:`~repro.analysis.registry`,
  :mod:`~repro.analysis.suppress`) — an AST-walking lint engine whose
  rules encode this repo's contracts: seeded-RNG determinism (R1), the
  typed error taxonomy (R2), the batch oracle contract (R3), the
  metrics/span naming taxonomy (R4), public-API coherence (R5), and
  service lock discipline (R6).  Run it as ``python -m repro lint
  src/repro``; suppress a deliberate exception inline with
  ``# boomerlint: disable=R2``.
* **lock-order race detection** (:mod:`~repro.analysis.lockorder`) — a
  lockdep-style monitor that instruments ``threading`` locks during the
  service concurrency tests and fails on acquisition-order cycles, the
  deadlocks that never need to actually happen to be real.

See docs/ANALYSIS.md for the rule catalog, the suppression syntax, how
to add a rule, and race-detector usage.
"""

from repro.analysis.engine import LintEngine, LintReport, ModuleSource, module_key
from repro.analysis.lockorder import (
    Inversion,
    LockOrderMonitor,
    MonitoredLock,
    MonitoredRLock,
    patch_locks,
)
from repro.analysis.registry import (
    Rule,
    Violation,
    all_rules,
    get_rules,
    register,
    rule_ids,
)

__all__ = [
    # lint engine
    "LintEngine",
    "LintReport",
    "ModuleSource",
    "module_key",
    "Rule",
    "Violation",
    "register",
    "all_rules",
    "get_rules",
    "rule_ids",
    # lock-order detector
    "LockOrderMonitor",
    "MonitoredLock",
    "MonitoredRLock",
    "Inversion",
    "patch_locks",
]
