"""Codebase-aware static analysis and runtime invariant checking.

Two halves, one goal — the invariants BOOMER's blending guarantee rests
on are *enforced on every commit*, not sampled by tests:

* **boomerlint** (:mod:`~repro.analysis.engine`,
  :mod:`~repro.analysis.rules`, :mod:`~repro.analysis.registry`,
  :mod:`~repro.analysis.suppress`) — an AST-walking lint engine whose
  rules encode this repo's contracts: seeded-RNG determinism (R1), the
  typed error taxonomy (R2), the batch oracle contract (R3), the
  metrics/span naming taxonomy (R4), public-API coherence (R5), and
  service lock discipline (R6).  On top of the per-file tier sits a
  whole-program tier (:mod:`~repro.analysis.project`,
  :mod:`~repro.analysis.dataflow`, :mod:`~repro.analysis.rules_flow`,
  :mod:`~repro.analysis.rules_project`): cross-module protocol-drift
  (R9), epoch-guard flow (R10), resource lifecycle (R11), and inferred
  lock-guard (R12) rules, plus SARIF output, a ``--baseline`` ratchet,
  and a content-hash incremental cache.  Run it as ``python -m repro
  lint src/repro``; suppress a deliberate exception inline with
  ``# boomerlint: disable=R2``.
* **lock-order race detection** (:mod:`~repro.analysis.lockorder`) — a
  lockdep-style monitor that instruments ``threading`` locks during the
  service concurrency tests and fails on acquisition-order cycles, the
  deadlocks that never need to actually happen to be real.

See docs/ANALYSIS.md for the rule catalog, the suppression syntax, how
to add a rule, and race-detector usage.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cache import LintCache
from repro.analysis.engine import LintEngine, LintReport, ModuleSource, module_key
from repro.analysis.lockorder import (
    Inversion,
    LockOrderMonitor,
    MonitoredLock,
    MonitoredRLock,
    patch_locks,
)
from repro.analysis.project import ModuleFacts, ProjectIndex, ProjectRule
from repro.analysis.registry import (
    Rule,
    Violation,
    all_rules,
    get_rules,
    register,
    rule_ids,
)
from repro.analysis.sarif import to_sarif

__all__ = [
    # lint engine
    "LintEngine",
    "LintReport",
    "ModuleSource",
    "module_key",
    "Rule",
    "Violation",
    "register",
    "all_rules",
    "get_rules",
    "rule_ids",
    # whole-program tier
    "ModuleFacts",
    "ProjectIndex",
    "ProjectRule",
    # operational modes
    "LintCache",
    "to_sarif",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    # lock-order detector
    "LockOrderMonitor",
    "MonitoredLock",
    "MonitoredRLock",
    "Inversion",
    "patch_locks",
]
