"""Baseline ratchet for boomerlint: adopt new rules without a flag day.

A baseline file records the *accepted* violations of a tree as
fingerprint counts.  With ``--baseline`` the engine subtracts up to the
recorded count of each fingerprint from the report, so pre-existing debt
is tolerated while anything new fails the gate — and because matching is
by count, fixing a debt violation and introducing an identical one
elsewhere in the same module is a wash, never a regression credit that
grows.  Re-running with ``--update-baseline`` after paying debt shrinks
the file: the ratchet only tightens.

Fingerprints are ``rule::module-key::message`` — deliberately excluding
line/column so ordinary edits above a tolerated violation don't spuriously
"move" it out of the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.registry import Violation

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

_FORMAT = 1


def fingerprint(violation: Violation) -> str:
    """The stable identity of a violation for baseline matching."""
    return f"{violation.rule}::{violation.path}::{violation.message}"


def load_baseline(path: Path) -> dict[str, int]:
    """Fingerprint counts from a baseline file written by us."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    counts = payload.get("violations", {})
    return {str(key): int(value) for key, value in counts.items()}


def write_baseline(path: Path, violations: list[Violation]) -> None:
    """Record ``violations`` as the new accepted debt."""
    counts: dict[str, int] = {}
    for violation in violations:
        key = fingerprint(violation)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "format": _FORMAT,
        "tool": "boomerlint",
        "violations": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    violations: list[Violation], baseline: dict[str, int]
) -> tuple[list[Violation], int]:
    """Split ``violations`` into (new, tolerated-count).

    Up to the baselined count of each fingerprint is tolerated; the
    remainder — newly introduced debt — is returned for reporting.
    """
    budget = dict(baseline)
    fresh: list[Violation] = []
    tolerated = 0
    for violation in violations:
        key = fingerprint(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            tolerated += 1
        else:
            fresh.append(violation)
    return fresh, tolerated
