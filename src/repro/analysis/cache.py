"""Content-hash incremental cache for boomerlint.

The CI lint gate re-parses the whole tree on every push even though a
typical commit touches a handful of files.  This cache memoizes the
per-file work — parse, local-rule pass, suppression filtering, and the
:class:`~repro.analysis.project.ModuleFacts` extraction — keyed by the
SHA-256 of the file *bytes*, so a warm run only re-analyzes files whose
content actually changed.  Cross-module (project) rules are recomputed
every run from the cached facts: they are cheap by construction, and
their verdicts depend on *other* files, so caching them per-file would
be wrong.

Invalidation is wholesale: the cache records a ruleset signature
(sorted rule ids) and a format version, and a mismatch in either
discards everything.  A rule's *implementation* changing without its id
changing is not detected — bump :data:`CACHE_VERSION` when rule
semantics change, which is also what keeps stale CI caches harmless.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable

__all__ = ["CACHE_VERSION", "LintCache", "ruleset_signature"]

CACHE_VERSION = 1


def ruleset_signature(rule_ids: Iterable[str]) -> str:
    """The cache-invalidation key of a rule set."""
    return ",".join(sorted(rule_ids))


class LintCache:
    """A JSON file of per-content-hash lint results.

    Entries are opaque dicts owned by the engine (local violations,
    suppression state, module facts).  ``save()`` persists only when
    something changed, so a fully-warm run never rewrites the file.
    """

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # absent or corrupt: start cold
        if (
            isinstance(payload, dict)
            and payload.get("version") == CACHE_VERSION
            and payload.get("ruleset") == signature
            and isinstance(payload.get("entries"), dict)
        ):
            self._entries = payload["entries"]

    @staticmethod
    def digest(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def lookup(self, digest: str) -> dict[str, Any] | None:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(self, digest: str, entry: dict[str, Any]) -> None:
        self._entries[digest] = entry
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "ruleset": self.signature,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        self._dirty = False
