"""Intra-procedural dataflow for boomerlint: a CFG over ``ast`` + solver.

The whole-program rules (R10 epoch-guard, R11 resource lifecycle) need
more than a tree walk: *where* on a function's paths something happens —
is every dereference dominated by the freshness check, does every exit
path close the handle.  This module gives them exactly enough machinery:

* :func:`build_cfg` — a conservative control-flow graph over one
  function body.  Blocks hold **steps** (simple statements, plus the
  header expressions of compound statements: an ``if``'s test, a
  ``while``'s test, a ``for``'s iterable, a ``with``'s context
  expressions), so a transfer function sees every expression in
  execution order.
* :func:`solve_forward` — a worklist solver for forward analyses over
  that CFG; :func:`iter_step_states` replays the transfer function
  inside each block so rules can read the state *at* a step.

Deliberate simplifications (documented here because the rules inherit
them):

* **Explicit control flow only.**  ``raise`` ends a path without
  reaching the exit block, and implicit exception edges (any expression
  may throw) are not modeled — resource rules therefore special-case
  ``finally`` blocks lexically instead.
* **``finally`` runs on fall-through.**  A ``return`` inside ``try``
  jumps straight to the exit block; the finalbody is on the normal
  (fall-through) path only.  Rule R11 pre-exempts names closed in any
  ``finally`` for exactly this reason.
* **Nested scopes are opaque.**  A nested ``def``/``lambda`` is one
  step; its body is never entered (it runs at some other time, under
  some other state).

The framework is purely static, like the rest of boomerlint: it reads
``ast`` nodes and never executes anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

__all__ = [
    "Block",
    "CFG",
    "build_cfg",
    "solve_forward",
    "iter_step_states",
    "scoped_walk",
]

S = TypeVar("S")

#: Nested-scope nodes whose bodies an intra-procedural analysis must not
#: descend into (they execute under a different frame, later or never).
_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


def scoped_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class scopes.

    The root itself is yielded even when it is a scope node (callers
    dispatch on it); only *nested* scopes below the root are opaque.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_NODES):
                yield child  # visible as a step, opaque inside
                continue
            stack.append(child)


@dataclass
class Block:
    """One straight-line run of steps with its successor edges."""

    id: int
    steps: list[ast.AST] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)


@dataclass
class CFG:
    """A function body as blocks; ``entry`` starts it, ``exit`` ends it.

    The exit block is reached by falling off the end and by every
    ``return``; a path that ``raise``s never reaches it (exceptional
    exits are not modeled).
    """

    blocks: list[Block]
    entry: int
    exit: int

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.exit = self._new()

    def _new(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        entry = self._new()
        end = self._stmts(fn.body, entry, loop=None)
        if end is not None:
            end.succs.add(self.exit.id)
        return CFG(blocks=self.blocks, entry=entry.id, exit=self.exit.id)

    # -- statement lowering ---------------------------------------------
    def _stmts(
        self,
        body: list[ast.stmt],
        current: Block | None,
        loop: tuple[Block, Block] | None,
    ) -> Block | None:
        """Lower ``body`` starting in ``current``; returns the fall-through
        block, or None when every path terminated (return/raise/break)."""
        for stmt in body:
            if current is None:
                # Unreachable code after a terminator; skip it entirely
                # (analyzing dead statements would only produce noise).
                return None
            current = self._stmt(stmt, current, loop)
        return current

    def _stmt(
        self,
        stmt: ast.stmt,
        current: Block,
        loop: tuple[Block, Block] | None,
    ) -> Block | None:
        if isinstance(stmt, ast.Return):
            current.steps.append(stmt)
            current.succs.add(self.exit.id)
            return None
        if isinstance(stmt, ast.Raise):
            current.steps.append(stmt)
            return None  # exceptional exit: path ends, never reaches exit
        if isinstance(stmt, ast.Break):
            if loop is not None:
                current.succs.add(loop[1].id)
            return None
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                current.succs.add(loop[0].id)
            return None
        if isinstance(stmt, ast.If):
            current.steps.append(stmt.test)
            after = self._new()
            then_entry = self._new()
            current.succs.add(then_entry.id)
            then_end = self._stmts(stmt.body, then_entry, loop)
            if then_end is not None:
                then_end.succs.add(after.id)
            if stmt.orelse:
                else_entry = self._new()
                current.succs.add(else_entry.id)
                else_end = self._stmts(stmt.orelse, else_entry, loop)
                if else_end is not None:
                    else_end.succs.add(after.id)
            else:
                current.succs.add(after.id)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new()
            after = self._new()
            current.succs.add(header.id)
            if isinstance(stmt, ast.While):
                header.steps.append(stmt.test)
            else:
                header.steps.append(stmt.iter)
            body_entry = self._new()
            header.succs.add(body_entry.id)
            header.succs.add(after.id)  # zero iterations / condition false
            body_end = self._stmts(stmt.body, body_entry, (header, after))
            if body_end is not None:
                body_end.succs.add(header.id)
            if stmt.orelse:
                # The else of a loop runs on normal exhaustion; model it
                # on the header->after edge by inlining before `after`.
                else_entry = self._new()
                header.succs.discard(after.id)
                header.succs.add(else_entry.id)
                else_end = self._stmts(stmt.orelse, else_entry, loop)
                if else_end is not None:
                    else_end.succs.add(after.id)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                current.steps.append(item.context_expr)
            return self._stmts(stmt.body, current, loop)
        if isinstance(stmt, ast.Try):
            body_entry = self._new()
            current.succs.add(body_entry.id)
            join = self._new()
            # Handlers hang off the try entry: an exception may fire
            # before any body statement completed.
            for handler in stmt.handlers:
                handler_entry = self._new()
                body_entry.succs.add(handler_entry.id)
                handler_end = self._stmts(handler.body, handler_entry, loop)
                if handler_end is not None:
                    handler_end.succs.add(join.id)
            body_end = self._stmts(stmt.body, body_entry, loop)
            if stmt.orelse and body_end is not None:
                body_end = self._stmts(stmt.orelse, body_end, loop)
            if body_end is not None:
                body_end.succs.add(join.id)
            if stmt.finalbody:
                final_entry = self._new()
                # Re-point every edge into `join` through the finalbody.
                join.succs.add(final_entry.id)
                return self._stmts(stmt.finalbody, final_entry, loop)
            return join
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            current.steps.append(stmt.subject)
            after = self._new()
            for case in stmt.cases:
                case_entry = self._new()
                current.succs.add(case_entry.id)
                case_end = self._stmts(case.body, case_entry, loop)
                if case_end is not None:
                    case_end.succs.add(after.id)
            current.succs.add(after.id)  # no case matched
            return after
        # Simple statement (including nested def/class, kept opaque).
        current.steps.append(stmt)
        return current


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The control-flow graph of one function definition."""
    return _Builder().build(fn)


def solve_forward(
    cfg: CFG,
    entry_state: S,
    transfer: Callable[[S, ast.AST], S],
    meet: Callable[[S, S], S],
) -> dict[int, S]:
    """Forward worklist solver; returns the in-state of each reached block.

    ``transfer(state, step)`` folds one step; ``meet`` joins states where
    paths converge.  Unreachable blocks are absent from the result (the
    meet runs over *seen* paths only), which is the right default for
    both must- and may-analyses over ``==``-comparable states.
    """
    in_states: dict[int, S] = {cfg.entry: entry_state}
    worklist: list[int] = [cfg.entry]
    while worklist:
        block_id = worklist.pop()
        block = cfg.block(block_id)
        state = in_states[block_id]
        for step in block.steps:
            state = transfer(state, step)
        for succ in block.succs:
            if succ not in in_states:
                in_states[succ] = state
                worklist.append(succ)
            else:
                merged = meet(in_states[succ], state)
                if merged != in_states[succ]:
                    in_states[succ] = merged
                    worklist.append(succ)
    return in_states


def iter_step_states(
    cfg: CFG,
    in_states: dict[int, S],
    transfer: Callable[[S, ast.AST], S],
) -> Iterator[tuple[ast.AST, S]]:
    """Replay ``transfer`` through each reached block, yielding every
    ``(step, state-before-step)`` pair — how rules inspect converged
    solver results at statement granularity."""
    for block in cfg.blocks:
        if block.id not in in_states:
            continue
        state = in_states[block.id]
        for step in block.steps:
            yield step, state
            state = transfer(state, step)
