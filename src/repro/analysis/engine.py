"""The boomerlint engine: file walking, parsing, rule dispatch, reporting.

The engine is deliberately *static*: it parses files with :mod:`ast` and
never imports the code under analysis, so linting a broken tree cannot
execute broken code.  Rules are scoped by **module key** — the path tail
starting at the last ``repro`` component (``repro/service/manager.py``)
— so fixtures in a temp directory exercise path-scoped rules simply by
recreating the package layout underneath any root.

A file that does not parse is reported as a ``PARSE`` violation rather
than aborting the run: CI should list every problem of a tree in one
pass, and a syntax error in one module must not hide rule hits in the
other hundred.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.registry import Rule, Violation, all_rules, get_rules
from repro.analysis.suppress import Suppressions, parse_suppressions
from repro.errors import LintUsageError

__all__ = ["ModuleSource", "LintReport", "LintEngine", "module_key", "iter_python_files"]

#: Rule id used for files the parser rejects (not suppressible per-line:
#: a file that does not parse has no trustworthy line table).
PARSE_RULE = "PARSE"


def module_key(path: Path) -> str:
    """The repro-rooted posix key of ``path`` (used for rule scoping).

    ``/any/prefix/repro/service/manager.py`` -> ``repro/service/manager.py``;
    a path with no ``repro`` component keys as its bare filename, which
    matches no path-scoped rule — exactly right for loose fixture files.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py"))
        elif path.is_file():
            seen.add(path)
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(seen)


@dataclass
class ModuleSource:
    """One parsed module, as rules see it."""

    path: Path
    display: str  # path as given (what violations print)
    key: str  # repro-rooted key (what scoping matches)
    text: str
    tree: ast.Module
    suppressions: Suppressions


@dataclass
class LintReport:
    """Outcome of one engine run over a set of paths."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """True when the tree is clean (exit code 0)."""
        return not self.violations

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the CLI's ``--format json`` output)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "violations": [v.to_dict() for v in self.violations],
        }


class LintEngine:
    """Runs a rule set over source files and folds results into a report."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = list(rules) if rules is not None else all_rules()

    @classmethod
    def for_rule_ids(cls, ids: Iterable[str]) -> "LintEngine":
        """An engine restricted to the given rule ids (CLI ``--rules``)."""
        return cls(rules=get_rules(ids))

    # -- entry points ----------------------------------------------------
    def lint_paths(self, paths: Iterable[Path]) -> LintReport:
        """Lint every .py file under ``paths`` (files or directories)."""
        report = LintReport()
        for path in iter_python_files(paths):
            self._lint_one(path, path.read_text(encoding="utf-8"), report)
        return report

    def lint_source(self, text: str, path: Path | str = "<string>") -> LintReport:
        """Lint in-memory source (fixture tests, editor integrations)."""
        report = LintReport()
        self._lint_one(Path(path), text, report)
        return report

    # -- internals -------------------------------------------------------
    def _lint_one(self, path: Path, text: str, report: LintReport) -> None:
        report.files_checked += 1
        display = str(path)
        try:
            tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    rule=PARSE_RULE,
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            return
        module = ModuleSource(
            path=path,
            display=display,
            key=module_key(path),
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
        )
        for rule in self.rules:
            for violation in rule.check(module):
                if module.suppressions.suppressed(violation.rule, violation.line):
                    report.suppressed += 1
                else:
                    report.violations.append(violation)
        report.violations.sort(key=lambda v: v.sort_key)
