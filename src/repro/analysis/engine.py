"""The boomerlint engine: file walking, parsing, rule dispatch, reporting.

The engine is deliberately *static*: it parses files with :mod:`ast` and
never imports the code under analysis, so linting a broken tree cannot
execute broken code.  Rules are scoped by **module key** — the path tail
starting at the last ``repro`` component (``repro/service/manager.py``)
— so fixtures in a temp directory exercise path-scoped rules simply by
recreating the package layout underneath any root.

A file that does not parse, does not decode as UTF-8, or cannot be read
at all is reported as a ``PARSE`` violation rather than aborting the
run: CI should list every problem of a tree in one pass, and a broken
module must not hide rule hits in the other hundred.

Two passes.  The per-file pass runs the local rules (R1–R8 and the
dataflow rules) and extracts each module's
:class:`~repro.analysis.project.ModuleFacts`; the project pass then
feeds the assembled :class:`~repro.analysis.project.ProjectIndex` to the
cross-module rules (R9+).  Project-rule violations go through the inline
suppressions of the module they anchor in, exactly like local hits.
With a :class:`~repro.analysis.cache.LintCache` attached, the per-file
pass is skipped for content-unchanged files and the project pass runs
from cached facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.analysis.cache import LintCache, ruleset_signature
from repro.analysis.project import (
    ModuleFacts,
    ProjectIndex,
    ProjectRule,
    collect_facts,
)
from repro.analysis.registry import Rule, Violation, all_rules, get_rules
from repro.analysis.suppress import Suppressions, parse_suppressions
from repro.errors import LintUsageError

__all__ = ["ModuleSource", "LintReport", "LintEngine", "module_key", "iter_python_files"]

#: Rule id used for files the parser rejects (not suppressible per-line:
#: a file that does not parse has no trustworthy line table).
PARSE_RULE = "PARSE"


def module_key(path: Path) -> str:
    """The repro-rooted posix key of ``path`` (used for rule scoping).

    ``/any/prefix/repro/service/manager.py`` -> ``repro/service/manager.py``;
    a path with no ``repro`` component keys as its bare filename, which
    matches no path-scoped rule — exactly right for loose fixture files.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def _is_excluded_dir(path: Path) -> bool:
    """Directories a recursive walk must not enter: caches, hidden trees,
    and virtualenvs (detected by their ``pyvenv.cfg`` marker)."""
    name = path.name
    if name == "__pycache__" or name.startswith("."):
        return True
    return (path / "pyvenv.cfg").is_file()


def _walk_dir(root: Path) -> Iterator[Path]:
    for entry in sorted(root.iterdir()):
        if entry.is_dir():
            if not _is_excluded_dir(entry):
                yield from _walk_dir(entry)
        elif entry.suffix == ".py" and entry.is_file():
            yield entry


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Recursion skips ``__pycache__``, hidden directories, and virtualenvs
    so ``repro lint .`` at a repo root is usable; an explicitly named
    path is never excluded (naming it is opting in).
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.update(_walk_dir(path))
        elif path.is_file():
            seen.add(path)
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(seen)


@dataclass
class ModuleSource:
    """One parsed module, as rules see it."""

    path: Path
    display: str  # path as given (what violations print)
    key: str  # repro-rooted key (what scoping matches)
    text: str
    tree: ast.Module
    suppressions: Suppressions


@dataclass
class LintReport:
    """Outcome of one engine run over a set of paths."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Pre-existing violations tolerated by a ``--baseline`` file.
    baselined: int = 0
    #: Files served from the incremental cache (0 without a cache).
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        """True when the tree is clean (exit code 0)."""
        return not self.violations

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the CLI's ``--format json`` output)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "cache_hits": self.cache_hits,
            "violations": [v.to_dict() for v in self.violations],
        }


class LintEngine:
    """Runs a rule set over source files and folds results into a report."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = list(rules) if rules is not None else all_rules()
        self.local_rules = [r for r in self.rules if not isinstance(r, ProjectRule)]
        self.project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]

    @classmethod
    def for_rule_ids(cls, ids: Iterable[str]) -> "LintEngine":
        """An engine restricted to the given rule ids (CLI ``--rules``)."""
        return cls(rules=get_rules(ids))

    def open_cache(self, path: Path) -> LintCache:
        """An incremental cache bound to this engine's rule set."""
        return LintCache(path, ruleset_signature(r.id for r in self.rules))

    # -- entry points ----------------------------------------------------
    def lint_paths(
        self, paths: Iterable[Path], cache: LintCache | None = None
    ) -> LintReport:
        """Lint every .py file under ``paths`` (files or directories)."""
        report = LintReport()
        index = ProjectIndex()
        suppressions: dict[str, Suppressions] = {}
        for path in iter_python_files(paths):
            self._lint_file(path, report, index, suppressions, cache)
        self._project_pass(index, suppressions, report)
        report.violations.sort(key=lambda v: v.sort_key)
        if cache is not None:
            cache.save()
            report.cache_hits = cache.hits
        return report

    def lint_source(self, text: str, path: Path | str = "<string>") -> LintReport:
        """Lint in-memory source (fixture tests, editor integrations)."""
        report = LintReport()
        index = ProjectIndex()
        suppressions: dict[str, Suppressions] = {}
        report.files_checked += 1
        module = self._parse(Path(path), str(path), text, report)
        if module is not None:
            self._local_pass(module, report, index, suppressions)
        self._project_pass(index, suppressions, report)
        report.violations.sort(key=lambda v: v.sort_key)
        return report

    # -- per-file pass ----------------------------------------------------
    def _lint_file(
        self,
        path: Path,
        report: LintReport,
        index: ProjectIndex,
        suppressions: dict[str, Suppressions],
        cache: LintCache | None,
    ) -> None:
        report.files_checked += 1
        display = str(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            report.violations.append(
                Violation(
                    rule=PARSE_RULE,
                    path=display,
                    line=1,
                    col=1,
                    message=f"file cannot be read: {exc.strerror or exc}",
                )
            )
            return
        if cache is not None:
            digest = cache.digest(data)
            entry = cache.lookup(digest)
            if entry is not None:
                self._restore(entry, path, display, report, index, suppressions)
                return
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            report.violations.append(
                Violation(
                    rule=PARSE_RULE,
                    path=display,
                    line=1,
                    col=1,
                    message=f"file is not valid UTF-8: {exc.reason} "
                    f"at byte {exc.start}",
                )
            )
            return
        module = self._parse(path, display, text, report)
        if module is None:
            return
        kept, suppressed = self._local_pass(module, report, index, suppressions)
        if cache is not None:
            facts = index.get(module.key) if self.project_rules else None
            cache.store(
                digest,
                {
                    "violations": [v.to_dict() for v in kept],
                    "suppressed": suppressed,
                    "suppressions": module.suppressions.to_dict(),
                    "facts": facts.to_dict() if facts is not None else None,
                },
            )

    def _parse(
        self, path: Path, display: str, text: str, report: LintReport
    ) -> ModuleSource | None:
        try:
            tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    rule=PARSE_RULE,
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            return None
        return ModuleSource(
            path=path,
            display=display,
            key=module_key(path),
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
        )

    def _local_pass(
        self,
        module: ModuleSource,
        report: LintReport,
        index: ProjectIndex,
        suppressions: dict[str, Suppressions],
    ) -> tuple[list[Violation], int]:
        """Run local rules; returns (kept hits, suppressed count)."""
        kept: list[Violation] = []
        suppressed = 0
        for rule in self.local_rules:
            for violation in rule.check(module):
                if module.suppressions.suppressed(violation.rule, violation.line):
                    suppressed += 1
                else:
                    kept.append(violation)
        report.violations.extend(kept)
        report.suppressed += suppressed
        if self.project_rules:
            index.add(collect_facts(module))
            suppressions[module.display] = module.suppressions
        return kept, suppressed

    def _restore(
        self,
        entry: dict[str, Any],
        path: Path,
        display: str,
        report: LintReport,
        index: ProjectIndex,
        suppressions: dict[str, Suppressions],
    ) -> None:
        """Fold one cache entry into the run, re-rooting stored paths
        (the same bytes may be linted under a different display path)."""
        for payload in entry.get("violations", []):
            violation = Violation.from_dict(payload)
            if violation.path != display:
                violation = Violation(
                    rule=violation.rule,
                    path=display,
                    line=violation.line,
                    col=violation.col,
                    message=violation.message,
                )
            report.violations.append(violation)
        report.suppressed += int(entry.get("suppressed", 0))
        if self.project_rules:
            facts_payload = entry.get("facts")
            if facts_payload is not None:
                facts = ModuleFacts.from_dict(facts_payload)
                facts.key = module_key(path)
                facts.display = display
                index.add(facts)
            suppressions[display] = Suppressions.from_dict(
                entry.get("suppressions", {})
            )

    # -- project pass -----------------------------------------------------
    def _project_pass(
        self,
        index: ProjectIndex,
        suppressions: dict[str, Suppressions],
        report: LintReport,
    ) -> None:
        for rule in self.project_rules:
            for violation in rule.finalize(index):
                module_sup = suppressions.get(violation.path)
                if module_sup is not None and module_sup.suppressed(
                    violation.rule, violation.line
                ):
                    report.suppressed += 1
                else:
                    report.violations.append(violation)
