"""Runtime lock-order race detector (a miniature lockdep).

The multi-session service takes locks at three levels — the manager
lock, per-session locks, the scheduler lock — and a deadlock needs no
actual collision to be latent in the code: it only needs two code paths
that *can* take the same pair of locks in opposite orders.  This module
catches that statically-invisible hazard dynamically, the way the Linux
kernel's lockdep does:

* every instrumented lock is tagged with its **allocation site**
  (``manager.py:110``) — the class of lock, not the instance, because an
  inversion between *any* two sessions' locks is the same bug;
* each thread tracks the locks it currently holds; a successful
  **blocking** acquisition of ``B`` while holding ``A`` records the
  directed edge ``site(A) -> site(B)``;
* a cycle in that graph is a lock-order inversion, reported immediately
  with the witnessing edge and thread — no deadlock, timeout, or lucky
  schedule required.

Non-blocking acquisitions (``acquire(blocking=False)``) record no edge:
a trylock cannot deadlock, and the scheduler's donation path relies on
exactly that to touch beneficiary sessions safely.  Reentrant
acquisitions of an :class:`MonitoredRLock` the thread already owns are
likewise edge-free.

Use :func:`patch_locks` to instrument everything a code region creates::

    monitor = LockOrderMonitor()
    with patch_locks(monitor):
        manager = SessionManager(ctx)   # its locks are now monitored
        ... run the concurrency test ...
    monitor.assert_clean()              # raises LockOrderViolationError

(The test suite runs the service concurrency tests under this monitor
when ``REPRO_LOCK_MONITOR=1`` — the CI ``lint-invariants`` job's second
half.)
"""

from __future__ import annotations

import os.path
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import LockOrderViolationError

__all__ = [
    "Inversion",
    "LockOrderMonitor",
    "MonitoredLock",
    "MonitoredRLock",
    "patch_locks",
]

# Captured at import so wrappers keep working while threading.Lock/RLock
# are patched to produce wrappers (no infinite recursion).
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_THIS_FILE = os.path.abspath(__file__)
_THREADING_FILE = os.path.abspath(threading.__file__)


def _call_site() -> str:
    """``file.py:line`` of the nearest frame outside this module/threading."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if filename not in (_THIS_FILE, _THREADING_FILE):
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


@dataclass(frozen=True)
class Inversion:
    """One detected lock-order cycle."""

    #: The allocation sites forming the cycle, starting and ending at the
    #: same site (``("a.py:1", "b.py:2", "a.py:1")``).
    cycle: tuple[str, ...]
    #: The edge whose insertion closed the cycle.
    edge: tuple[str, str]
    #: Name of the thread that closed it.
    thread: str

    def describe(self) -> str:
        chain = " -> ".join(self.cycle)
        return (
            f"lock-order inversion: acquiring {self.edge[1]} while holding "
            f"{self.edge[0]} (thread {self.thread!r}) closes the cycle {chain}"
        )


class LockOrderMonitor:
    """Records per-thread acquisition graphs and flags order cycles."""

    def __init__(self) -> None:
        self._state_lock = _REAL_LOCK()
        self._edges: dict[str, set[str]] = {}
        self._inversions: list[Inversion] = []
        self._local = threading.local()
        self.locks_created = 0
        self.acquisitions = 0

    # -- per-thread held stack -------------------------------------------
    def _held(self) -> list:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def held_sites(self) -> tuple[str, ...]:
        """Sites of the locks the calling thread currently holds."""
        return tuple(site for _, site in self._held())

    # -- wrapper callbacks -----------------------------------------------
    def note_created(self) -> None:
        with self._state_lock:
            self.locks_created += 1

    def note_acquired(self, lock: object, site: str, blocking: bool) -> None:
        """Called by a wrapper after a successful first-entry acquisition."""
        held = self._held()
        if blocking:
            with self._state_lock:
                self.acquisitions += 1
                for _, held_site in held:
                    self._add_edge(held_site, site)
        held.append((lock, site))

    def note_released(self, lock: object) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] is lock:
                del held[i]
                return

    # -- the order graph (caller holds _state_lock) ----------------------
    def _add_edge(self, a: str, b: str) -> None:
        if a == b:
            # Two locks from the same allocation site taken while one is
            # already held (e.g. two sessions' locks): order within the
            # class is undefined, which IS the inversion.
            self._inversions.append(
                Inversion(
                    cycle=(a, b),
                    edge=(a, b),
                    thread=threading.current_thread().name,
                )
            )
            return
        successors = self._edges.setdefault(a, set())
        if b in successors:
            return  # known-consistent order, nothing new to check
        successors.add(b)
        path = self._find_path(b, a)
        if path is not None:
            self._inversions.append(
                Inversion(
                    cycle=tuple(path) + (b,),
                    edge=(a, b),
                    thread=threading.current_thread().name,
                )
            )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """BFS path ``start -> ... -> goal`` over recorded edges."""
        if start == goal:
            return [start]
        parents: dict[str, str] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for succ in self._edges.get(node, ()):
                    if succ in seen:
                        continue
                    parents[succ] = node
                    if succ == goal:
                        path = [goal]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    seen.add(succ)
                    nxt.append(succ)
            frontier = nxt
        return None

    # -- reporting --------------------------------------------------------
    def inversions(self) -> list[Inversion]:
        """Every inversion recorded so far."""
        with self._state_lock:
            return list(self._inversions)

    def edges(self) -> dict[str, set[str]]:
        """A copy of the site-order graph (for diagnostics/tests)."""
        with self._state_lock:
            return {a: set(bs) for a, bs in self._edges.items()}

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderViolationError` if any cycle was seen."""
        found = self.inversions()
        if found:
            raise LockOrderViolationError(
                "; ".join(inv.describe() for inv in found), inversions=found
            )


class MonitoredLock:
    """Drop-in :func:`threading.Lock` recording order edges on acquire."""

    def __init__(self, monitor: LockOrderMonitor, name: str | None = None) -> None:
        self._monitor = monitor
        self._inner = _REAL_LOCK()
        self.site = name or _call_site()
        monitor.note_created()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            # Timed acquires cannot hang forever; treat like blocking
            # anyway — the *order* hazard they witness is real.
            self._monitor.note_acquired(self, self.site, blocking)
        return ok

    def release(self) -> None:
        self._monitor.note_released(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MonitoredLock site={self.site} locked={self.locked()}>"


class MonitoredRLock:
    """Drop-in :func:`threading.RLock`; reentry records no edges.

    Implements the private ``_is_owned``/``_release_save``/
    ``_acquire_restore`` trio so :class:`threading.Condition` built on a
    monitored lock (directly or via the patched factory) works unchanged.
    """

    def __init__(self, monitor: LockOrderMonitor, name: str | None = None) -> None:
        self._monitor = monitor
        self._inner = _REAL_RLOCK()
        self.site = name or _call_site()
        self._owner: int | None = None
        self._count = 0
        monitor.note_created()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            ident = threading.get_ident()
            if self._owner == ident:
                self._count += 1  # reentrant: no new edge
            else:
                self._owner = ident
                self._count = 1
                self._monitor.note_acquired(self, self.site, blocking)
        return ok

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError("cannot release un-acquired lock")
        if self._count == 1:
            self._owner = None
            self._count = 0
            self._monitor.note_released(self)
        else:
            self._count -= 1
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # -- Condition-variable protocol -------------------------------------
    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _release_save(self):
        count = self._count
        self._owner = None
        self._count = 0
        self._monitor.note_released(self)
        return (count, self._inner._release_save())

    def _acquire_restore(self, state) -> None:
        count, inner_state = state
        self._inner._acquire_restore(inner_state)
        self._owner = threading.get_ident()
        self._count = count
        self._monitor.note_acquired(self, self.site, blocking=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MonitoredRLock site={self.site} count={self._count}>"


@contextmanager
def patch_locks(monitor: LockOrderMonitor) -> Iterator[LockOrderMonitor]:
    """Instrument every lock created while the context is active.

    Swaps the ``threading.Lock``/``threading.RLock`` factories for ones
    returning monitored wrappers tagged with their allocation site.
    Locks created *before* entry (module-level registries, the pytest
    machinery) stay raw — instrumentation follows object creation, which
    is exactly the scope a test controls.
    """
    originals = (threading.Lock, threading.RLock)

    def make_lock() -> MonitoredLock:
        return MonitoredLock(monitor)

    def make_rlock() -> MonitoredRLock:
        return MonitoredRLock(monitor)

    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    try:
        yield monitor
    finally:
        threading.Lock, threading.RLock = originals  # type: ignore[assignment]
