"""The whole-program tier of boomerlint: per-module facts + project rules.

R1–R8 see one file at a time, which is exactly why protocol-code drift
slipped past them: the error-code table lives in ``service/protocol.py``,
the ``code`` attributes live in ``errors.py``, and no single parse sees
both.  This module adds the missing index:

* :class:`ModuleFacts` — a compact, JSON-serializable summary of one
  module: its import graph edges, class symbol table (bases plus
  class-level string/bool attributes), module-level string/name/pair
  tuple registries (``OPS``, ``_RETRYABLE``, ``ERROR_CODES``), equality
  and membership comparisons against string literals, and
  ``self.method("literal", kw=...)`` call sites.  Facts are extracted
  once per file and cached by content hash, so the cross-module pass
  costs nothing on a warm run.
* :class:`ProjectIndex` — the facts of every module in one lint run,
  keyed by repro-rooted module key.
* :class:`ProjectRule` — the base class for cross-module rules.  A
  project rule contributes nothing during the per-file pass; after every
  file is parsed the engine calls :meth:`ProjectRule.finalize` with the
  index, and the yielded violations go through the same per-module
  suppression filter as local rules.

A project rule only checks invariants whose *every* participating module
is present in the lint set — linting a subtree (or a test fixture that
recreates the layout under a temp root) never produces phantom
violations about files that were simply not handed to the engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.registry import Rule, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleSource

__all__ = [
    "ClassFact",
    "ModuleFacts",
    "ProjectIndex",
    "ProjectRule",
    "collect_facts",
]


def _call_name(node: ast.expr) -> str | None:
    """The final dotted segment of a call target (``shm.SharedMemory`` ->
    ``SharedMemory``), or the bare name."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class ClassFact:
    """One class definition: bases + class-level literal attributes."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    str_attrs: dict[str, str] = field(default_factory=dict)
    bool_attrs: dict[str, bool] = field(default_factory=dict)
    methods: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "str_attrs": self.str_attrs,
            "bool_attrs": self.bool_attrs,
            "methods": self.methods,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ClassFact":
        return cls(
            name=str(payload["name"]),
            line=int(payload["line"]),
            bases=[str(b) for b in payload.get("bases", [])],
            str_attrs={str(k): str(v) for k, v in payload.get("str_attrs", {}).items()},
            bool_attrs={
                str(k): bool(v) for k, v in payload.get("bool_attrs", {}).items()
            },
            methods=[str(m) for m in payload.get("methods", [])],
        )


@dataclass
class ModuleFacts:
    """The cross-module-relevant summary of one parsed module."""

    key: str
    display: str
    #: Modules this one imports (``import x.y`` / ``from x.y import z``).
    imports: list[str] = field(default_factory=list)
    #: Top-level class symbol table, by class name.
    classes: dict[str, ClassFact] = field(default_factory=dict)
    #: Top-level function names (the function half of the symbol table).
    functions: list[str] = field(default_factory=list)
    #: ``NAME = ("a", "b", ...)`` string registries, with the assign line.
    str_tuples: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: ``NAME = (ClsA, ClsB, ...)`` name registries (e.g. ``_RETRYABLE``).
    name_tuples: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: ``NAME = ((Cls, "str"), ...)`` pair registries (``ERROR_CODES``).
    pair_tuples: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: ``<name> == "literal"`` comparisons: {"name", "value", "line", "col"}.
    eq_compares: list[dict[str, Any]] = field(default_factory=list)
    #: ``<name> in NAME`` memberships: {"name", "container", "line", "col"}.
    memberships: list[dict[str, Any]] = field(default_factory=list)
    #: ``self.<method>("literal", kw=...)``: {"method", "arg", "kwargs", ...}.
    self_calls: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "display": self.display,
            "imports": self.imports,
            "classes": {name: c.to_dict() for name, c in self.classes.items()},
            "functions": self.functions,
            "str_tuples": self.str_tuples,
            "name_tuples": self.name_tuples,
            "pair_tuples": self.pair_tuples,
            "eq_compares": self.eq_compares,
            "memberships": self.memberships,
            "self_calls": self.self_calls,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleFacts":
        return cls(
            key=str(payload["key"]),
            display=str(payload["display"]),
            imports=[str(i) for i in payload.get("imports", [])],
            classes={
                str(name): ClassFact.from_dict(c)
                for name, c in payload.get("classes", {}).items()
            },
            functions=[str(f) for f in payload.get("functions", [])],
            str_tuples=dict(payload.get("str_tuples", {})),
            name_tuples=dict(payload.get("name_tuples", {})),
            pair_tuples=dict(payload.get("pair_tuples", {})),
            eq_compares=list(payload.get("eq_compares", [])),
            memberships=list(payload.get("memberships", [])),
            self_calls=list(payload.get("self_calls", [])),
        )


def _class_fact(node: ast.ClassDef) -> ClassFact:
    fact = ClassFact(name=node.name, line=node.lineno)
    for base in node.bases:
        name = _call_name(base)
        if name is not None:
            fact.bases.append(name)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fact.methods.append(stmt.name)
            continue
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if isinstance(value, ast.Constant):
            if isinstance(value.value, str):
                fact.str_attrs[target.id] = value.value
            elif isinstance(value.value, bool):
                fact.bool_attrs[target.id] = value.value
    return fact


def _tuple_registries(fact: ModuleFacts, name: str, value: ast.expr, line: int) -> None:
    if not isinstance(value, (ast.Tuple, ast.List)):
        return
    strings: list[str] = []
    names: list[str] = []
    pairs: list[dict[str, Any]] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            strings.append(element.value)
        cls_name = _call_name(element)
        if cls_name is not None:
            names.append(cls_name)
        if (
            isinstance(element, (ast.Tuple, ast.List))
            and len(element.elts) == 2
            and isinstance(element.elts[1], ast.Constant)
            and isinstance(element.elts[1].value, str)
        ):
            first = _call_name(element.elts[0])
            if first is not None:
                pairs.append(
                    {
                        "cls": first,
                        "value": element.elts[1].value,
                        "line": element.lineno,
                        "col": element.col_offset + 1,
                    }
                )
    if strings and len(strings) == len(value.elts):
        fact.str_tuples[name] = {"values": strings, "line": line}
    if names and len(names) == len(value.elts):
        fact.name_tuples[name] = {"names": names, "line": line}
    if pairs and len(pairs) == len(value.elts):
        fact.pair_tuples[name] = {"pairs": pairs, "line": line}


def collect_facts(module: "ModuleSource") -> ModuleFacts:
    """Extract the :class:`ModuleFacts` of one parsed module."""
    facts = ModuleFacts(key=module.key, display=module.display)
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Import):
            facts.imports.extend(alias.name for alias in stmt.names)
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            facts.imports.append(stmt.module)
        elif isinstance(stmt, ast.ClassDef):
            facts.classes[stmt.name] = _class_fact(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions.append(stmt.name)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                _tuple_registries(facts, target.id, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                _tuple_registries(facts, stmt.target.id, stmt.value, stmt.lineno)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, op, right = node.left, node.ops[0], node.comparators[0]
            if not isinstance(left, ast.Name):
                continue
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if isinstance(right, ast.Constant) and isinstance(right.value, str):
                    facts.eq_compares.append(
                        {
                            "name": left.id,
                            "value": right.value,
                            "line": node.lineno,
                            "col": node.col_offset + 1,
                        }
                    )
            elif isinstance(op, (ast.In, ast.NotIn)):
                if isinstance(right, ast.Name):
                    facts.memberships.append(
                        {
                            "name": left.id,
                            "container": right.id,
                            "line": node.lineno,
                            "col": node.col_offset + 1,
                        }
                    )
                elif isinstance(right, (ast.Tuple, ast.List, ast.Set)):
                    for element in right.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            facts.eq_compares.append(
                                {
                                    "name": left.id,
                                    "value": element.value,
                                    "line": node.lineno,
                                    "col": node.col_offset + 1,
                                }
                            )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                facts.self_calls.append(
                    {
                        "method": func.attr,
                        "arg": node.args[0].value,
                        "kwargs": [k.arg for k in node.keywords if k.arg],
                        "line": node.lineno,
                        "col": node.col_offset + 1,
                    }
                )
    return facts


class ProjectIndex:
    """Every linted module's facts, keyed by repro-rooted module key."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleFacts] = {}

    def add(self, facts: ModuleFacts) -> None:
        self.modules[facts.key] = facts

    def get(self, key: str) -> ModuleFacts | None:
        return self.modules.get(key)

    def has_all(self, *keys: str) -> bool:
        """True when every named module is part of this lint run."""
        return all(key in self.modules for key in keys)


class ProjectRule(Rule):
    """Base class for cross-module rules.

    The per-file :meth:`check` hook of a project rule is empty; the
    engine feeds every module's :class:`ModuleFacts` into a
    :class:`ProjectIndex` and calls :meth:`finalize` once, after the
    walk.  Yielded violations are anchored at real source sites (the
    registry entry, the class definition, the call) and pass through the
    owning module's inline suppressions like any local rule hit.
    """

    def check(self, module: "ModuleSource") -> Iterator[Violation]:
        return iter(())

    def finalize(self, project: ProjectIndex) -> Iterator[Violation]:
        raise NotImplementedError

    # -- helper shared by concrete project rules -------------------------
    def at(
        self, facts: ModuleFacts, line: int, col: int, message: str
    ) -> Violation:
        """A violation anchored in ``facts``'s module at ``line:col``."""
        return Violation(
            rule=self.id,
            path=facts.display,
            line=line,
            col=col,
            message=message,
        )
