"""The boomerlint rule registry: violations, the rule base class, lookup.

A rule is a small AST-walking check encoding one of *this repo's*
invariants (determinism, error taxonomy, the oracle batch contract, the
metrics/span taxonomy, public-API coherence, lock discipline — see
:mod:`repro.analysis.rules` for the catalog and docs/ANALYSIS.md for the
prose).  Rules register themselves at import time via :func:`register`,
so adding a rule is: subclass :class:`Rule`, decorate, write fixtures.

Rules receive a :class:`~repro.analysis.engine.ModuleSource` (path key +
parsed tree) and yield :class:`Violation` records; the engine applies
inline suppressions (:mod:`repro.analysis.suppress`) afterwards, so rules
never need to reason about ``# boomerlint:`` comments themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import LintUsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleSource

__all__ = ["Violation", "Rule", "register", "all_rules", "get_rules", "rule_ids"]


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location (immutable, sortable)."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``file:line:col: RULE message`` — the CLI's text output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the CLI's ``--format json`` output)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Violation":
        """Inverse of :meth:`to_dict` (the incremental cache's restore)."""
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
        )

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class Rule:
    """Base class for boomerlint rules.

    Subclasses set ``id`` (``R<n>``), ``title`` (one line, shown by
    ``repro lint --list-rules``) and implement :meth:`check`.
    """

    id: str = ""
    title: str = ""

    def check(self, module: "ModuleSource") -> Iterator[Violation]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    # -- helpers shared by concrete rules --------------------------------
    def violation(
        self, module: "ModuleSource", node: ast.AST, message: str
    ) -> Violation:
        """A :class:`Violation` anchored at ``node``'s source location."""
        return Violation(
            rule=self.id,
            path=module.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.id:
        raise LintUsageError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise LintUsageError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def _ensure_loaded() -> None:
    # The built-in rules live in their own modules so the registry has no
    # import cycle; importing them here makes `all_rules()` self-contained.
    from repro.analysis import rules  # noqa: F401  (import registers)
    from repro.analysis import rules_flow  # noqa: F401
    from repro.analysis import rules_project  # noqa: F401


def _id_order(rule_id: str) -> tuple[int, str]:
    # Natural order: R9 before R10 (plain string sort would interleave).
    return (len(rule_id), rule_id)


def rule_ids() -> list[str]:
    """Registered rule ids, in natural (R1..R12) order."""
    _ensure_loaded()
    return sorted(_REGISTRY, key=_id_order)


def all_rules() -> list[Rule]:
    """One instance of every registered rule, id order."""
    _ensure_loaded()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY, key=_id_order)]


def get_rules(ids: Iterable[str]) -> list[Rule]:
    """Instances for ``ids``; unknown ids raise :class:`LintUsageError`."""
    _ensure_loaded()
    out: list[Rule] = []
    for rule_id in ids:
        cls = _REGISTRY.get(rule_id)
        if cls is None:
            known = ", ".join(sorted(_REGISTRY, key=_id_order))
            raise LintUsageError(f"unknown rule id {rule_id!r} (known: {known})")
        out.append(cls())
    return out
