"""The boomerlint rule catalog: this repo's invariants, statically enforced.

=====  ====================================================================
Rule   Invariant
=====  ====================================================================
R1     Determinism — no ambient randomness or wall-clock reads
       (``import random``, ``time.time``, ``datetime.now``/``utcnow``/
       ``today``, ``np.random``) outside :mod:`repro.utils.rng` and
       :mod:`repro.obs.clock`.  Everything stochastic must flow through
       seeded generators so action streams replay bit-identically.
R2     Error taxonomy — ``raise`` sites in the user-facing paths
       (``repro/cli.py``, ``repro/gui/``, ``repro/service/``) must use
       typed :mod:`repro.errors` classes, never bare builtins, so the v2
       wire protocol's stable error codes cover every failure.
R3     Oracle batch contract — any (non-Protocol) class exposing
       ``distance``/``within`` must either implement the
       :class:`~repro.indexing.oracle.BatchDistanceOracle` kernels
       (``distances_from`` + ``within_many``) or declare
       ``batch_via_shim = True``, acknowledging it is served by
       :mod:`repro.indexing.batch`'s per-pair fallback shim.
R4     Metrics & span taxonomy — instrument names must match the
       ``repro_*`` Prometheus conventions (counters end ``_total``,
       histograms carry a unit suffix) and literal span names must exist
       in the :mod:`repro.obs.export` taxonomy.
R5     Public-API coherence — every name a module lists in ``__all__``
       must actually be bound at module top level (and listed once).
R6     Lock discipline — no oracle/engine compute inside a
       ``with ..._lock:`` block in :mod:`repro.service` (the manager
       lock guards bookkeeping only; engine work belongs under the
       per-session lock).
R7     Storage seam — the PML label-CSR internals
       (``_label_offsets``/``_label_ranks_arr``/``_label_dists_arr``)
       are only dereferenced inside :mod:`repro.indexing` and
       :mod:`repro.storage`.  Everyone else goes through the
       :class:`~repro.storage.basis.EngineBasis` API, so the arrays can
       live on the heap, in shared memory, or in mmapped files without
       callers noticing.
R8     Graph mutation seam — the CSR/epoch state of a
       :class:`~repro.graph.graph.Graph` (``_offsets``/``_neighbors``/
       ``_num_edges``/``_epoch``/``_label_index``) is only *written* on
       another object inside :mod:`repro.graph`, :mod:`repro.updates`
       (the sanctioned mutation path that bumps the epoch and maintains
       every derived index), and :mod:`repro.storage` (which rehydrates
       objects from serialized state via ``__new__`` — construction, not
       mutation).  Writes through ``self`` stay legal everywhere: a
       class owns its own fields.
=====  ====================================================================

Rules are scoped by module key (see :func:`repro.analysis.engine.module_key`)
so fixtures reproduce the package layout to opt in.  Suppress a deliberate
exception inline: ``# boomerlint: disable=R2`` (docs/ANALYSIS.md).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.registry import Rule, Violation, register

__all__ = [
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "OracleContractRule",
    "MetricsSpanTaxonomyRule",
    "PublicApiRule",
    "LockDisciplineRule",
    "StorageSeamRule",
    "GraphMutationSeamRule",
]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _trailing_name(node: ast.expr) -> str | None:
    """The final identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _first_str_arg(call: ast.Call) -> tuple[str, ast.expr] | None:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value, call.args[0]
    return None


def _method_names(cls: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


# ----------------------------------------------------------------------
# R1 — determinism
# ----------------------------------------------------------------------
@register
class DeterminismRule(Rule):
    """Ambient randomness / wall-clock reads outside the blessed modules."""

    id = "R1"
    title = "no random/time.time/datetime.now outside utils.rng and obs.clock"

    ALLOWED_KEYS = ("repro/utils/rng.py", "repro/obs/clock.py")
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check(self, module) -> Iterator[Violation]:
        if module.key in self.ALLOWED_KEYS:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            module,
                            node,
                            "import of 'random' outside repro.utils.rng; "
                            "route through seeded_rng()/spawn_rng()",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        module,
                        node,
                        "import from 'random' outside repro.utils.rng; "
                        "route through seeded_rng()/spawn_rng()",
                    )
            elif isinstance(node, ast.Attribute):
                owner = node.value
                if node.attr == "time" and isinstance(owner, ast.Name) and owner.id == "time":
                    yield self.violation(
                        module,
                        node,
                        "wall-clock read 'time.time' outside repro.obs.clock; "
                        "use obs.clock.now()",
                    )
                elif (
                    node.attr in self._DATETIME_ATTRS
                    and _trailing_name(owner) in ("datetime", "date")
                ):
                    yield self.violation(
                        module,
                        node,
                        f"wall-clock read 'datetime.{node.attr}' outside "
                        "repro.obs.clock; use obs.clock.now()",
                    )
                elif node.attr == "random" and isinstance(owner, ast.Name) and owner.id in (
                    "np",
                    "numpy",
                ):
                    yield self.violation(
                        module,
                        node,
                        "global numpy RNG 'np.random' is unseeded state; "
                        "derive a generator through repro.utils.rng",
                    )


# ----------------------------------------------------------------------
# R2 — error taxonomy
# ----------------------------------------------------------------------
@register
class ErrorTaxonomyRule(Rule):
    """Bare builtin raises in the user-facing (wire-visible) paths."""

    id = "R2"
    title = "raises in cli/gui/service paths must use repro.errors classes"

    SCOPES = ("repro/cli.py", "repro/gui/", "repro/service/")
    #: Builtins whose raise means an untyped failure escaping the wire
    #: protocol's code table.  TypeError/NotImplementedError/AssertionError
    #: stay allowed: they flag caller bugs, not runtime failure domains.
    BANNED = {
        "ValueError",
        "RuntimeError",
        "KeyError",
        "LookupError",
        "OSError",
        "IOError",
        "ArithmeticError",
        "Exception",
        "BaseException",
    }

    def check(self, module) -> Iterator[Violation]:
        if not module.key.startswith(self.SCOPES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in self.BANNED:
                yield self.violation(
                    module,
                    node,
                    f"untyped 'raise {target.id}' in a wire-visible path; "
                    "use a repro.errors class with a stable code",
                )


# ----------------------------------------------------------------------
# R3 — oracle batch contract
# ----------------------------------------------------------------------
@register
class OracleContractRule(Rule):
    """Scalar-only oracles must declare how batch queries reach them."""

    id = "R3"
    title = "classes exposing distance() must implement or declare batch routing"

    def check(self, module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if any(_trailing_name(base) == "Protocol" for base in node.bases):
                continue  # protocol definitions are the contract, not impls
            methods = _method_names(node)
            if "distance" not in methods or "within" not in methods:
                continue
            if {"distances_from", "within_many"} <= methods:
                continue
            if self._declares_shim(node):
                continue
            yield self.violation(
                module,
                node,
                f"class {node.name} exposes distance()/within() but neither "
                "implements distances_from()/within_many() nor declares "
                "'batch_via_shim = True' (BatchDistanceOracle contract)",
            )

    @staticmethod
    def _declares_shim(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "batch_via_shim"
                    and isinstance(value, ast.Constant)
                    and value.value is True
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# R4 — metrics & span taxonomy
# ----------------------------------------------------------------------
_METRIC_NAME = re.compile(r"repro_[a-z][a-z0-9_]*")
_METRIC_RECEIVERS = {"metrics", "reg", "registry"}
_HISTOGRAM_UNITS = ("_seconds", "_bytes", "_entries")


def _span_taxonomy() -> tuple[frozenset[str], tuple[str, ...]]:
    """Literal span names (and dotted prefixes) from :mod:`repro.obs.export`.

    Read from the live module so the rule and the taxonomy can never
    drift: adding a canonical name there immediately legalizes it here.
    """
    from repro.obs import export

    names: set[str] = set()
    prefixes: set[str] = set()
    for attr in export.__all__:
        value = getattr(export, attr, None)
        if isinstance(value, str):
            (prefixes if value.endswith(".") else names).add(value)
    return frozenset(names), tuple(sorted(prefixes))


@register
class MetricsSpanTaxonomyRule(Rule):
    """Instrument/span names must match the observability taxonomy."""

    id = "R4"
    title = "metric names match repro_* conventions; span names exist in obs.export"

    def check(self, module) -> Iterator[Violation]:
        taxonomy = None  # loaded lazily, only when a span literal appears
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            receiver = _trailing_name(node.func.value)
            if method in ("counter", "gauge", "histogram") and receiver in _METRIC_RECEIVERS:
                got = _first_str_arg(node)
                if got is None:
                    continue
                name, arg = got
                yield from self._check_metric(module, arg, method, name)
            elif method in ("span", "start") and receiver == "tracer":
                got = _first_str_arg(node)
                if got is None:
                    continue  # dynamic names are runtime territory
                name, arg = got
                if taxonomy is None:
                    taxonomy = _span_taxonomy()
                names, prefixes = taxonomy
                if name not in names and not name.startswith(prefixes):
                    yield self.violation(
                        module,
                        arg,
                        f"span name {name!r} is not in the repro.obs.export "
                        "taxonomy; add a constant there or fix the name",
                    )

    def _check_metric(self, module, arg: ast.expr, kind: str, name: str):
        if not _METRIC_NAME.fullmatch(name):
            yield self.violation(
                module,
                arg,
                f"metric name {name!r} does not match the repro_* taxonomy "
                "(lowercase, repro_ prefix)",
            )
            return
        if kind == "counter" and not name.endswith("_total"):
            yield self.violation(
                module, arg, f"counter {name!r} must end with '_total'"
            )
        elif kind == "gauge" and name.endswith("_total"):
            yield self.violation(
                module, arg, f"gauge {name!r} must not end with '_total'"
            )
        elif kind == "histogram" and not name.endswith(_HISTOGRAM_UNITS):
            yield self.violation(
                module,
                arg,
                f"histogram {name!r} must carry a unit suffix "
                f"({', '.join(_HISTOGRAM_UNITS)})",
            )


# ----------------------------------------------------------------------
# R5 — public-API coherence
# ----------------------------------------------------------------------
@register
class PublicApiRule(Rule):
    """``__all__`` entries must be bound at module top level, once."""

    id = "R5"
    title = "__all__ names are actually exported (and listed once)"

    def check(self, module) -> Iterator[Violation]:
        decl = self._find_all(module.tree)
        if decl is None:
            return
        node, names = decl
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.violation(
                    module, node, f"__all__ lists {name!r} more than once"
                )
            seen.add(name)
        bound, has_star = self._bound_names(module.tree)
        if has_star:
            return  # star imports make the bound set unknowable statically
        for name in sorted(seen):
            if name not in bound:
                yield self.violation(
                    module,
                    node,
                    f"__all__ lists {name!r} but the module never binds it "
                    "(public-API drift)",
                )

    @staticmethod
    def _find_all(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            ):
                continue
            if not isinstance(value, (ast.List, ast.Tuple)):
                return None  # computed __all__: out of static reach
            names = [
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            return stmt, names
        return None

    @classmethod
    def _bound_names(cls, tree: ast.Module) -> tuple[set[str], bool]:
        """Names bound at module scope; True when a ``*`` import hides some.

        Walks statements recursively (``if``/``try``/``with``/``for``
        bodies bind at module scope too) but never descends into
        function, class, or lambda bodies — their locals are not module
        names.
        """
        bound: set[str] = set()
        has_star = False
        stack: list[ast.stmt] = list(tree.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
                continue  # inner scopes do not bind module names
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
                continue
            if isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        bound.add(alias.asname or alias.name)
                continue
            # Store-context names in this statement's own expressions
            # (assignment targets, for/with targets, walrus), skipping
            # nested scopes.
            for expr in ast.iter_child_nodes(stmt):
                if isinstance(expr, (ast.stmt, ast.Lambda)):
                    continue
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Lambda):
                        continue
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                        bound.add(sub.id)
            # Recurse into compound-statement bodies at module scope.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, (ast.excepthandler, ast.withitem)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            stack.append(sub)
                        elif isinstance(sub, ast.Name) and isinstance(
                            sub.ctx, ast.Store
                        ):
                            bound.add(sub.id)
        return bound, has_star


# ----------------------------------------------------------------------
# R6 — lock discipline
# ----------------------------------------------------------------------
@register
class LockDisciplineRule(Rule):
    """No engine/oracle compute while holding a manager-level ``_lock``."""

    id = "R6"
    title = "no oracle/engine calls inside `with ..._lock:` in repro.service"

    SCOPE = "repro/service/"
    #: Method names that mean engine/oracle compute.  Holding the manager
    #: lock across any of these serializes every tenant behind one
    #: session's CAP work (and invites lock-order cycles with the
    #: per-session locks).
    ENGINE_CALLS = {
        "distance",
        "within",
        "distances_from",
        "within_many",
        "run",
        "apply",
        "run_actions",
        "probe_one",
        "probe_idle",
        "drain_pool",
        "process_edge",
        "cheapest_cost",
        "build",
    }

    def check(self, module) -> Iterator[Violation]:
        if not module.key.startswith(self.SCOPE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            if not any(
                isinstance(item.context_expr, ast.Attribute)
                and item.context_expr.attr == "_lock"
                for item in node.items
            ):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in self.ENGINE_CALLS
                    ):
                        yield self.violation(
                            module,
                            sub,
                            f"engine/oracle call '.{sub.func.attr}(...)' while "
                            "holding a manager-level _lock; move compute under "
                            "the per-session lock",
                        )


# ----------------------------------------------------------------------
# R7 — storage seam
# ----------------------------------------------------------------------
@register
class StorageSeamRule(Rule):
    """Direct pokes at the PML label-CSR arrays outside the storage seam.

    :class:`~repro.storage.basis.EngineBasis` is the one API that may
    assume where (and in what medium) the finalized label arrays live;
    any other module dereferencing them couples itself to the resident
    layout and silently breaks the shm/mmap backends.  Access through
    ``self`` stays legal — a subclass owns its own internals.
    """

    id = "R7"
    title = "PML label-CSR internals only touched in repro.indexing / repro.storage"

    ALLOWED_PREFIXES = ("repro/indexing/", "repro/storage/")
    #: The finalized label CSR: exactly the arrays every storage backend
    #: must be free to relocate.
    PRIVATE_ARRAYS = {"_label_offsets", "_label_ranks_arr", "_label_dists_arr"}

    def check(self, module) -> Iterator[Violation]:
        if module.key.startswith(self.ALLOWED_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in self.PRIVATE_ARRAYS:
                continue
            owner = node.value
            if isinstance(owner, ast.Name) and owner.id == "self":
                continue
            yield self.violation(
                module,
                node,
                f"direct access to PML internal '{node.attr}' outside "
                "repro.indexing/repro.storage; go through the EngineBasis "
                "seam (repro.storage.basis_from_context / context_from_basis)",
            )


# ----------------------------------------------------------------------
# R8 — graph mutation seam
# ----------------------------------------------------------------------
@register
class GraphMutationSeamRule(Rule):
    """Writes to Graph CSR/epoch state outside the sanctioned mutation path.

    A :class:`~repro.graph.graph.Graph` mutated anywhere but
    :mod:`repro.updates` silently leaves every derived structure — PML
    labels, two-hop counts, distance-vector caches — describing a graph
    that no longer exists, without the epoch bump that would make readers
    notice.  This rule flags *assignments* (plain, augmented, annotated)
    to the mutable graph fields on any object other than ``self``:
    ``obj._offsets = ...``, ``graph._num_edges += 1``,
    ``g._epoch = 0``.  Reads stay free; ``self.…`` writes stay free
    (a class owns its fields — :class:`~repro.storage.basis.LazyLabelView`
    has an ``_offsets`` of its own); and :mod:`repro.graph`,
    :mod:`repro.updates`, and :mod:`repro.storage` (``__new__``-based
    rehydration from serialized state) are the sanctioned writers.
    """

    id = "R8"
    title = "Graph CSR/epoch state only written in repro.graph / repro.updates"

    ALLOWED_PREFIXES = ("repro/graph/", "repro/updates/", "repro/storage/")
    #: The fields whose coherent joint update *is* a graph mutation.
    MUTABLE_ATTRS = {
        "_offsets",
        "_neighbors",
        "_num_edges",
        "_epoch",
        "_label_index",
    }

    def check(self, module) -> Iterator[Violation]:
        if module.key.startswith(self.ALLOWED_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                for sub in ast.walk(target):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    if sub.attr not in self.MUTABLE_ATTRS:
                        continue
                    owner = sub.value
                    if isinstance(owner, ast.Name) and owner.id == "self":
                        continue
                    yield self.violation(
                        module,
                        sub,
                        f"write to graph internal '{sub.attr}' outside "
                        "repro.graph/repro.updates; mutate through "
                        "repro.updates (insert_edge/delete_edge), which "
                        "bumps the epoch and maintains derived indexes",
                    )
