"""Dataflow-backed boomerlint rules: R10 epoch guards, R11 resource
lifecycle, R12 lock-guard inference.

These are per-module rules like R1–R8, but instead of pattern-matching
single nodes they reason about *paths* (via :mod:`repro.analysis.dataflow`)
or about a class's whole locking discipline:

* **R10** — in an epoch-checked oracle class (one that defines
  ``_check_fresh``), every public method that dereferences the PML label
  arrays must be dominated by a ``self._check_fresh()`` call: a freshness
  check on *some* paths is exactly the stale-read bug the epoch exists
  to prevent.
* **R11** — a resource acquired in the service/storage layer
  (``SharedMemory``, ``np.memmap``, ``Popen``, sockets) and bound to a
  local name must reach ``close``/``unlink``/``terminate`` on every
  explicit path, be handed off (returned, stored, appended to a
  registry), or be managed by ``with``/``finally``.
* **R12** — the guard map is *inferred*: an attribute assigned inside
  ``with self.<lock>:`` blocks is declared lock-guarded, and any bare
  access to it elsewhere in the class is flagged.  The static companion
  to the runtime lock-order monitor: the monitor catches wrong *order*,
  this catches missing *acquisition*.

Shared limitations (inherited from the CFG — see dataflow.py): explicit
control flow only, ``finally`` handled lexically, nested ``def``/lambda
bodies opaque.  Deliberate exceptions in the shipped tree carry inline
``# boomerlint: disable=R<n>`` suppressions with a rationale, per
docs/ANALYSIS.md.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.dataflow import build_cfg, iter_step_states, scoped_walk, solve_forward
from repro.analysis.registry import Rule, Violation, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleSource

__all__ = ["EpochGuardRule", "ResourceLifecycleRule", "LockGuardRule"]


def _is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _has_decorator(fn: ast.FunctionDef | ast.AsyncFunctionDef, *names: str) -> bool:
    for decorator in fn.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id in names:
            return True
        if isinstance(target, ast.Attribute) and target.attr in names:
            return True
    return False


# ---------------------------------------------------------------------------
# R10 — epoch-guard flow
# ---------------------------------------------------------------------------
@register
class EpochGuardRule(Rule):
    """Public reads of PML label arrays must be dominated by _check_fresh."""

    id = "R10"
    title = (
        "epoch-guarded classes must call self._check_fresh() on every path "
        "before dereferencing PML label arrays in public methods"
    )

    SCOPES = ("repro/indexing/", "repro/storage/")
    LABEL_ATTRS = frozenset(
        {
            "_label_offsets",
            "_label_ranks",
            "_label_dists",
            "_label_ranks_arr",
            "_label_dists_arr",
        }
    )

    def check(self, module: "ModuleSource") -> Iterator[Violation]:
        if not module.key.startswith(self.SCOPES):
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "_check_fresh" not in methods:
                continue  # not an epoch-checked class
            for name, fn in methods.items():
                if name.startswith("_"):
                    # Private helpers are reached through checked entry
                    # points; requiring a second check there would force
                    # redundant epoch reads on the hot merge path.
                    continue
                if _has_decorator(fn, "staticmethod", "classmethod"):
                    continue
                yield from self._check_method(module, fn)

    def _check_method(
        self, module: "ModuleSource", fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        derefs = [
            node
            for node in scoped_walk(fn)
            if node is not fn
            and _is_self_attr(node)
            and node.attr in self.LABEL_ATTRS  # type: ignore[attr-defined]
            and isinstance(node.ctx, ast.Load)  # type: ignore[attr-defined]
        ]
        if not derefs:
            return

        def transfer(held: bool, step: ast.AST) -> bool:
            if held:
                return True
            return any(
                isinstance(node, ast.Call)
                and _is_self_attr(node.func, "_check_fresh")
                for node in scoped_walk(step)
            )

        cfg = build_cfg(fn)
        in_states = solve_forward(
            cfg, False, transfer, lambda a, b: a and b
        )
        for step, held in iter_step_states(cfg, in_states, transfer):
            if held:
                continue
            step_nodes = set(map(id, scoped_walk(step)))
            guarded_in_step = any(
                isinstance(node, ast.Call)
                and _is_self_attr(node.func, "_check_fresh")
                for node in scoped_walk(step)
            )
            if guarded_in_step:
                continue  # the check and the deref share one statement
            for deref in derefs:
                if id(deref) in step_nodes:
                    yield self.violation(
                        module,
                        deref,
                        f"'{fn.name}' dereferences label array "
                        f"'{deref.attr}' on a path not dominated by "  # type: ignore[attr-defined]
                        "self._check_fresh(); a stale index would serve "
                        "pre-mutation distances",
                    )


# ---------------------------------------------------------------------------
# R11 — resource lifecycle
# ---------------------------------------------------------------------------
@register
class ResourceLifecycleRule(Rule):
    """Locally-acquired OS resources must be closed on every explicit path."""

    id = "R11"
    title = (
        "SharedMemory/memmap/Popen/socket handles acquired in the "
        "service/storage layers must reach close()/unlink() on all paths "
        "or be handed off / managed by with/finally"
    )

    SCOPES = ("repro/service/", "repro/storage/")
    ACQUIRERS = frozenset(
        {"SharedMemory", "memmap", "Popen", "create_connection", "socket"}
    )
    CLOSERS = frozenset({"close", "unlink", "terminate", "kill", "shutdown"})

    def check(self, module: "ModuleSource") -> Iterator[Violation]:
        if not module.key.startswith(self.SCOPES):
            return
        for fn in ast.walk(module.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, fn)

    # -- per-function analysis ------------------------------------------
    def _acquisitions(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, tuple[ast.Assign, str]]:
        """``name -> (assign, acquirer)`` for simple-name acquisitions."""
        out: dict[str, tuple[ast.Assign, str]] = {}
        for node in scoped_walk(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue  # attribute/tuple targets are ownership handoffs
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            called = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if called in self.ACQUIRERS:
                out[target.id] = (node, called)
        return out

    def _escapes(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str
    ) -> bool:
        """True when ownership of ``name`` leaves this function."""
        for node in scoped_walk(fn):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and self._mentions(value, name):
                    return True
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if self._mentions(arg, name):
                        return True  # handed to another owner
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is not None and not (
                    isinstance(value, ast.Call)
                ) and self._mentions(value, name):
                    return True  # aliased or stored somewhere
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                if any(
                    isinstance(child, ast.Name) and child.id == name
                    for child in ast.iter_child_nodes(node)
                ):
                    return True
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Name)
                        and item.context_expr.id == name
                    ):
                        return True  # context manager owns the close
        return False

    @staticmethod
    def _mentions(node: ast.AST, name: str) -> bool:
        return any(
            isinstance(child, ast.Name) and child.id == name
            for child in ast.walk(node)
        )

    def _finally_closed(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Names closed inside any ``finally`` block of this function.

        The CFG routes ``return`` past finalbodies (see dataflow.py), so
        finally-based cleanup is honored lexically instead: a name whose
        close call lives in a finalbody is safe on every path by
        construction of ``try/finally``.
        """
        closed: set[str] = set()
        for node in scoped_walk(fn):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for final_stmt in node.finalbody:
                for call in ast.walk(final_stmt):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in self.CLOSERS
                        and isinstance(call.func.value, ast.Name)
                    ):
                        closed.add(call.func.value.id)
        return closed

    def _check_function(
        self, module: "ModuleSource", fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        acquisitions = self._acquisitions(fn)
        if not acquisitions:
            return
        exempt = self._finally_closed(fn)
        tracked = {
            name: info
            for name, info in acquisitions.items()
            if name not in exempt and not self._escapes(fn, name)
        }
        if not tracked:
            return

        def transfer(state: frozenset[str], step: ast.AST) -> frozenset[str]:
            opened = set(state)
            for node in scoped_walk(step):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and target.id in tracked:
                        if node is tracked[target.id][0]:
                            opened.add(target.id)
                        else:
                            opened.discard(target.id)  # rebound
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.CLOSERS
                    and isinstance(node.func.value, ast.Name)
                ):
                    opened.discard(node.func.value.id)
            return frozenset(opened)

        cfg = build_cfg(fn)
        in_states = solve_forward(
            cfg, frozenset(), transfer, lambda a, b: a | b
        )
        leaked = in_states.get(cfg.exit, frozenset())
        for name in sorted(leaked):
            assign, acquirer = tracked[name]
            yield self.violation(
                module,
                assign,
                f"'{name}' ({acquirer}) may never be closed on some path "
                f"through '{fn.name}'; close it on every exit or manage it "
                "with with/finally",
            )


# ---------------------------------------------------------------------------
# R12 — lock-guard inference
# ---------------------------------------------------------------------------
@register
class LockGuardRule(Rule):
    """Attributes written under ``with self._lock:`` must never go bare."""

    id = "R12"
    title = (
        "attributes assigned inside `with self.<lock>:` blocks in the "
        "service layer are lock-guarded; accessing them without the lock "
        "is a data race"
    )

    SCOPES = ("repro/service/",)
    LOCK_FACTORIES = frozenset({"Lock", "RLock"})

    def check(self, module: "ModuleSource") -> Iterator[Violation]:
        if not module.key.startswith(self.SCOPES):
            return
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(module, cls)

    # -- inference ------------------------------------------------------
    def _lock_groups(self, cls: ast.ClassDef) -> dict[str, str]:
        """``lock attr -> guard group``.  ``threading.Condition(self.X)``
        joins X's group (waiting on the condition *is* holding the lock)."""
        groups: dict[str, str] = {}
        conditions: list[tuple[str, ast.Call]] = []
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not _is_self_attr(target) or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            called = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            attr = target.attr  # type: ignore[attr-defined]
            if called in self.LOCK_FACTORIES:
                groups[attr] = attr
            elif called == "Condition":
                conditions.append((attr, node.value))
        for attr, call in conditions:
            if call.args and _is_self_attr(call.args[0]):
                aliased = call.args[0].attr  # type: ignore[attr-defined]
                groups[attr] = groups.get(aliased, aliased)
            else:
                groups[attr] = attr  # owns its (implicit) lock
        return groups

    @staticmethod
    def _written_attrs(stmt: ast.stmt) -> Iterator[str]:
        """Self attributes a statement writes (assign/augassign/del)."""
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if _is_self_attr(base):
                yield base.attr  # type: ignore[attr-defined]

    def _with_lock_groups(
        self, stmt: ast.With | ast.AsyncWith, groups: dict[str, str]
    ) -> set[str]:
        held: set[str] = set()
        for item in stmt.items:
            expr = item.context_expr
            if _is_self_attr(expr) and expr.attr in groups:  # type: ignore[attr-defined]
                held.add(groups[expr.attr])  # type: ignore[attr-defined]
        return held

    def _check_class(
        self, module: "ModuleSource", cls: ast.ClassDef
    ) -> Iterator[Violation]:
        groups = self._lock_groups(cls)
        if not groups:
            return
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        # Pass 1: infer the guard map — attributes written under a lock.
        guarded: dict[str, set[str]] = {}
        for name, fn in methods.items():
            if name == "__init__":
                continue  # construction happens-before every reader
            for node in scoped_walk(fn):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                held = self._with_lock_groups(node, groups)
                if not held:
                    continue
                for stmt in node.body:
                    for inner in scoped_walk(stmt):
                        if isinstance(inner, ast.stmt):
                            for attr in self._written_attrs(inner):
                                if attr not in groups:
                                    guarded.setdefault(attr, set()).update(held)
        if not guarded:
            return

        # Pass 2: accesses annotated with the groups lexically held there,
        # and self-call sites for the private-helper fixpoint.
        accesses: dict[str, list[tuple[ast.Attribute, frozenset[str]]]] = {}
        call_sites: dict[str, list[tuple[str, frozenset[str]]]] = {}

        def scan(node: ast.AST, method: str, held: frozenset[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held | self._with_lock_groups(node, groups)
                for item in node.items:
                    scan(item.context_expr, method, held)
                for stmt in node.body:
                    scan(stmt, method, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return  # nested scope: runs later, under unknown locks
            if _is_self_attr(node) and node.attr in guarded:  # type: ignore[attr-defined]
                accesses.setdefault(method, []).append((node, held))  # type: ignore[arg-type]
            if (
                isinstance(node, ast.Call)
                and _is_self_attr(node.func)
                and node.func.attr in methods  # type: ignore[attr-defined]
            ):
                call_sites.setdefault(node.func.attr, []).append(  # type: ignore[attr-defined]
                    (method, held)
                )
            for child in ast.iter_child_nodes(node):
                scan(child, method, held)

        for name, fn in methods.items():
            if name == "__init__":
                continue
            for stmt in fn.body:
                scan(stmt, name, frozenset())

        # Pass 3: fixpoint over private helpers whose every call site
        # holds the lock ("caller holds the manager lock" helpers).
        held_methods: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in held_methods or not name.startswith("_"):
                    continue
                if name == "__init__":
                    continue
                sites = call_sites.get(name)
                if not sites:
                    continue
                if all(held or caller in held_methods for caller, held in sites):
                    held_methods.add(name)
                    changed = True

        # Pass 4: flag bare accesses.
        for method, attr_accesses in sorted(accesses.items()):
            if method in held_methods:
                continue
            for node, held in attr_accesses:
                attr = node.attr
                need = guarded[attr]
                if held & need:
                    continue
                locks = " or ".join(
                    f"self.{lock}"
                    for lock in sorted(
                        lock for lock, group in groups.items() if group in need
                    )
                )
                yield self.violation(
                    module,
                    node,
                    f"'{attr}' is written under {locks} elsewhere in "
                    f"'{cls.name}' but accessed here without it "
                    f"(in '{method}')",
                )
