"""Cross-module boomerlint rules: R9 protocol-drift.

The wire contract is spread over four files by design — the error-code
table and op registry live in ``service/protocol.py``, the exception
classes in ``errors.py``, the handlers in ``service/dispatch.py`` (and
the pool's ``dispatcher.py``), and the callers in ``service/client.py``.
R1–R8 parse one file at a time and therefore cannot see the seams this
rule exists for: an exception class whose declared ``code`` is shadowed
by a base-class entry earlier in ``ERROR_CODES``, a verb added to ``OPS``
that one dispatcher never routes, a ``retryable`` verdict that the
client and the table disagree on, or a request parameter that collides
with a reserved envelope key (the exact bug the ``update`` verb's ``v``
key was).

Each sub-check only runs when *every* module it reads is part of the
lint run (see :class:`~repro.analysis.project.ProjectRule`), so linting
a subtree or a test fixture never yields phantom drift.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.analysis.project import ModuleFacts, ProjectIndex, ProjectRule
from repro.analysis.registry import Violation, register

__all__ = ["ProtocolDriftRule"]

ERRORS = "repro/errors.py"
PROTOCOL = "repro/service/protocol.py"
DISPATCH = "repro/service/dispatch.py"
CLIENT = "repro/service/client.py"
POOL_DISPATCH = "repro/service/pool/dispatcher.py"

#: Envelope keys owned by the transport; request params must not shadow
#: them because the client merges params flat into the envelope dict.
ENVELOPE_KEYS = frozenset({"v", "req_id", "op", "id", "ok", "result", "error"})


class _ClassGraph:
    """Subclass reachability over one module's class symbol table."""

    def __init__(self, errors: ModuleFacts) -> None:
        self._classes = errors.classes

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def descends(self, sub: str, ancestor: str) -> bool:
        """True when ``sub`` is ``ancestor`` or inherits from it."""
        seen: set[str] = set()
        stack = [sub]
        while stack:
            current = stack.pop()
            if current == ancestor:
                return True
            if current in seen:
                continue
            seen.add(current)
            fact = self._classes.get(current)
            if fact is not None:
                stack.extend(fact.bases)
        return False

    def effective_bool(self, name: str, attr: str) -> bool:
        """The inherited value of a class-level bool attribute (first
        definition found walking up the bases), defaulting to False."""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            fact = self._classes.get(current)
            if fact is None:
                continue
            if attr in fact.bool_attrs:
                return fact.bool_attrs[attr]
            stack.extend(fact.bases)
        return False


@register
class ProtocolDriftRule(ProjectRule):
    """ERROR_CODES / OPS / retryable verdicts must agree across the seam."""

    id = "R9"
    title = (
        "wire-protocol registries (ERROR_CODES, OPS, _RETRYABLE) must agree "
        "with errors.py, both dispatchers, and the client"
    )

    def finalize(self, project: ProjectIndex) -> Iterator[Violation]:
        if project.has_all(PROTOCOL, ERRORS):
            yield from self._check_error_codes(project)
            yield from self._check_retryable(project)
        if project.has_all(PROTOCOL, DISPATCH):
            yield from self._check_ops(project, DISPATCH)
        if project.has_all(PROTOCOL, POOL_DISPATCH):
            yield from self._check_ops(project, POOL_DISPATCH)
        if project.has_all(PROTOCOL, CLIENT):
            yield from self._check_client(project)

    # -- ERROR_CODES <-> errors.py --------------------------------------
    def _check_error_codes(self, project: ProjectIndex) -> Iterator[Violation]:
        protocol = project.modules[PROTOCOL]
        errors = project.modules[ERRORS]
        table = protocol.pair_tuples.get("ERROR_CODES")
        if table is None:
            return
        graph = _ClassGraph(errors)
        pairs: list[dict[str, Any]] = table["pairs"]

        for pair in pairs:
            if pair["cls"] not in graph:
                yield self.at(
                    protocol,
                    pair["line"],
                    pair["col"],
                    f"ERROR_CODES entry ({pair['cls']}, {pair['value']!r}) "
                    "names a class that does not exist in errors.py",
                )

        # Simulate error_code()'s first-match scan for every class that
        # declares a wire code: the prediction must equal the declaration,
        # or an earlier (base-class) entry is shadowing it.
        for cls_name, fact in errors.classes.items():
            declared = fact.str_attrs.get("code")
            if declared is None:
                continue  # codes set per-instance (RelayedError) or inherited
            matched: dict[str, Any] | None = None
            for pair in pairs:
                if pair["cls"] in graph and graph.descends(cls_name, pair["cls"]):
                    matched = pair
                    break
            if matched is None:
                yield self.at(
                    errors,
                    fact.line,
                    1,
                    f"{cls_name} declares code {declared!r} but no "
                    "ERROR_CODES entry in service/protocol.py matches it; "
                    "the wire would report the generic fallback",
                )
            elif matched["value"] != declared:
                yield self.at(
                    protocol,
                    matched["line"],
                    matched["col"],
                    f"ERROR_CODES resolves {cls_name} to "
                    f"{matched['value']!r} via the ({matched['cls']}, "
                    f"{matched['value']!r}) entry, but the class declares "
                    f"code {declared!r}; add a more specific entry before it",
                )

    # -- _RETRYABLE <-> errors.py retryable flags ------------------------
    def _check_retryable(self, project: ProjectIndex) -> Iterator[Violation]:
        protocol = project.modules[PROTOCOL]
        errors = project.modules[ERRORS]
        registry = protocol.name_tuples.get("_RETRYABLE")
        if registry is None:
            return
        graph = _ClassGraph(errors)
        members: list[str] = registry["names"]
        line = registry["line"]

        for member in members:
            if member not in graph:
                yield self.at(
                    protocol,
                    line,
                    1,
                    f"_RETRYABLE names {member}, which does not exist in "
                    "errors.py",
                )
            elif not graph.effective_bool(member, "retryable"):
                yield self.at(
                    protocol,
                    line,
                    1,
                    f"_RETRYABLE names {member} but the class does not "
                    "declare retryable = True in errors.py; the client and "
                    "the table disagree on the retry verdict",
                )

        for cls_name, fact in errors.classes.items():
            if not graph.effective_bool(cls_name, "retryable"):
                continue
            covered = any(
                member in graph and graph.descends(cls_name, member)
                for member in members
            )
            if not covered:
                yield self.at(
                    errors,
                    fact.line,
                    1,
                    f"{cls_name} declares retryable = True but is not "
                    "covered by _RETRYABLE in service/protocol.py; "
                    "error_retryable() would report it as fatal",
                )

    # -- OPS <-> dispatcher coverage -------------------------------------
    @staticmethod
    def _handled_ops(dispatcher: ModuleFacts) -> dict[str, tuple[int, int]]:
        """op literal -> first handling site, from ``op == "x"`` compares
        and ``op in <same-module str tuple>`` memberships."""
        handled: dict[str, tuple[int, int]] = {}
        for compare in dispatcher.eq_compares:
            if compare["name"] == "op":
                handled.setdefault(
                    compare["value"], (compare["line"], compare["col"])
                )
        for membership in dispatcher.memberships:
            if membership["name"] != "op":
                continue
            registry = dispatcher.str_tuples.get(membership["container"])
            if registry is None:
                continue
            for value in registry["values"]:
                handled.setdefault(
                    value, (membership["line"], membership["col"])
                )
        return handled

    def _check_ops(
        self, project: ProjectIndex, dispatcher_key: str
    ) -> Iterator[Violation]:
        protocol = project.modules[PROTOCOL]
        dispatcher = project.modules[dispatcher_key]
        registry = protocol.str_tuples.get("OPS")
        if registry is None:
            return
        ops = set(registry["values"])
        handled = self._handled_ops(dispatcher)

        for op in registry["values"]:
            if op not in handled:
                yield self.at(
                    protocol,
                    registry["line"],
                    1,
                    f"op {op!r} is registered in OPS but never handled in "
                    f"{dispatcher.display}; the verb would fail with "
                    "unknown_op at runtime",
                )
        for op, (line, col) in sorted(handled.items()):
            if op not in ops:
                yield self.at(
                    dispatcher,
                    line,
                    col,
                    f"{dispatcher.display} handles op {op!r} which is not "
                    "registered in OPS in service/protocol.py",
                )

    # -- client requests: ops + envelope-key collisions -------------------
    def _check_client(self, project: ProjectIndex) -> Iterator[Violation]:
        protocol = project.modules[PROTOCOL]
        client = project.modules[CLIENT]
        registry = protocol.str_tuples.get("OPS")
        ops = set(registry["values"]) if registry else None

        for call in client.self_calls:
            if call["method"] not in ("request", "_request_once"):
                continue
            if ops is not None and call["arg"] not in ops:
                yield self.at(
                    client,
                    call["line"],
                    call["col"],
                    f"client requests op {call['arg']!r} which is not "
                    "registered in OPS in service/protocol.py",
                )
            if call["method"] != "request":
                continue
            collisions = sorted(set(call["kwargs"]) & ENVELOPE_KEYS)
            for key in collisions:
                yield self.at(
                    client,
                    call["line"],
                    call["col"],
                    f"request param {key!r} collides with a reserved "
                    "envelope key; the flat param merge would overwrite "
                    "the transport field (the update-verb 'v' bug class)",
                )
