"""SARIF 2.1.0 output for boomerlint.

SARIF is the interchange format CI code-scanning UIs ingest; emitting it
lets the lint-invariants job upload one artifact that renders as inline
annotations instead of a wall of text.  The mapping is deliberately
minimal — one run, one ``tool.driver`` with the rule catalog, one
``result`` per violation — because consumers only need ``ruleId``,
``message`` and the physical location.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.analysis.registry import Rule, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import LintReport

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.title},
    }


def _result(violation: Violation) -> dict[str, Any]:
    return {
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col,
                    },
                }
            }
        ],
    }


def to_sarif(report: "LintReport", rules: list[Rule]) -> dict[str, Any]:
    """The SARIF 2.1.0 log dict for one lint run (JSON-dump ready)."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "boomerlint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": [_rule_descriptor(rule) for rule in rules],
                    }
                },
                "results": [_result(v) for v in report.violations],
            }
        ],
    }
