"""Inline suppression comments for boomerlint.

Two scopes, both spelled in ordinary comments so they survive formatters:

* line scope — ``# boomerlint: disable=R1`` (or ``disable=R1,R4``) as a
  *trailing* comment suppresses the named rules on that line; on a
  comment-only line it suppresses them on the next source line too (the
  "banner" form, for statements that are awkward to tail-comment);
* file scope — ``# boomerlint: disable-file=R3`` anywhere in the file
  (conventionally the top) suppresses the named rules for the whole
  module.

``all`` is accepted in place of a rule list.  Unknown rule ids in a
suppression are not errors — a suppression written for a rule that is
later retired must not break the build it was protecting.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*boomerlint:\s*disable(?P<file_scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class Suppressions:
    """The parsed suppression directives of one module."""

    def __init__(self) -> None:
        self.file_rules: set[str] = set()
        self.line_rules: dict[int, set[str]] = {}

    def add_line(self, line: int, rules: set[str]) -> None:
        self.line_rules.setdefault(line, set()).update(rules)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is disabled at ``line``."""
        if "all" in self.file_rules or rule_id in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        return rules is not None and ("all" in rules or rule_id in rules)

    def __bool__(self) -> bool:
        return bool(self.file_rules or self.line_rules)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the incremental cache's entry payload)."""
        return {
            "file_rules": sorted(self.file_rules),
            "line_rules": {
                str(line): sorted(rules)
                for line, rules in sorted(self.line_rules.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Suppressions":
        out = cls()
        out.file_rules = {str(r) for r in payload.get("file_rules", [])}  # type: ignore[union-attr]
        line_rules = payload.get("line_rules", {})
        if isinstance(line_rules, dict):
            for line, rules in line_rules.items():
                out.line_rules[int(line)] = {str(r) for r in rules}
        return out


def _parse_directive(comment: str) -> tuple[bool, set[str]] | None:
    match = _DIRECTIVE.search(comment)
    if match is None:
        return None
    rules = {part.strip() for part in match.group("rules").split(",") if part.strip()}
    return (match.group("file_scope") is not None, rules)


def parse_suppressions(text: str) -> Suppressions:
    """Scan ``text`` (module source) for ``# boomerlint:`` directives.

    Tokenizes rather than grepping so a ``# boomerlint:`` *inside a
    string literal* is never mistaken for a directive.  On tokenize
    failure (the engine reports the syntax error separately) returns an
    empty suppression set.
    """
    out = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    lines = text.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        parsed = _parse_directive(token.string)
        if parsed is None:
            continue
        file_scope, rules = parsed
        if file_scope:
            out.file_rules.update(rules)
            continue
        line = token.start[0]
        out.add_line(line, rules)
        # A comment-only line ("banner" form) guards the next line too.
        prefix = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
        if prefix.strip() == "":
            out.add_line(line + 1, rules)
    return out
