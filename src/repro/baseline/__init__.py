"""Baselines BOOMER is compared against.

* **BOOMER-unaware evaluation (BU)** — the paper's baseline: evaluate the
  BPH query from scratch after the Run click, with the PML index but
  *without* the CAP index or any blending.
* **Distance join** — the Related-Work contrast (Zou et al. style):
  materialize every edge's bounded-distance pair relation, then multi-way
  join; still formulate-then-process, but join-based rather than
  nested-loop.
"""

from repro.baseline.bu import BoomerUnaware, BUResult
from repro.baseline.distance_join import DistanceJoin, DistanceJoinResult

__all__ = ["BoomerUnaware", "BUResult", "DistanceJoin", "DistanceJoinResult"]
