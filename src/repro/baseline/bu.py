"""BOOMER-unaware evaluation (BU) — the paper's baseline (Section 7.1).

BU "generates partial matches without utilizing the CAP index after the Run
icon is clicked by following the reordered matching order":

* query vertices are considered smallest-candidate-set first;
* each partial match is extended with every label-matching candidate of the
  next vertex that (a) is distinct from already-used vertices (1-1) and
  (b) satisfies the upper-bound constraint — checked with a PML distance
  query — against *every* already-matched query neighbor.

There is no pruning memo: the same distance query is issued again for every
partial match that reaches the same vertex pair, which is exactly why BU is
orders of magnitude slower than CAP-based evaluation (Fig. 7) and why the
paper caps its runs at two hours (we expose ``timeout_seconds``; a timed-out
run reports ``timed_out=True``, the analog of the paper's DNF entries).

Lower bounds are then checked the same just-in-time way as BOOMER's
(shared :func:`repro.core.lowerbound.filter_by_lower_bound`), so BU's final
answers are comparable 1:1 with BOOMER's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import EngineContext
from repro.core.lowerbound import ResultSubgraph, filter_by_lower_bound
from repro.core.query import BPHQuery
from repro.obs.clock import now

__all__ = ["BoomerUnaware", "BUResult"]


@dataclass
class BUResult:
    """Outcome of one BU evaluation."""

    matches: list[dict[int, int]]
    srt_seconds: float
    timed_out: bool = False
    truncated: bool = False
    distance_queries: int = 0
    order: list[int] = field(default_factory=list)

    @property
    def num_matches(self) -> int:
        """Number of upper-bound-constrained matches found."""
        return len(self.matches)


class BoomerUnaware:
    """Traditional post-formulation BPH evaluation with PML only."""

    def __init__(
        self,
        ctx: EngineContext,
        timeout_seconds: float | None = None,
        max_results: int | None = None,
    ) -> None:
        self.ctx = ctx
        self.timeout_seconds = timeout_seconds
        self.max_results = max_results

    def evaluate(self, query: BPHQuery) -> BUResult:
        """Evaluate ``query`` from scratch; the whole call is the SRT."""
        query.validate()
        start = now()
        start_queries = self.ctx.counters.distance_queries

        # Reordered matching order: increasing candidate-set size.
        candidates_of = {
            q: self.ctx.candidates_for(query.label(q)) for q in query.vertex_ids()
        }
        base = query.matching_order
        position = {q: i for i, q in enumerate(base)}
        order = sorted(base, key=lambda q: (len(candidates_of[q]), position[q]))
        neighbors_of = {q: query.neighbors(q) for q in order}

        matches: list[dict[int, int]] = []
        timed_out = False
        truncated = False
        deadline = (
            start + self.timeout_seconds if self.timeout_seconds is not None else None
        )

        assignment: dict[int, int] = {}
        used: set[int] = set()

        def extend(pos: int) -> bool:
            """DFS join; returns False to abort (timeout / cap)."""
            nonlocal timed_out, truncated
            if deadline is not None and now() > deadline:
                timed_out = True
                return False
            if pos == len(order):
                matches.append(dict(assignment))
                if self.max_results is not None and len(matches) >= self.max_results:
                    truncated = True
                    return False
                return True
            q_next = order[pos]
            matched_neighbors = [
                (qk, query.edge_between(qk, q_next).upper)
                for qk in neighbors_of[q_next]
                if qk in assignment
            ]
            # Batched constraint filtering: one distances_from call per
            # matched query neighbor narrows the whole candidate list,
            # instead of per-(candidate, neighbor) within() calls.  The
            # surviving candidates — and hence the emitted matches — are
            # identical to the scalar short-circuit loop, and so is the
            # distance_queries total on completed runs: a candidate is in
            # ``viable`` at neighbor k iff the scalar loop would have
            # issued its k-th check.  (Only a mid-search timeout can make
            # the totals differ, since the batch arm pays for a level's
            # candidates up front.)
            viable = [v for v in candidates_of[q_next] if v not in used]
            for qk, upper in matched_neighbors:
                if not viable:
                    break
                dists = self.ctx.distances_from(assignment[qk], viable)
                viable = [
                    v for v, d in zip(viable, dists) if 0 <= d <= upper
                ]
            for v in viable:
                assignment[q_next] = v
                used.add(v)
                keep_going = extend(pos + 1)
                used.discard(v)
                del assignment[q_next]
                if not keep_going:
                    return False
            return True

        extend(0)
        return BUResult(
            matches=matches,
            srt_seconds=now() - start,
            timed_out=timed_out,
            truncated=truncated,
            distance_queries=self.ctx.counters.distance_queries - start_queries,
            order=order,
        )

    def results(self, bu_result: BUResult, query: BPHQuery, limit: int | None = None) -> list[ResultSubgraph]:
        """Lower-bound-validated result subgraphs (same JIT path as BOOMER)."""
        out: list[ResultSubgraph] = []
        for match in bu_result.matches:
            subgraph = filter_by_lower_bound(match, query, self.ctx)
            if subgraph is not None:
                out.append(subgraph)
                if limit is not None and len(out) >= limit:
                    break
        return out
