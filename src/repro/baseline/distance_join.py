"""Distance-join baseline (Related Work, Sec. 8).

The paper contrasts BOOMER with pattern matching via *distance joins* in
the traditional setting (Zou, Chen, Özsu VLDB'09; Zhang et al. TKDE'15):
after formulation, materialize for every query edge its **edge relation**

    R_e = { (v_i, v_j) ∈ V_qi x V_qj : dist(v_i, v_j) <= bound }

and multi-way join the relations on shared query vertices.  Two deviations
from BOOMER that the paper calls out:

* [38] "specifies only a *global* upper bound for the query" — exposed via
  ``global_upper`` (when set, every edge relation uses that single bound);
  by default the per-edge bounds are used so answers are comparable;
* these systems "find vertex matches without enumerating all vertices
  along the paths" — like ``V_Δ``, lower bounds and path embeddings are
  outside their scope (callers can still reuse BOOMER's JIT machinery).

Compared with BU (pure nested-loop with repeated distance queries), the
distance join pays the full materialization of every edge relation up
front — the same all-pairs work CAP does for *expensive* edges, but for
every edge and with no incremental pruning between them, which is exactly
why the blended paradigm wins during formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import EngineContext
from repro.core.query import BPHQuery
from repro.obs.clock import now

__all__ = ["DistanceJoin", "DistanceJoinResult"]


@dataclass
class DistanceJoinResult:
    """Outcome of one distance-join evaluation."""

    matches: list[dict[int, int]]
    srt_seconds: float
    materialize_seconds: float  # edge-relation construction share
    join_seconds: float  # multi-way join share
    relation_sizes: dict[tuple[int, int], int] = field(default_factory=dict)
    timed_out: bool = False
    truncated: bool = False

    @property
    def num_matches(self) -> int:
        """Number of upper-bound-constrained matches found."""
        return len(self.matches)


class DistanceJoin:
    """Materialize-then-join evaluation of a BPH query's upper bounds."""

    def __init__(
        self,
        ctx: EngineContext,
        global_upper: int | None = None,
        timeout_seconds: float | None = None,
        max_results: int | None = None,
    ) -> None:
        self.ctx = ctx
        self.global_upper = global_upper
        self.timeout_seconds = timeout_seconds
        self.max_results = max_results

    def evaluate(self, query: BPHQuery) -> DistanceJoinResult:
        """Evaluate ``query``; the whole call is the traditional SRT."""
        query.validate()
        start = now()
        deadline = (
            start + self.timeout_seconds if self.timeout_seconds is not None else None
        )

        # Phase 1 — materialize every edge relation.
        relations: dict[tuple[int, int], dict[int, set[int]]] = {}
        relation_sizes: dict[tuple[int, int], int] = {}
        timed_out = False
        candidates = {
            q: self.ctx.candidates_for(query.label(q)) for q in query.vertex_ids()
        }
        for edge in query.edges():
            bound = self.global_upper if self.global_upper is not None else edge.upper
            forward: dict[int, set[int]] = {}
            count = 0
            others = candidates[edge.v]
            for vi in candidates[edge.u]:
                if deadline is not None and now() > deadline:
                    timed_out = True
                    break
                # One batched distance vector per vi replaces the
                # per-(vi, vj) within() loop; vi itself is excluded first,
                # exactly like the scalar filter (and uncounted, as before).
                probe = [vj for vj in others if vj != vi]
                dists = self.ctx.distances_from(vi, probe) if probe else ()
                targets = {
                    vj for vj, d in zip(probe, dists) if 0 <= d <= bound
                }
                if targets:
                    forward[vi] = targets
                    count += len(targets)
            relations[edge.key] = forward
            relation_sizes[edge.key] = count
            if timed_out:
                break
        materialize_seconds = now() - start

        if timed_out:
            return DistanceJoinResult(
                matches=[],
                srt_seconds=now() - start,
                materialize_seconds=materialize_seconds,
                join_seconds=0.0,
                relation_sizes=relation_sizes,
                timed_out=True,
            )

        # Phase 2 — multi-way join on shared query vertices (DFS over the
        # user order, no candidate-size reordering: the traditional system
        # has no live sizes to reorder by until relations are built, and we
        # keep it deliberately simple like the baseline it models).
        join_start = now()
        order = query.matching_order
        neighbors_of = {q: query.neighbors(q) for q in order}
        matches: list[dict[int, int]] = []
        truncated = False
        assignment: dict[int, int] = {}
        used: set[int] = set()

        def pairs_allow(q_next: int, v: int) -> bool:
            """Is (assignment[q_prev], v) in R_e for every matched neighbor?

            Relations are stored directed from ``edge.u``; when the matched
            neighbor sits on the ``edge.v`` side, ``v`` plays the ``edge.u``
            role in the lookup.
            """
            for q_prev in neighbors_of[q_next]:
                if q_prev not in assignment:
                    continue
                edge = query.edge_between(q_prev, q_next)
                forward = relations[edge.key]
                if q_prev == edge.u:
                    allowed = v in forward.get(assignment[q_prev], ())
                else:
                    allowed = assignment[q_prev] in forward.get(v, ())
                if not allowed:
                    return False
            return True

        def extend(position: int) -> bool:
            nonlocal truncated, timed_out
            if deadline is not None and now() > deadline:
                timed_out = True
                return False
            if position == len(order):
                matches.append(dict(assignment))
                if self.max_results is not None and len(matches) >= self.max_results:
                    truncated = True
                    return False
                return True
            q_next = order[position]
            for v in candidates[q_next]:
                if v in used:
                    continue
                if not pairs_allow(q_next, v):
                    continue
                assignment[q_next] = v
                used.add(v)
                keep_going = extend(position + 1)
                used.discard(v)
                del assignment[q_next]
                if not keep_going:
                    return False
            return True

        extend(0)
        join_seconds = now() - join_start
        return DistanceJoinResult(
            matches=matches,
            srt_seconds=now() - start,
            materialize_seconds=materialize_seconds,
            join_seconds=join_seconds,
            relation_sizes=relation_sizes,
            timed_out=timed_out,
            truncated=truncated,
        )
