"""Command-line interface.

Subcommands::

    python -m repro generate --dataset wordnet --n 500 --out graph.txt
    python -m repro stats --graph graph.txt
    python -m repro query --graph graph.txt --query query.txt \
        [--strategy DI] [--limit 10] [--rank compactness] [--dot out.dot]
    python -m repro serve --graph graph.txt [--port 7474] \
        [--max-sessions 64] [--cap-budget 1000000]
    python -m repro soak --dataset dblp [--sessions 20] [--chaos] \
        [--out BENCH_soak.json]
    python -m repro obs summarize --trace trace.json
    python -m repro obs tree --trace trace.json [--max-depth 3]
    python -m repro obs metrics --port 7474 [--format json]
    python -m repro update-check [--seed 7] [--rounds 3] [--steps 12]
    python -m repro lint src/repro [--rules R1,R2] [--format json]

``serve`` hosts the multi-session query service (see docs/SERVICE.md): a
JSON-lines-over-TCP protocol multiplexing many concurrent visual sessions
over one shared graph + PML oracle.  It prints ``serving on HOST:PORT``
once ready (``--port 0`` picks a free port) and exits cleanly on SIGINT
or a client ``shutdown`` op.

``soak`` stands up that same service with *deliberately tight* budgets,
floods it with a seeded heavy-tailed traffic schedule
(:mod:`repro.workload.traffic`) — optionally under a chaos
:class:`repro.faults.FaultPlan` — then drains, restores checkpointed
sessions, and gates the run on an SLO (:mod:`repro.soak`).  Exits 0 on
pass, 1 on any SLO violation; ``--out BENCH_soak.json`` archives the
full report.

The query file mirrors the visual formulation stream, one action per line
(``#`` comments allowed)::

    v 0 A          # vertex id 0 labeled A
    v 1 B
    e 0 1 1 2      # edge (0, 1) with bounds [1, 2]

Lines are replayed through the blender in file order, so the file *is* the
formulation sequence (vertex ids may be any integers; edges may only
reference already-declared vertices).

``query`` and ``replay`` accept resilience options: ``--resilience``
(off/default/strict/paranoid), ``--deadline`` (Run-phase budget, seconds),
and ``--fault-plan`` (a :class:`repro.faults.FaultPlan` JSON file or
inline JSON, for reproducing failure scenarios).  Both also take
``--trace FILE``: the session runs with a live :mod:`repro.obs` tracer and
the span timeline (spans + summary + SRT decomposition) lands in ``FILE``
as JSON, ready for ``repro obs summarize`` / ``repro obs tree``.

``obs`` inspects observability artifacts: ``summarize`` and ``tree`` read
a ``--trace`` JSON file offline; ``metrics`` pulls the process-wide
registry from a *running* ``repro serve`` instance over the wire
(Prometheus-style text by default, ``--format json`` for the snapshot).

``lint`` runs **boomerlint**, the codebase-aware static analyzer of
:mod:`repro.analysis`: AST rules R1–R7 enforce this repo's determinism,
error-taxonomy, oracle-contract, metrics/span-naming, public-API,
lock-discipline, and storage-seam invariants (see docs/ANALYSIS.md).
Exits 0 when clean, 1 with ``file:line:col: RULE message`` diagnostics
otherwise.

Exit codes are distinct so scripts can branch on the outcome::

    0  success (CAP path)
    1  error (bad input, protocol violation, unhandled failure)
    2  success but *degraded* — matches came from the BU fallback ladder
    3  deadline exceeded
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.core.actions import Action, NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.preprocessor import make_context, preprocess
from repro.core.ranking import RANKINGS, rank_results
from repro.errors import (
    DeadlineExceededError,
    QueryFileError,
    ReproError,
    StorageError,
)
from repro.faults import FaultPlan
from repro.graph.generators import dblp_like, flickr_like, wordnet_like
from repro.graph.io import load_edge_list, save_edge_list
from repro.graph.stats import compute_stats
from repro.gui.render import to_dot, to_text
from repro.resilience import ResilienceConfig

__all__ = [
    "main",
    "parse_query_file",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_DEGRADED",
    "EXIT_DEADLINE",
]

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_DEGRADED = 2
EXIT_DEADLINE = 3

_GENERATORS = {
    "wordnet": wordnet_like,
    "dblp": dblp_like,
    "flickr": flickr_like,
}


def _parse_byte_budget(text: str) -> int:
    """``"64M"`` / ``"2G"`` / plain integers -> bytes (for --storage-budget)."""
    raw = text.strip().upper()
    factor = 1
    for suffix, mult in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if raw.endswith(suffix):
            raw, factor = raw[: -len(suffix)], mult
            break
    try:
        value = int(raw) * factor
    except ValueError:
        raise StorageError(
            f"--storage-budget {text!r} is not BYTES or BYTES with K/M/G"
        ) from None
    if value <= 0:
        raise StorageError("--storage-budget must be positive")
    return value


def parse_query_file(path: str | Path) -> list[Action]:
    """Parse the query-file format into an action list ending with Run."""
    actions: list[Action] = []
    declared: set[int] = set()
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                if parts[0] == "v":
                    vid = int(parts[1])
                    label = " ".join(parts[2:])
                    if not label:
                        raise QueryFileError("vertex missing label")
                    actions.append(NewVertex(vid, label))
                    declared.add(vid)
                elif parts[0] == "e":
                    u, v = int(parts[1]), int(parts[2])
                    lower = int(parts[3]) if len(parts) > 3 else 1
                    upper = int(parts[4]) if len(parts) > 4 else lower
                    if u not in declared or v not in declared:
                        raise QueryFileError("edge references undeclared vertex")
                    actions.append(NewEdge(u, v, lower, upper))
                else:
                    raise QueryFileError(f"unknown record {parts[0]!r}")
            except (ValueError, IndexError) as exc:
                # int() raises bare ValueError and short lines IndexError;
                # both re-wrap so callers see one typed error with location.
                raise QueryFileError(f"{path}:{lineno}: {exc}") from exc
    if not actions:
        raise QueryFileError(f"{path}: empty query file")
    actions.append(Run())
    return actions


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.dataset]
    graph = generator(args.n, seed=args.seed)
    save_edge_list(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.graph)
    print(compute_stats(graph).describe())
    return 0


def _load_fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    raw = getattr(args, "fault_plan", None)
    return FaultPlan.from_json(raw) if raw else None


def _make_tracer(args: argparse.Namespace):
    """A live tracer when ``--trace`` was given, the no-op one otherwise."""
    from repro.obs.trace import NULL_TRACER, Tracer

    return Tracer() if getattr(args, "trace", None) else NULL_TRACER


def _write_trace(tracer, path: str) -> None:
    """Finish ``tracer`` and dump its timeline as ``repro obs`` input."""
    import json

    from repro.obs import export as obs_export

    tracer.finish()
    spans = tracer.export()
    payload = {
        "spans": spans,
        "summary": obs_export.summarize(spans),
        "decomposition": obs_export.srt_decomposition(spans),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"trace ({len(spans)} spans) written to {path}", file=sys.stderr)


def _resilience_config(
    args: argparse.Namespace, plan: FaultPlan | None
) -> ResilienceConfig | None:
    """Assemble the resilience posture the flags describe (None = off)."""
    mode = getattr(args, "resilience", "off")
    deadline = getattr(args, "deadline", None)
    if mode == "off" and deadline is None:
        return None
    if mode == "strict":
        config = ResilienceConfig.strict()
    elif mode == "paranoid":
        config = ResilienceConfig.paranoid()
    else:  # "default", or "off" upgraded by --deadline
        config = ResilienceConfig.default()
    if deadline is not None:
        config = replace(config, deadline_seconds=deadline)
    if plan is not None and plan.cap is not None and not config.verify_cap_on_run:
        # Injected storage rot without an audit could silently change
        # answers; storage is known untrusted here, so verification is on.
        config = replace(config, verify_cap_on_run=True)
    return config


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.graph)
    print(f"loaded {graph}", file=sys.stderr)
    actions = parse_query_file(args.query)
    pre = preprocess(graph, t_avg_samples=args.t_avg_samples)
    print(pre.summary(), file=sys.stderr)

    plan = _load_fault_plan(args)
    config = _resilience_config(args, plan)
    ctx = make_context(pre)
    if plan is not None:
        ctx = plan.wrap_context(ctx)
    tracer = _make_tracer(args)
    boomer = Boomer(
        ctx,
        strategy=args.strategy,
        max_results=args.max_matches,
        resilience=config,
        tracer=tracer,
    )
    for action in actions[:-1]:
        boomer.apply(action)
    if plan is not None:
        # Storage rot lands after formulation, right before the Run click.
        plan.corrupt_cap(boomer.cap)
    boomer.apply(actions[-1])
    run = boomer.run_result
    print(
        f"V_delta: {run.num_matches} upper-bound matches"
        f"{' (truncated)' if run.matches.truncated else ''}, "
        f"SRT {run.srt_seconds * 1e3:.2f} ms, "
        f"CAP size {run.cap_size.total}",
        file=sys.stderr,
    )
    if run.degraded:
        print(
            f"DEGRADED: {run.degradation_reason} -> fallback {run.fallback}",
            file=sys.stderr,
        )

    results = boomer.results(limit=args.limit)
    if args.rank:
        results = rank_results(
            results, boomer.query, boomer.engine.ctx, scheme=args.rank
        )
    for result in results:
        print()
        print(to_text(result, graph, boomer.query))
    if args.dot and results:
        Path(args.dot).write_text(
            to_dot(results[0], graph, boomer.query), encoding="utf-8"
        )
        print(f"\nDOT of top match written to {args.dot}", file=sys.stderr)
    if args.trace:
        _write_trace(tracer, args.trace)
    return EXIT_DEGRADED if run.degraded else EXIT_OK


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.gui.recording import load_actions
    from repro.gui.session import VisualSession

    graph = load_edge_list(args.graph)
    actions = load_actions(args.recording)
    pre = preprocess(graph, t_avg_samples=args.t_avg_samples)
    print(pre.summary(), file=sys.stderr)
    plan = _load_fault_plan(args)
    tracer = _make_tracer(args)
    session = VisualSession(
        make_context(pre),
        resilience=_resilience_config(args, plan),
        fault_plan=plan,
        tracer=tracer,
    )
    result = session.run_actions(
        actions,
        instance_name=str(args.recording),
        strategy=args.strategy,
        max_results=args.max_matches,
    )
    print(
        f"replayed {len(actions)} actions ({args.strategy}): "
        f"{result.num_matches} matches, SRT {result.srt_seconds * 1e3:.2f} ms, "
        f"backlog {result.backlog_seconds * 1e3:.2f} ms, "
        f"CAP time {result.cap_construction_seconds * 1e3:.2f} ms",
        file=sys.stderr,
    )
    if result.degraded:
        print(
            f"DEGRADED: {result.run.degradation_reason} -> fallback {result.fallback}",
            file=sys.stderr,
        )
    for subgraph in result.boomer.results(limit=args.limit):
        print()
        print(to_text(subgraph, graph, result.boomer.query))
    if args.trace:
        _write_trace(tracer, args.trace)
    return EXIT_DEGRADED if result.degraded else EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.resilience import ResilienceConfig as _RC
    from repro.service import QueryServer, SessionManager
    from repro.service.session import SessionLimits

    if args.storage != "mmap" and (args.storage_dir or args.storage_budget):
        raise StorageError(
            "--storage-dir/--storage-budget only apply to --storage mmap"
        )
    storage_budget = (
        _parse_byte_budget(args.storage_budget) if args.storage_budget else None
    )
    storage_backend = None
    if args.storage == "mmap" and args.storage_dir:
        # A named dir already holding a valid saved basis serves as-is —
        # no graph build, no PML construction.  This is how a
        # materialize_basis()-produced paper-scale basis (or a previous
        # run's --storage-dir) comes back up in milliseconds.
        from repro.errors import BasisFormatError
        from repro.storage import MmapBackend
        from repro.storage.mmapstore import read_meta

        try:
            read_meta(args.storage_dir)
        except BasisFormatError:
            pass  # nothing saved there yet: build below, save into it
        else:
            storage_backend = MmapBackend(
                args.storage_dir, budget_bytes=storage_budget
            )
            print(
                f"opened saved basis '{storage_backend.basis.graph_name}' "
                f"from {args.storage_dir}",
                file=sys.stderr,
            )

    if storage_backend is not None:
        base_ctx = storage_backend.context()
    elif args.graph:
        graph = load_edge_list(args.graph)
        print(f"loaded {graph}", file=sys.stderr)
        pre = preprocess(graph, t_avg_samples=args.t_avg_samples)
        print(pre.summary(), file=sys.stderr)
        base_ctx = make_context(pre)
    else:
        from repro.datasets.registry import get_dataset

        bundle = get_dataset(args.dataset, args.scale)
        print(bundle.pre.summary(), file=sys.stderr)
        base_ctx = bundle.make_context()

    if args.storage == "mmap" and storage_backend is None and args.workers == 0:
        # The threaded path owns its mmap basis directly (the pool
        # dispatcher creates its own instead, so workers share it).
        from repro.storage import basis_from_context, open_backend

        storage_backend = open_backend(
            "mmap",
            basis=basis_from_context(base_ctx),
            directory=args.storage_dir,
            budget_bytes=storage_budget,
        )
        base_ctx = storage_backend.context()

    posture = getattr(args, "resilience", "off")
    default_resilience = None if posture == "off" else {
        "default": _RC.default,
        "strict": _RC.strict,
        "paranoid": _RC.paranoid,
    }[posture]()
    if args.deadline is not None:
        default_resilience = replace(
            default_resilience or _RC.default(), deadline_seconds=args.deadline
        )

    limits = SessionLimits(resilience=default_resilience)
    if args.workers > 0:
        from repro.service.pool import PoolDispatcher

        backend = PoolDispatcher(
            base_ctx,
            workers=args.workers,
            max_sessions=args.max_sessions,
            cap_entry_budget=args.cap_budget,
            default_limits=limits,
            checkpoint_dir=args.checkpoint_dir,
            storage="mmap" if args.storage == "mmap" else "shm",
            basis_dir=args.storage_dir,
            storage_budget_bytes=storage_budget,
        )
    else:
        backend = SessionManager(
            base_ctx,
            max_sessions=args.max_sessions,
            cap_entry_budget=args.cap_budget,
            default_limits=limits,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_on_mutate=args.checkpoint_dir is not None,
        )
    server = QueryServer(backend, host=args.host, port=args.port)
    host, port = server.address
    basis_kind = "mmap" if args.storage == "mmap" else (
        "shm" if args.workers > 0 else "resident"
    )
    mode = (
        f"{args.workers} workers" if args.workers > 0 else "threaded"
    ) + f", {basis_kind} basis"
    # The banner line is a parsing contract (smoke tests, scripts): keep
    # it exactly `serving on host:port`; the mode goes to stderr.
    print(f"serving on {host}:{port}", flush=True)
    print(f"backend: {mode}", file=sys.stderr, flush=True)
    stats: dict[str, object] = {}
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        try:
            stats = server.backend.dispatch({"op": "stats"})
        except Exception:
            stats = {}
        server.stop()
        if storage_backend is not None:
            storage_backend.close()
        print(
            f"served {stats.get('sessions_created', 0)} sessions "
            f"({stats.get('runs_completed', 0)} runs, "
            f"{stats.get('sessions_evicted', 0)} evicted); bye",
            file=sys.stderr,
        )
    return EXIT_OK


def _cmd_soak(args: argparse.Namespace) -> int:
    import json

    from repro.service.overload import OverloadPolicy
    from repro.soak import SLO, run_soak
    from repro.workload import SoakWorkloadConfig

    if args.graph:
        graph = load_edge_list(args.graph)
        print(f"loaded {graph}", file=sys.stderr)
        pre = preprocess(graph, t_avg_samples=args.t_avg_samples)
        base_ctx = make_context(pre)
    else:
        from repro.datasets.registry import get_dataset

        bundle = get_dataset(args.dataset, args.scale)
        base_ctx = bundle.make_context()

    if args.workers > 0:
        # Fault wrappers cannot cross the process boundary; the pool
        # soak's chaos is the worker SIGKILL.
        plan = None
    elif args.fault_plan:
        plan = FaultPlan.from_json(args.fault_plan)
    elif args.chaos:
        # Default chaos mix: transient oracle faults and GUI latency
        # turbulence, seeded from the workload seed so one --seed pins
        # the entire experiment.
        from repro.faults import GUIFaultSpec, OracleFaultSpec

        plan = FaultPlan(
            seed=args.seed,
            oracle=OracleFaultSpec(transient_rate=0.02, transient_burst=2),
            gui=GUIFaultSpec(drop_rate=0.05, spike_rate=0.05),
        )
    else:
        plan = None

    workload = SoakWorkloadConfig(
        seed=args.seed,
        sessions=args.sessions,
        mean_interarrival_seconds=args.mean_interarrival,
        modify_rate=args.modify_rate,
        abandon_rate=args.abandon_rate,
        postures=tuple(args.postures.split(",")),
    )
    overload = OverloadPolicy(
        session_watermark=args.session_watermark,
        cap_watermark=args.cap_watermark,
        max_inflight=args.max_inflight,
    )
    report = run_soak(
        base_ctx,
        workload,
        fault_plan=plan,
        slo=SLO(max_memory_growth_mib=args.max_memory_growth),
        overload=overload,
        max_sessions=args.max_sessions,
        cap_entry_budget=args.cap_budget,
        time_scale=args.time_scale,
        lock_monitor=not args.no_lock_monitor,
        workers=args.workers,
        kill_worker_after=args.kill_worker_after,
    )
    payload = report.to_dict()
    payload["workload"] = {
        "seed": workload.seed,
        "sessions": workload.sessions,
        "postures": list(workload.postures),
    }
    payload["fault_plan"] = plan.to_dict() if plan else None
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    verdict = "PASS" if report.passed else "FAIL"
    print(
        f"soak {verdict}: {report.runs_completed} runs, "
        f"{report.requests_shed} shed, {report.sessions_restored} restored, "
        f"{report.leaked_sessions} leaked, "
        f"p95={report.run_latency.get('p95', 0.0):.3f}s",
        file=sys.stderr,
    )
    for violation in report.violations:
        print(f"SLO violation: {violation}", file=sys.stderr)
    return EXIT_OK if report.passed else EXIT_ERROR


def _load_trace_file(path: str) -> list[dict]:
    """Span records from a ``--trace`` dump (envelope dict or bare list)."""
    import json

    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from exc
    spans = payload.get("spans") if isinstance(payload, dict) else payload
    if not isinstance(spans, list):
        raise ReproError(f"{path}: expected a span list or a 'spans' key")
    return spans


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import export as obs_export

    if args.obs_command == "metrics":
        from repro.service import ServiceClient

        try:
            with ServiceClient(args.host, args.port) as client:
                if args.format == "json":
                    snapshot = client.metrics()["metrics"]
                    print(json.dumps(snapshot, indent=2, sort_keys=True))
                else:
                    print(client.metrics(format="text")["text"], end="")
        except OSError as exc:
            raise ReproError(
                f"cannot reach repro serve at {args.host}:{args.port}: {exc}"
            ) from exc
        return EXIT_OK

    spans = _load_trace_file(args.trace)
    if args.obs_command == "tree":
        print(obs_export.render_tree(spans, max_depth=args.max_depth))
        return EXIT_OK
    # summarize
    report = {
        "summary": obs_export.summarize(spans),
        "decomposition": obs_export.srt_decomposition(spans),
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_update_check(args: argparse.Namespace) -> int:
    """Seeded mini-conformance run for incremental graph updates.

    Generates seeded synthetic graphs, applies a random insert/delete
    schedule through :mod:`repro.updates`, and asserts that the
    maintained index answers every distance byte-identically to a fresh
    PML build on the mutated graph (plus two-hop count parity).  This is
    the fast CI gate next to the full hypothesis suite in
    ``tests/test_updates_conformance.py``.
    """
    import numpy as np

    from repro.errors import GraphMutationError
    from repro.indexing.pml import PrunedLandmarkLabeling
    from repro.indexing.twohop import two_hop_counts
    from repro.updates import delete_edge, insert_edge
    from repro.utils.rng import seeded_rng

    rng = seeded_rng(args.seed)
    updates_applied = 0
    for round_no in range(args.rounds):
        graph = _GENERATORS[args.dataset](args.n, seed=rng.randrange(1 << 30))
        pre = preprocess(graph, t_avg_samples=64)
        ctx = make_context(pre)
        n = graph.num_vertices
        for _ in range(args.steps):
            kind = rng.choice(("insert", "delete"))
            if kind == "insert":
                for _attempt in range(32):
                    u, v = rng.randrange(n), rng.randrange(n)
                    if u != v and not graph.has_edge(u, v):
                        insert_edge(ctx, u, v)
                        updates_applied += 1
                        break
            else:
                edges = list(graph.iter_edges())
                if not edges:
                    continue
                u, v = rng.choice(edges)
                try:
                    delete_edge(ctx, u, v)
                except GraphMutationError:
                    continue
                updates_applied += 1
        fresh = PrunedLandmarkLabeling.build(graph)
        targets = np.arange(n, dtype=np.int64)
        for source in range(n):
            got = np.asarray(ctx.oracle.distances_from(source, targets))
            want = np.asarray(fresh.distances_from(source, targets))
            if not np.array_equal(got, want):
                bad = int(np.nonzero(got != want)[0][0])
                print(
                    f"update-check FAIL (round {round_no}, seed {args.seed}): "
                    f"dist({source}, {bad}) = {int(got[bad])} incremental "
                    f"vs {int(want[bad])} fresh at epoch {graph.epoch}",
                    file=sys.stderr,
                )
                return EXIT_ERROR
        if not np.array_equal(np.asarray(ctx.two_hop), two_hop_counts(graph)):
            print(
                f"update-check FAIL (round {round_no}, seed {args.seed}): "
                "two-hop counts diverged from a fresh recount",
                file=sys.stderr,
            )
            return EXIT_ERROR
        print(
            f"round {round_no}: {graph.num_vertices} vertices, "
            f"epoch {graph.epoch}, answers identical to fresh build",
            file=sys.stderr,
        )
    print(
        f"update-check PASS: {args.rounds} round(s), "
        f"{updates_applied} update(s), incremental == fresh everywhere"
    )
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import (
        LintEngine,
        apply_baseline,
        load_baseline,
        rule_ids,
        to_sarif,
        write_baseline,
    )
    from repro.errors import LintUsageError

    if args.list_rules:
        for rule in LintEngine().rules:
            print(f"{rule.id}  {rule.title}")
        return EXIT_OK
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        engine = LintEngine.for_rule_ids(wanted)
    else:
        engine = LintEngine()
    cache = engine.open_cache(Path(args.cache)) if args.cache else None
    report = engine.lint_paths(args.paths, cache=cache)

    if args.update_baseline:
        write_baseline(Path(args.update_baseline), report.violations)
        print(
            f"baseline written: {len(report.violations)} violation(s) "
            f"accepted in {args.update_baseline}",
            file=sys.stderr,
        )
        return EXIT_OK
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            raise LintUsageError(
                f"baseline file not found: {baseline_path} "
                "(create one with --update-baseline)"
            )
        fresh, tolerated = apply_baseline(
            report.violations, load_baseline(baseline_path)
        )
        report.violations = fresh
        report.baselined = tolerated

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(report, engine.rules), indent=2))
    else:
        for violation in report.violations:
            print(violation.format())
        extras = f" ({report.suppressed} suppressed)"
        if report.baselined:
            extras += f" ({report.baselined} baselined)"
        summary = (
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} file(s)" + extras
        )
        print(summary if report.violations or report.suppressed else
              f"clean: {report.files_checked} file(s), "
              f"rules {', '.join(rule_ids())}", file=sys.stderr)
        if cache is not None:
            print(
                f"cache: {cache.hits} hit(s), {cache.misses} miss(es)",
                file=sys.stderr,
            )
    return EXIT_OK if report.ok else EXIT_ERROR


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro", description="BOOMER BPH query engine"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="emit a synthetic dataset")
    generate.add_argument("--dataset", choices=sorted(_GENERATORS), required=True)
    generate.add_argument("--n", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="describe a graph file")
    stats.add_argument("--graph", required=True)
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="evaluate a BPH query")
    query.add_argument("--graph", required=True)
    query.add_argument("--query", required=True)
    query.add_argument("--strategy", default="DI", choices=("IC", "DR", "DI"))
    query.add_argument("--limit", type=int, default=10, help="results to print")
    query.add_argument(
        "--max-matches", type=int, default=100_000, help="V_delta enumeration cap"
    )
    query.add_argument("--rank", choices=sorted(RANKINGS), default=None)
    query.add_argument("--dot", default=None, help="write top match as DOT here")
    query.add_argument("--t-avg-samples", type=int, default=5000)
    _add_resilience_flags(query)
    _add_trace_flag(query)
    query.set_defaults(func=_cmd_query)

    replay = sub.add_parser(
        "replay", help="replay a recorded formulation session (JSON)"
    )
    replay.add_argument("--graph", required=True)
    replay.add_argument("--recording", required=True)
    replay.add_argument("--strategy", default="DI", choices=("IC", "DR", "DI"))
    replay.add_argument("--limit", type=int, default=10)
    replay.add_argument("--max-matches", type=int, default=100_000)
    replay.add_argument("--t-avg-samples", type=int, default=5000)
    _add_resilience_flags(replay)
    _add_trace_flag(replay)
    replay.set_defaults(func=_cmd_replay)

    serve = sub.add_parser(
        "serve", help="host the multi-session query service (JSON lines/TCP)"
    )
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", default=None, help="edge-list graph file")
    source.add_argument(
        "--dataset", choices=sorted(_GENERATORS), default=None,
        help="serve a registry dataset instead of a graph file",
    )
    serve.add_argument(
        "--scale", default="tiny", metavar="SCALE",
        help="dataset scale preset; validated by the registry, whose error "
        "lists every registered preset (paper scale: docs/STORAGE.md)",
    )
    serve.add_argument(
        "--storage",
        choices=("resident", "mmap"),
        default="resident",
        help="engine-basis storage: resident arrays (default, bit-for-bit "
        "today's behavior) or a demand-paged on-disk mmap basis; with "
        "--workers N, mmap makes workers open the same npy files instead "
        "of copying through shared memory (see docs/STORAGE.md)",
    )
    serve.add_argument(
        "--storage-dir",
        default=None,
        metavar="DIR",
        help="where the mmap basis lives (default: a private temp dir, "
        "deleted on exit; a named dir is reused across restarts)",
    )
    serve.add_argument(
        "--storage-budget",
        default=None,
        metavar="BYTES",
        help="hot-tier byte budget for --storage mmap (suffixes K/M/G; "
        "unset = unbounded hot tier)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7474, help="0 picks a free port"
    )
    serve.add_argument("--max-sessions", type=int, default=64)
    serve.add_argument(
        "--cap-budget",
        type=int,
        default=1_000_000,
        metavar="ENTRIES",
        help="total CAP entries across sessions before LRU eviction",
    )
    serve.add_argument("--t-avg-samples", type=int, default=5000)
    serve.add_argument(
        "--resilience",
        choices=("off", "default", "strict", "paranoid"),
        default="off",
        help="default resilience posture for hosted sessions",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-session Run-phase budget",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes sharing the graph/PML zero-copy "
        "(0 = today's in-process threaded path)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="persist session checkpoints here (restores survive process "
        "restarts; the pool defaults to a private temp dir)",
    )
    serve.set_defaults(func=_cmd_serve)

    soak = sub.add_parser(
        "soak",
        help="chaos-soak a live service against an SLO (see docs/SERVICE.md)",
    )
    soak_source = soak.add_mutually_exclusive_group(required=True)
    soak_source.add_argument("--graph", default=None, help="edge-list graph file")
    soak_source.add_argument(
        "--dataset", choices=sorted(_GENERATORS), default=None,
        help="soak a registry dataset instead of a graph file",
    )
    soak.add_argument(
        "--scale", default="tiny", metavar="SCALE",
        help="dataset scale preset (validated by the dataset registry)",
    )
    soak.add_argument("--t-avg-samples", type=int, default=5000)
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--sessions", type=int, default=20)
    soak.add_argument(
        "--mean-interarrival", type=float, default=0.5, metavar="SECONDS",
        help="mean Pareto interarrival gap in virtual seconds",
    )
    soak.add_argument("--modify-rate", type=float, default=0.3)
    soak.add_argument("--abandon-rate", type=float, default=0.1)
    soak.add_argument(
        "--postures", default="default,strict",
        help="comma-separated resilience postures to rotate through",
    )
    soak.add_argument(
        "--max-sessions", type=int, default=8,
        help="deliberately tight session budget so backpressure fires",
    )
    soak.add_argument("--cap-budget", type=int, default=100_000)
    soak.add_argument("--session-watermark", type=float, default=0.75)
    soak.add_argument("--cap-watermark", type=float, default=0.85)
    soak.add_argument("--max-inflight", type=int, default=32)
    soak.add_argument(
        "--time-scale", type=float, default=0.02,
        help="wall seconds per virtual second of think/arrival time",
    )
    soak.add_argument(
        "--chaos", action="store_true",
        help="enable the default seeded fault plan (oracle + GUI faults)",
    )
    soak.add_argument(
        "--fault-plan", default=None, metavar="FILE|JSON",
        help="explicit FaultPlan (overrides --chaos)",
    )
    soak.add_argument(
        "--no-lock-monitor", action="store_true",
        help="skip lock-order monitoring (slightly faster)",
    )
    soak.add_argument(
        "--max-memory-growth", type=float, default=256.0, metavar="MIB",
    )
    soak.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report JSON here (e.g. BENCH_soak.json)",
    )
    soak.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="soak the worker-pool backend instead of the threaded manager",
    )
    soak.add_argument(
        "--kill-worker-after", type=float, default=None, metavar="SECONDS",
        help="SIGKILL one seeded-random worker this long into the soak "
        "(requires --workers)",
    )
    soak.set_defaults(func=_cmd_soak)

    obs = sub.add_parser(
        "obs", help="inspect observability artifacts (traces, metrics)"
    )
    obs.set_defaults(func=_cmd_obs)
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="span-tree summary + SRT decomposition of a trace"
    )
    summarize.add_argument("--trace", required=True, help="trace JSON file")
    tree = obs_sub.add_parser("tree", help="render a trace as an ASCII tree")
    tree.add_argument("--trace", required=True, help="trace JSON file")
    tree.add_argument(
        "--max-depth", type=int, default=None, help="clip nesting below this"
    )
    metrics_cmd = obs_sub.add_parser(
        "metrics", help="fetch the metrics registry from a running server"
    )
    metrics_cmd.add_argument("--host", default="127.0.0.1")
    metrics_cmd.add_argument("--port", type=int, default=7474)
    metrics_cmd.add_argument(
        "--format", choices=("text", "json"), default="text"
    )

    update_check = sub.add_parser(
        "update-check",
        help="seeded incremental-vs-fresh conformance check for graph updates",
    )
    update_check.add_argument("--seed", type=int, default=7)
    update_check.add_argument(
        "--rounds", type=int, default=3, help="independent graphs to exercise"
    )
    update_check.add_argument(
        "--n", type=int, default=60, help="vertices per synthetic graph"
    )
    update_check.add_argument(
        "--steps", type=int, default=12, help="edge updates per round"
    )
    update_check.add_argument(
        "--dataset", choices=sorted(_GENERATORS), default="wordnet"
    )
    update_check.set_defaults(func=_cmd_update_check)

    lint = sub.add_parser(
        "lint", help="run boomerlint invariant checks over Python sources"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="tolerate violations recorded in FILE; fail only on new ones",
    )
    lint.add_argument(
        "--update-baseline", default=None, metavar="FILE",
        help="record the current violations as the accepted baseline and exit",
    )
    lint.add_argument(
        "--cache", default=None, metavar="FILE",
        help="content-hash incremental cache (created if absent)",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def _add_trace_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="trace the session and write its span timeline here (JSON)",
    )


def _add_resilience_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--resilience",
        choices=("off", "default", "strict", "paranoid"),
        default="off",
        help="resilience posture (retries, degradation, CAP verification)",
    )
    sub.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="Run-phase wall-clock budget (implies --resilience default)",
    )
    sub.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help="fault-injection plan: a JSON file path or inline JSON",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns an exit code (see module docstring)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except DeadlineExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
