"""BOOMER core: the paper's primary contribution.

Public surface:

* :class:`BPHQuery` / :class:`Bounds` — the bounded 1-1 p-hom query model;
* GUI actions (:class:`NewVertex` ... :class:`Run`) and
  :class:`ActionStream`;
* :class:`Boomer` — the query blender facade (Algorithm 1);
* :class:`CAPIndex` — the online Compact Adaptive Path index;
* the three construction strategies (IC / DR / DI);
* enumeration (``partial_vertex_sets``) and just-in-time lower-bound
  filtering (``filter_by_lower_bound`` / ``detect_path``);
* the offline :func:`preprocess` step producing the :class:`EngineContext`.
"""

from repro.core.actions import (
    Action,
    ActionStream,
    DeleteEdge,
    ModifyBounds,
    NewEdge,
    NewVertex,
    Run,
)
from repro.core.blender import ActionReport, BlenderEngine, Boomer, RunResult
from repro.core.cap import CAPIndex, CAPSizeReport
from repro.core.context import EngineContext, EngineCounters
from repro.core.cost import CostModel, GUILatencyConstants
from repro.core.edge_pool import EdgePool
from repro.core.enumerate import (
    PartialMatches,
    iter_partial_vertex_sets,
    partial_vertex_sets,
    reorder_matching_order,
)
from repro.core.explore import (
    estimate_selectivity,
    maximum_match,
    suggest_extension_labels,
)
from repro.core.lowerbound import ResultSubgraph, detect_path, filter_by_lower_bound
from repro.core.matcher import (
    LabelEqualityMatcher,
    SimilarityMatcher,
    VertexMatcher,
    jaccard_label_similarity,
)
from repro.core.modification import ModificationReport, delete_edge, modify_bounds
from repro.core.preprocessor import (
    PreprocessResult,
    make_context,
    measure_t_avg,
    preprocess,
)
from repro.core.pvs import (
    large_upper_search,
    neighbor_search,
    populate_vertex_set,
    two_hop_search,
)
from repro.core.query import BPHQuery, Bounds, QueryEdge, QueryVertex, canonical_edge
from repro.core.ranking import RANKINGS, rank_results
from repro.core.strategies import (
    STRATEGY_NAMES,
    ConstructionStrategy,
    DeferToIdleStrategy,
    DeferToRunStrategy,
    ImmediateStrategy,
    make_strategy,
)

__all__ = [
    "Action",
    "ActionStream",
    "DeleteEdge",
    "ModifyBounds",
    "NewEdge",
    "NewVertex",
    "Run",
    "ActionReport",
    "BlenderEngine",
    "Boomer",
    "RunResult",
    "CAPIndex",
    "CAPSizeReport",
    "EngineContext",
    "EngineCounters",
    "CostModel",
    "GUILatencyConstants",
    "EdgePool",
    "PartialMatches",
    "iter_partial_vertex_sets",
    "partial_vertex_sets",
    "reorder_matching_order",
    "ResultSubgraph",
    "detect_path",
    "filter_by_lower_bound",
    "LabelEqualityMatcher",
    "SimilarityMatcher",
    "VertexMatcher",
    "jaccard_label_similarity",
    "estimate_selectivity",
    "maximum_match",
    "suggest_extension_labels",
    "RANKINGS",
    "rank_results",
    "ModificationReport",
    "delete_edge",
    "modify_bounds",
    "PreprocessResult",
    "make_context",
    "measure_t_avg",
    "preprocess",
    "large_upper_search",
    "neighbor_search",
    "populate_vertex_set",
    "two_hop_search",
    "BPHQuery",
    "Bounds",
    "QueryEdge",
    "QueryVertex",
    "canonical_edge",
    "STRATEGY_NAMES",
    "ConstructionStrategy",
    "DeferToIdleStrategy",
    "DeferToRunStrategy",
    "ImmediateStrategy",
    "make_strategy",
]
