"""GUI actions and the action stream.

Algorithm 1 of the paper drives everything from four *visual actions*:
``NewVertex``, ``NewEdge``, ``Modify`` (bounds update or edge deletion) and
``Run``.  The engine never sees mouse events — only these semantic actions,
which is precisely what makes BOOMER "independent of specific steps taken
by a GUI" (Section 4).

Each action optionally carries the *GUI latency* that the following user
step will take (``latency_after``): the time window the engine may exploit
for CAP work before the next action arrives.  The GUI simulator fills this
in from its latency model; when absent, the engine assumes its configured
``t_lat``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import ActionError

__all__ = [
    "Action",
    "NewVertex",
    "NewEdge",
    "ModifyBounds",
    "DeleteEdge",
    "Run",
    "ActionStream",
]

Label = Hashable


@dataclass(frozen=True)
class Action:
    """Base class of all GUI actions."""

    #: Seconds of GUI latency available *after* this action (the time the
    #: user will spend performing the next visual step).  ``None`` = use the
    #: engine's configured minimum latency t_lat.
    latency_after: float | None = field(default=None, kw_only=True)

    @property
    def kind(self) -> str:
        """Short action name used in logs and reports."""
        return type(self).__name__


@dataclass(frozen=True)
class NewVertex(Action):
    """The user dragged a label onto the Query Panel, creating a vertex."""

    vertex_id: int
    label: Label


@dataclass(frozen=True)
class NewEdge(Action):
    """The user connected two query vertices and (optionally) set bounds."""

    u: int
    v: int
    lower: int = 1
    upper: int = 1


@dataclass(frozen=True)
class ModifyBounds(Action):
    """The user changed the bounds of an existing edge."""

    u: int
    v: int
    lower: int
    upper: int


@dataclass(frozen=True)
class DeleteEdge(Action):
    """The user deleted an existing edge."""

    u: int
    v: int


@dataclass(frozen=True)
class Run(Action):
    """The user clicked the Run icon."""


class ActionStream:
    """Ordered stream of actions with a consumption cursor.

    Mirrors the paper's ``stream``: actions are appended as the user draws
    and consumed by the blender in order.  Iterating yields *unconsumed*
    actions; :meth:`consume` advances the cursor.
    """

    def __init__(self, actions: Iterable[Action] = ()) -> None:
        self._actions: list[Action] = list(actions)
        self._cursor = 0
        self._validate_ordering()

    def _validate_ordering(self) -> None:
        ran = False
        for action in self._actions:
            if ran:
                raise ActionError("actions may not follow Run in a stream")
            if isinstance(action, Run):
                ran = True

    def append(self, action: Action) -> None:
        """Append a new user action."""
        if any(isinstance(a, Run) for a in self._actions):
            raise ActionError("cannot append after Run")
        self._actions.append(action)

    def pending(self) -> list[Action]:
        """Unconsumed actions, oldest first."""
        return self._actions[self._cursor :]

    def consume(self) -> Action:
        """Pop and return the oldest unconsumed action."""
        if self._cursor >= len(self._actions):
            raise ActionError("action stream is exhausted")
        action = self._actions[self._cursor]
        self._cursor += 1
        return action

    @property
    def has_pending(self) -> bool:
        """True when unconsumed actions remain."""
        return self._cursor < len(self._actions)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.pending())

    def __repr__(self) -> str:
        return f"ActionStream({len(self._actions)} actions, cursor={self._cursor})"
