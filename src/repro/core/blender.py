"""The BOOMER query blender (Algorithm 1) — engine + public facade.

:class:`BlenderEngine` owns the mutable state of one formulation session
(query, CAP index, edge pool) and the timed primitives strategies invoke.
:class:`Boomer` is the public API: feed it GUI actions (or whole action
streams) and it interleaves CAP construction with formulation, completes
the index at Run, enumerates the upper-bound matches ``V_Δ``, and filters
by lower bounds just-in-time as results are visualized.

Timing model
------------
Two wall-clock accumulators:

* ``formulation_compute`` — CAP work done *during* formulation, hidden
  inside GUI latency (the user never waits for it);
* the **SRT** — system response time — everything between the Run click
  and the availability of ``V_Δ``: draining the pool of deferred edges plus
  enumeration.  This is exactly what the paper's Figures 5-7 and 11 plot.

CAP *construction time* (Figures 8/10) is the sum of CAP work wherever it
happened: formulation compute + run-phase pool drain.

Resilience
----------
With a :class:`~repro.resilience.ResilienceConfig` attached, the engine
defends the interactive illusion instead of assuming pristine components:
per-edge CAP construction is retried on transient failures (a failed edge
always returns to the pool, never half-processed), the Run phase honors a
cooperative deadline, the CAP index can be audited and repaired before
enumeration, and an unrecoverable CAP path degrades to the BU baseline —
same matches, slower, flagged on the :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.actions import (
    Action,
    ActionStream,
    DeleteEdge,
    ModifyBounds,
    NewEdge,
    NewVertex,
    Run,
)
from repro.core.cap import CAPIndex, CAPSizeReport
from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.core.edge_pool import EdgePool
from repro.core.enumerate import PartialMatches, partial_vertex_sets
from repro.core.lowerbound import ResultSubgraph, filter_by_lower_bound
from repro.core.modification import (
    ModificationReport,
    delete_edge,
    modify_bounds,
    quarantine_edge,
)
from repro.core.pvs import populate_vertex_set
from repro.core.query import BPHQuery, QueryEdge
from repro.core.strategies import (
    ConstructionStrategy,
    DeferToIdleStrategy,
    ImmediateStrategy,
    make_strategy,
)
from repro.errors import (
    ActionError,
    CAPCorruptionError,
    CAPStateError,
    DeadlineExceededError,
    DegradedModeError,
    ReproError,
    RetryExhaustedError,
    SessionError,
)
from repro.obs.clock import now
from repro.obs.metrics import record_run_counters
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.resilience import CAPInvariantChecker, Deadline, ResilienceConfig
from repro.utils.timing import Stopwatch, TimeBudget

__all__ = ["BlenderEngine", "Boomer", "ActionReport", "RunResult"]

#: Span names per GUI action type (the ``action.*`` taxonomy).
_ACTION_SPANS: dict[type, str] = {
    NewVertex: "action.new_vertex",
    NewEdge: "action.new_edge",
    ModifyBounds: "action.modify_bounds",
    DeleteEdge: "action.delete_edge",
}


@dataclass
class ActionReport:
    """What happened when one GUI action was applied."""

    action: Action
    processed_now: bool  # for NewEdge: processed inline vs pooled
    compute_seconds: float  # engine compute triggered by this action
    idle_probe_seconds: float = 0.0  # extra compute done in leftover latency
    modification: ModificationReport | None = None
    #: "ok" — the action succeeded;
    #: "failed-deferred" — a component failed mid-action but the session
    #: survives (the affected CAP work is parked in the pool for Run);
    #: "degraded" — this Run action produced its matches via the BU
    #: degradation ladder.  Non-"ok" statuses only appear when a
    #: resilience config is attached.
    status: str = "ok"
    error: str | None = None  # message of the absorbed failure, if any

    @property
    def ok(self) -> bool:
        """True when the action completed without an absorbed failure."""
        return self.status == "ok"


@dataclass
class RunResult:
    """Everything produced by the Run click."""

    matches: PartialMatches  # V_Δ (upper-bound constrained)
    srt_seconds: float  # Run click -> V_Δ available
    run_drain_seconds: float  # pool-drain share of the SRT
    enumeration_seconds: float  # DFS share of the SRT
    cap_construction_seconds: float  # formulation compute + run drain
    formulation_compute_seconds: float
    cap_size: CAPSizeReport
    cap_peak_size: int  # largest transient size (Figures 9/13/17)
    counters: dict[str, int]
    strategy: str
    #: True when the CAP path failed and the matches came from a BU rung
    #: of the degradation ladder (same match set, slower — see
    #: :mod:`repro.resilience.policy`).
    degraded: bool = False
    #: ``TypeName: message`` of the failure that forced degradation.
    degradation_reason: str | None = None
    #: Which ladder rung produced the matches: "bu-oracle" (BU with the
    #: session oracle) or "bu-bfs" (BU with a fresh index-free BFS oracle).
    fallback: str | None = None
    #: Edges rebuilt by the pre-enumeration CAP repair (0 = no repair ran).
    cap_repaired_edges: int = 0

    @property
    def num_matches(self) -> int:
        """``|V_Δ|``."""
        return len(self.matches)


class BlenderEngine:
    """Mutable session state + timed CAP operations (strategy-facing API)."""

    def __init__(
        self,
        ctx: EngineContext,
        strategy: ConstructionStrategy,
        pruning: bool = True,
        force_large_upper: bool = False,
        resilience: ResilienceConfig | None = None,
        tracer: Tracer | NullTracer = NULL_TRACER,
    ) -> None:
        self.ctx = ctx
        self.strategy = strategy
        self.tracer = tracer
        self.query = BPHQuery()
        self.cap = CAPIndex(pruning_enabled=pruning)
        self.pool = EdgePool()
        self.force_large_upper = force_large_upper
        self.resilience = resilience
        #: Run-phase deadline; set by the facade around _run, checked at
        #: every cooperative checkpoint (pool drain, enumeration).
        self.deadline: Deadline | None = None
        self.formulation_compute = Stopwatch()
        self.run_drain = Stopwatch()
        self._phase = "formulation"  # or "run"

    # -- configuration shortcuts ------------------------------------------
    @property
    def cost_model(self) -> CostModel:
        """The ``t_avg``/``t_lat`` cost model (Definition 5.8)."""
        return self.ctx.cost_model

    @property
    def t_lat(self) -> float:
        """Minimum GUI latency assumed when an action carries none."""
        return self.ctx.cost_model.t_lat

    # -- timed primitives ---------------------------------------------------
    def _active_timer(self) -> Stopwatch:
        return self.run_drain if self._phase == "run" else self.formulation_compute

    def enter_run_phase(self) -> None:
        """Switch timing accrual from formulation latency to SRT."""
        self._phase = "run"

    @property
    def phase(self) -> str:
        """Current timing phase: ``"formulation"`` or ``"run"``."""
        return self._phase

    def checkpoint(self, context: str) -> None:
        """Cooperative cancellation point (no-op without a run deadline)."""
        if self.deadline is not None:
            self.deadline.checkpoint(context)

    def process_new_vertex(self, vertex_id: int, label: object) -> None:
        """Create the CAP level for a fresh query vertex (Alg. 2 lines 2-4)."""
        with self.tracer.span("cap.add_level", vertex=vertex_id):
            with self._active_timer():
                self.cap.add_level(vertex_id, self.ctx.candidates_for(label))

    def process_edge(self, edge: QueryEdge) -> float:
        """ProcessEdge (Algorithm 6): begin, populate, prune.  Returns cost.

        With a resilience config attached, transient component failures
        (anything that is not a :class:`ReproError`) are retried under its
        :class:`~repro.resilience.RetryPolicy`; exhausted retries surface
        as :class:`~repro.errors.RetryExhaustedError`.  Either way a failed
        attempt rolls the half-populated AIVS maps back, so the edge is
        never left half-processed.
        """
        start = now()
        with self.tracer.span("cap.process_edge", edge=str(edge.key)):
            with self._active_timer():
                if self.resilience is not None:
                    self.resilience.retry.call(
                        self._process_edge_once,
                        edge,
                        deadline=self.deadline,
                        label=f"process_edge{edge.key}",
                    )
                else:
                    self._process_edge_once(edge)
        return now() - start

    def _process_edge_once(self, edge: QueryEdge) -> None:
        """One attempt at ProcessEdge, atomic w.r.t. the CAP index."""
        try:
            self.cap.begin_edge(edge.u, edge.v)
            populate_vertex_set(
                self.cap, self.ctx, edge, force_large_upper=self.force_large_upper
            )
            self.cap.finish_edge(edge.u, edge.v)
        except Exception:
            # Drop the partial AIVS maps: a retry (or a later Run-phase
            # rebuild) must start from a clean, unprocessed edge — a
            # half-populated AIVS would silently shrink V_Δ.
            self.cap.drop_edge(edge.u, edge.v)
            raise
        self.ctx.counters.edges_processed += 1

    def _process_pooled(self, edge: QueryEdge) -> None:
        """Process an edge taken from the pool; re-pool it on failure.

        The pool is the unit of crash consistency: an edge is either
        processed in the CAP or sitting in the pool — never lost.  That is
        what lets the Run phase (or the degradation ladder) account for
        every query edge after an arbitrary mid-stream failure.
        """
        self.pool.remove(edge.u, edge.v)
        try:
            self.process_edge(edge)
        except Exception:
            self.pool.insert(edge)
            raise

    def probe_pool(self, budget: TimeBudget) -> int:
        """Algorithm 10: drain pooled edges that fit in ``budget``.

        Returns how many edges were processed.  The budget shrinks with the
        real time spent, so an optimistic estimate cannot overdraw the idle
        window by more than one edge.
        """
        self.ctx.counters.pool_probes += 1
        processed = 0
        with self.tracer.span("pool.probe", budget=budget.limit) as span:
            while self.pool and not budget.exhausted:
                self.checkpoint("pool probe")
                entry = self.pool.min_edge(self.cap, self.cost_model)
                if entry is None:
                    break
                edge, estimated = entry
                if estimated > budget.remaining():
                    break  # still too expensive; await the next GUI action
                self._process_pooled(edge)
                processed += 1
            span.set(edges=processed)
        return processed

    def probe_one(self, remaining_seconds: float) -> int:
        """Process the single cheapest pooled edge if its estimate fits.

        The cross-session idle scheduler uses this instead of
        :meth:`probe_pool` so each pick spends exactly one edge and the
        fair-share priorities are re-evaluated between edges.  Returns the
        number of edges processed (0 or 1).
        """
        entry = self.pool.min_edge(self.cap, self.cost_model)
        if entry is None:
            return 0
        edge, estimated = entry
        if estimated > remaining_seconds:
            return 0
        self.ctx.counters.pool_probes += 1
        with self.tracer.span("pool.probe", donated=True) as span:
            self._process_pooled(edge)
            span.set(edges=1)
        return 1

    def drain_pool(self) -> int:
        """Process every pooled edge, cheapest (current T_est) first."""
        processed = 0
        # During formulation (IC's post-modification catch-up) this is
        # "pool.drain"; at the Run click it is the SRT's drain stage.
        name = "run.drain" if self._phase == "run" else "pool.drain"
        with self.tracer.span(name) as span:
            while self.pool:
                self.checkpoint("pool drain")
                entry = self.pool.min_edge(self.cap, self.cost_model)
                if entry is None:  # pragma: no cover - defensive
                    break
                edge, _ = entry
                self._process_pooled(edge)
                processed += 1
            span.set(edges=processed)
        return processed

    def after_modification(self) -> None:
        """Strategy-specific follow-up to a rollback (Section 6).

        IC never defers, so re-pooled edges are processed immediately; DI
        probes within one latency window; DR leaves them for Run.
        """
        if isinstance(self.strategy, ImmediateStrategy):
            self.drain_pool()
        elif isinstance(self.strategy, DeferToIdleStrategy):
            self.probe_pool(TimeBudget(self.t_lat))

    @property
    def cap_construction_seconds(self) -> float:
        """Total CAP build time regardless of where it was hidden."""
        return self.formulation_compute.elapsed + self.run_drain.elapsed


class Boomer:
    """Public facade: Algorithm 1's event loop plus result generation.

    Parameters
    ----------
    ctx:
        Preprocessed engine context (see :func:`repro.core.preprocessor.make_context`).
    strategy:
        ``"IC"`` / ``"DR"`` / ``"DI"`` or a :class:`ConstructionStrategy`.
    pruning:
        Disable to get the "No Pruning" ablation arm (Exp 2).
    force_large_upper:
        Route *all* PVS work through the PML all-pairs search — the
        "1-Strategy" arm of Exp 1.
    max_results:
        Cap on ``|V_Δ|`` enumeration (None = unbounded); truncation is
        reported on the result.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`.  When set,
        mid-stream component failures are absorbed (the session survives,
        the affected action is reported ``failed-deferred``), the Run
        phase is retried/deadline-bounded, and unrecoverable CAP failures
        degrade to the BU baseline instead of raising.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When set, the session emits
        the span taxonomy in ``docs/OBSERVABILITY.md`` (a ``session``
        root tiled by ``phase.formulation``/``phase.run``, with per-action
        and per-edge children).  Defaults to the free no-op tracer.
    batch_enabled:
        When False, every batched distance query (AIVS materialization,
        DetectPath pruning) is answered by the per-pair scalar loop
        instead of the oracle's vectorized kernels — the A/B arm of
        ``bench_distance_batch`` and the bit-identity tests.  Matches are
        identical either way; only speed differs.  ``None`` (the default)
        keeps whatever the context says, so a session harness can toggle
        the flag once on its ``EngineContext``.
    """

    def __init__(
        self,
        ctx: EngineContext,
        strategy: str | ConstructionStrategy = "DI",
        pruning: bool = True,
        force_large_upper: bool = False,
        max_results: int | None = None,
        auto_idle: bool = True,
        resilience: ResilienceConfig | None = None,
        tracer: Tracer | NullTracer | None = None,
        batch_enabled: bool | None = None,
    ) -> None:
        if isinstance(strategy, str):
            strategy = make_strategy(strategy)
        if batch_enabled is not None and ctx.batch_enabled != batch_enabled:
            # Same shared counters/oracle, only the dispatch flag differs.
            ctx = replace(ctx, batch_enabled=batch_enabled)
        self.resilience = resilience
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.engine = BlenderEngine(
            ctx,
            strategy,
            pruning=pruning,
            force_large_upper=force_large_upper,
            resilience=resilience,
            tracer=self.tracer,
        )
        self.max_results = max_results
        #: When True (standalone use), each apply() ends with an idle-probe
        #: whose budget is the action's leftover latency.  Timeline-driving
        #: callers (VisualSession) disable it and call probe_idle themselves
        #: with budgets derived from the virtual formulation clock.
        self.auto_idle = auto_idle
        self.action_reports: list[ActionReport] = []
        self.run_result: RunResult | None = None
        self.result_generation = Stopwatch()
        #: Context used for result generation; swapped to the fallback
        #: context when a degraded run's lower-bound checks must not touch
        #: the (possibly dead) session oracle.
        self._result_ctx: EngineContext = ctx
        #: Messages of every failure the resilience layer absorbed.
        self.absorbed_failures: list[str] = []
        #: Session root span + the formulation phase child, opened lazily
        #: at the first action so the trace starts with real work.
        self._session_span = None
        self._formulation_span = None
        #: Counter values at session start: contexts are often shared
        #: across sessions (experiment loops), so the global metrics must
        #: only absorb this session's delta, not the cumulative totals.
        self._counters_baseline = ctx.counters.snapshot()

    # -- convenience passthroughs ---------------------------------------------
    @property
    def query(self) -> BPHQuery:
        """The query as formulated so far."""
        return self.engine.query

    @property
    def cap(self) -> CAPIndex:
        """The live CAP index."""
        return self.engine.cap

    @property
    def strategy_name(self) -> str:
        """Short name of the active construction strategy."""
        return self.engine.strategy.name

    # -- session span lifecycle ----------------------------------------------
    def _open_session_spans(self) -> None:
        """Open the ``session`` root + ``phase.formulation`` child (once)."""
        if self._session_span is None and self.tracer.enabled:
            self._session_span = self.tracer.start(
                "session", strategy=self.engine.strategy.name
            )
            self._formulation_span = self.tracer.start("phase.formulation")

    def _close_session_spans(self, error: str | None = None) -> None:
        """Close the root (and any phase still open) so the tree balances."""
        if self._formulation_span is not None:
            self._formulation_span.close(error=error)
            self._formulation_span = None
        if self._session_span is not None:
            self._session_span.close(error=error)
            self._session_span = None

    # -- Algorithm 1 event loop ---------------------------------------------
    def apply(self, action: Action) -> ActionReport:
        """Apply one GUI action; returns what the engine did with it."""
        if self.run_result is not None:
            raise ActionError("query already executed; start a new session")
        if self.engine.phase == "run":
            # Run was attempted and failed terminally (deadline blown,
            # degradation refused or exhausted): timing accrual is already
            # in SRT mode, so further formulation actions would corrupt the
            # session's books.  Callers must start a fresh session.
            raise CAPStateError(
                "session is in a terminal failed-Run state; "
                "no further actions are accepted — start a new session"
            )
        self._open_session_spans()
        if isinstance(action, Run):
            # Formulation ends here: the phases tile the session root.
            if self._formulation_span is not None:
                self._formulation_span.close()
                self._formulation_span = None
            run_span = self.tracer.start("phase.run")
            try:
                self._run()
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                run_span.close(error=message)
                self._close_session_spans(error=message)
                raise
            run_span.set(
                matches=self.run_result.num_matches,
                degraded=self.run_result.degraded,
            ).close()
            self._close_session_spans()
            report = ActionReport(
                action=action,
                processed_now=True,
                compute_seconds=self.run_result.srt_seconds,
                status="degraded" if self.run_result.degraded else "ok",
                error=self.run_result.degradation_reason,
            )
            self.action_reports.append(report)
            return report

        engine = self.engine
        span = self.tracer.start(_ACTION_SPANS.get(type(action), "action.other"))
        start = now()
        modification: ModificationReport | None = None
        processed_now = True
        status = "ok"
        error: str | None = None

        try:
            if isinstance(action, NewVertex):
                span.set(vertex=action.vertex_id)
                engine.query.add_vertex(action.label, vertex_id=action.vertex_id)
                engine.process_new_vertex(action.vertex_id, action.label)
            elif isinstance(action, NewEdge):
                span.set(edge=f"({action.u}, {action.v})")
                edge = engine.query.add_edge(
                    action.u, action.v, lower=action.lower, upper=action.upper
                )
                processed_now = engine.strategy.on_new_edge(engine, edge)
            elif isinstance(action, ModifyBounds):
                span.set(edge=f"({action.u}, {action.v})")
                modification = modify_bounds(
                    engine, action.u, action.v, action.lower, action.upper
                )
            elif isinstance(action, DeleteEdge):
                span.set(edge=f"({action.u}, {action.v})")
                modification = delete_edge(engine, action.u, action.v)
            else:
                raise ActionError(f"unsupported action {action!r}")
        except Exception as exc:
            if not self._absorbable(exc):
                span.close(error=f"{type(exc).__name__}: {exc}")
                raise
            self._repair_after_action_failure(action)
            processed_now = False
            status = "failed-deferred"
            error = f"{type(exc).__name__}: {exc}"
            self.absorbed_failures.append(error)

        spent = now() - start
        probe_seconds = 0.0
        if self.auto_idle:
            # Leftover latency of this user step feeds Defer-to-Idle's probe.
            latency = (
                action.latency_after
                if action.latency_after is not None
                else engine.t_lat
            )
            probe_seconds = self.probe_idle(max(latency - spent, 0.0))

        span.set(deferred=not processed_now, status=status).close(error=error)
        report = ActionReport(
            action=action,
            processed_now=processed_now,
            compute_seconds=spent,
            idle_probe_seconds=probe_seconds,
            modification=modification,
            status=status,
            error=error,
        )
        self.action_reports.append(report)
        return report

    def _absorbable(self, exc: Exception) -> bool:
        """Is this mid-formulation failure one the session can survive?

        Component crashes (non-``ReproError``) and exhausted retries are
        absorbed — the affected CAP work is deferrable to Run, where the
        degradation ladder has the final word.  Protocol errors
        (:class:`ActionError`, bad bounds, ...) stay loud: they are caller
        bugs, and hiding them would mask real defects.
        """
        if self.resilience is None or not self.resilience.absorb_action_failures:
            return False
        if isinstance(exc, RetryExhaustedError):
            return True
        return not isinstance(exc, ReproError)

    def _repair_after_action_failure(self, action: Action) -> None:
        """Restore the processed-or-pooled invariant after an absorbed failure.

        * NewEdge: the query edge exists but CAP work died — park it in the
          pool so Run (or the BU ladder) still accounts for it.
        * Modify/Delete on a processed edge: the entry may now disagree
          with the new bounds — quarantine its component (Algorithm 5),
          which resets levels and re-pools the edges without re-processing.
        """
        engine = self.engine
        if isinstance(action, NewEdge):
            if (
                engine.query.has_edge(action.u, action.v)
                and not engine.pool.contains(action.u, action.v)
                and not engine.cap.is_processed(action.u, action.v)
            ):
                engine.pool.insert(engine.query.edge_between(action.u, action.v))
        elif isinstance(action, (ModifyBounds, DeleteEdge)):
            if engine.query.has_edge(action.u, action.v) and engine.cap.is_processed(
                action.u, action.v
            ):
                quarantine_edge(engine, action.u, action.v)

    def probe_idle(self, idle_seconds: float) -> float:
        """Give the strategy ``idle_seconds`` of leftover GUI latency.

        Only Defer-to-Idle acts on it (Algorithm 4's pool probe); returns
        the compute time actually consumed.  With a resilience config,
        failures during the probe are absorbed — the edge under
        construction returns to the pool and the session carries on.
        """
        if idle_seconds <= 0.0:
            return 0.0
        start = now()
        try:
            self.engine.strategy.on_idle(self.engine, idle_seconds)
        except Exception as exc:
            if not self._absorbable(exc):
                raise
            self.absorbed_failures.append(f"{type(exc).__name__}: {exc}")
        return now() - start

    def execute_stream(self, actions: ActionStream | list[Action]) -> RunResult:
        """Apply a whole stream (must end with Run); returns the run result."""
        stream = actions if isinstance(actions, ActionStream) else ActionStream(actions)
        while stream.has_pending:
            self.apply(stream.consume())
        if self.run_result is None:
            raise SessionError("action stream did not contain a Run action")
        return self.run_result

    def _run(self) -> None:
        """The Run click: finish CAP, enumerate V_Δ, record the SRT.

        With a resilience config: the whole phase honors the configured
        deadline (a blown budget *raises* — degrading would only take
        longer), the CAP index is optionally audited and repaired before
        enumeration, and an unrecoverable CAP path walks the BU
        degradation ladder instead of failing the query.
        """
        engine = self.engine
        config = self.resilience
        engine.query.validate()
        engine.enter_run_phase()

        deadline: Deadline | None = None
        if config is not None:
            deadline = Deadline(config.deadline_seconds, label="Run phase")
            engine.deadline = deadline

        srt_start = now()
        degraded = False
        degradation_reason: str | None = None
        fallback: str | None = None
        repaired_edges = 0
        try:
            try:
                engine.drain_pool()
                if config is not None and config.verify_cap_on_run:
                    with self.tracer.span("run.verify_cap") as vspan:
                        repaired_edges = self._verify_cap()
                        vspan.set(repaired_edges=repaired_edges)
                drain_seconds = now() - srt_start

                enum_start = now()
                with self.tracer.span("run.enumerate") as espan:
                    matches = partial_vertex_sets(
                        engine.query,
                        engine.cap,
                        matching_order=engine.query.matching_order,
                        max_results=self.max_results,
                        deadline=deadline,
                    )
                    espan.set(matches=len(matches))
                enumeration_seconds = now() - enum_start
            except DeadlineExceededError:
                raise  # never degrade past the deadline: BU is strictly slower
            except Exception as exc:
                if config is None or not config.degrade_to_bu or not self._degradable(exc):
                    raise
                drain_seconds = now() - srt_start
                enum_start = now()
                with self.tracer.span(
                    "run.degrade", cause=f"{type(exc).__name__}: {exc}"
                ) as dspan:
                    matches, fallback = self._degrade(exc, deadline)
                    dspan.set(rung=fallback, matches=len(matches))
                enumeration_seconds = now() - enum_start
                degraded = True
                degradation_reason = f"{type(exc).__name__}: {exc}"
                self.absorbed_failures.append(degradation_reason)
        except Exception:
            record_run_counters(
                self._counters_delta(engine.ctx.counters.snapshot()),
                srt_seconds=now() - srt_start,
                cap_construction_seconds=engine.cap_construction_seconds,
                outcome="failed",
            )
            raise
        finally:
            engine.deadline = None

        self.run_result = RunResult(
            matches=matches,
            srt_seconds=now() - srt_start,
            run_drain_seconds=drain_seconds,
            enumeration_seconds=enumeration_seconds,
            cap_construction_seconds=engine.cap_construction_seconds,
            formulation_compute_seconds=engine.formulation_compute.elapsed,
            cap_size=engine.cap.size_report(),
            cap_peak_size=engine.cap.peak_total,
            counters=engine.ctx.counters.snapshot(),
            strategy=engine.strategy.name,
            degraded=degraded,
            degradation_reason=degradation_reason,
            fallback=fallback,
            cap_repaired_edges=repaired_edges,
        )
        record_run_counters(
            self._counters_delta(self.run_result.counters),
            srt_seconds=self.run_result.srt_seconds,
            cap_construction_seconds=self.run_result.cap_construction_seconds,
            outcome="degraded" if degraded else "ok",
            fallback=fallback,
        )

    def _counters_delta(self, snapshot: dict[str, int]) -> dict[str, int]:
        """This session's share of the (possibly shared) context counters."""
        return {
            key: value - self._counters_baseline.get(key, 0)
            for key, value in snapshot.items()
        }

    @staticmethod
    def _degradable(exc: Exception) -> bool:
        """Failures that feed the ladder vs. caller bugs that must raise."""
        if isinstance(exc, (RetryExhaustedError, CAPCorruptionError)):
            return True  # resilience layer's own verdicts on dead components
        return not isinstance(exc, ReproError)  # external component crash

    def _verify_cap(self) -> int:
        """Pre-enumeration audit (+ repair if dirty); returns edges rebuilt."""
        engine = self.engine
        checker = CAPInvariantChecker(sample_pairs=self.resilience.audit_sample_pairs)
        report = checker.audit(engine.cap, engine.query, engine.ctx)
        if report.clean:
            return 0
        repair = checker.repair(engine, report)  # raises CAPCorruptionError if hopeless
        return repair.rebuilt_edges

    def _degrade(
        self, cause: Exception, deadline: Deadline | None
    ) -> tuple[PartialMatches, str]:
        """Walk the BU degradation ladder; returns (matches, rung name).

        Rung 2 ("bu-oracle") reuses the session oracle — survives arbitrary
        CAP damage.  Rung 3 ("bu-bfs") builds a fresh BFS oracle from the
        raw graph — survives a permanently dead oracle too.  Both produce
        the same ``V_Δ`` as the CAP path (deferral neutrality), so only
        latency is traded, never correctness.  The BU run inherits whatever
        remains of the Run deadline; a timed-out BU converts back into
        :class:`DeadlineExceededError`.
        """
        # Lazy import: core -> baseline is a deliberate, contained layer
        # inversion that only the degraded path pays for.
        from repro.baseline.bu import BoomerUnaware
        from repro.indexing.oracle import shared_bfs_oracle

        engine = self.engine
        timeout: float | None = None
        if deadline is not None and deadline.limit is not None:
            timeout = deadline.remaining()

        rungs: list[tuple[str, EngineContext]] = [("bu-oracle", engine.ctx)]
        rungs.append(
            ("bu-bfs", replace(engine.ctx, oracle=shared_bfs_oracle(engine.ctx.graph)))
        )

        last_error: Exception = cause
        for name, ctx in rungs:
            bu = BoomerUnaware(ctx, timeout_seconds=timeout, max_results=self.max_results)
            try:
                result = bu.evaluate(engine.query)
            except ReproError:
                raise  # protocol errors are not the oracle's fault
            except Exception as exc:  # this rung's oracle is broken too
                last_error = exc
                continue
            if result.timed_out:
                raise DeadlineExceededError(
                    f"BU fallback ({name})",
                    limit=deadline.limit if deadline is not None else None,
                )
            self._result_ctx = ctx  # lower-bound JIT checks use the live oracle
            return (
                PartialMatches(
                    matches=result.matches,
                    order=result.order,
                    truncated=result.truncated,
                    extras={"fallback": name, "bu_srt_seconds": result.srt_seconds},
                ),
                name,
            )
        raise DegradedModeError(
            f"every degradation rung failed after {type(cause).__name__}: {cause}"
        ) from last_error

    # -- result generation (Section 5.4) ------------------------------------
    def visualize(self, match: dict[int, int]) -> ResultSubgraph | None:
        """Lower-bound check + path materialization for one ``V_P``.

        Returns None when the match fails some lower bound (it is then not
        a bounded 1-1 p-hom match and is not displayed).
        """
        if self.run_result is None:
            raise SessionError("call apply(Run()) before visualizing results")
        with self.tracer.span("result.visualize") as span, self.result_generation:
            # _result_ctx is the session context normally; after a degraded
            # run it is the fallback rung's context, so JIT lower-bound
            # checks never touch a dead oracle.
            try:
                subgraph = filter_by_lower_bound(
                    match, self.engine.query, self._result_ctx
                )
            except Exception as exc:
                if not self._absorbable(exc):
                    raise
                # The oracle died *after* Run (CAP construction may never
                # have needed it): fail result generation over to the
                # shared BFS oracle — exact distances, so validation is
                # unchanged, and repeated failures reuse its warm cache.
                from repro.indexing.oracle import shared_bfs_oracle

                self.absorbed_failures.append(f"{type(exc).__name__}: {exc}")
                self._result_ctx = replace(
                    self.engine.ctx, oracle=shared_bfs_oracle(self.engine.ctx.graph)
                )
                subgraph = filter_by_lower_bound(
                    match, self.engine.query, self._result_ctx
                )
            span.set(valid=subgraph is not None)
            return subgraph

    def iter_results(self):
        """Lazily yield validated result subgraphs, one per Results-Panel step.

        Mirrors the paper's iteration model: the lower-bound check runs
        just-in-time per displayed result, so the first results appear
        without paying for validating the whole ``V_Δ``.
        """
        if self.run_result is None:
            raise SessionError("call apply(Run()) before fetching results")
        for match in self.run_result.matches:
            subgraph = self.visualize(match)
            if subgraph is not None:
                yield subgraph

    def results(self, limit: int | None = None) -> list[ResultSubgraph]:
        """All (or the first ``limit``) fully validated result subgraphs."""
        out: list[ResultSubgraph] = []
        for subgraph in self.iter_results():
            out.append(subgraph)
            if limit is not None and len(out) >= limit:
                break
        return out
