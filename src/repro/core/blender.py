"""The BOOMER query blender (Algorithm 1) — engine + public facade.

:class:`BlenderEngine` owns the mutable state of one formulation session
(query, CAP index, edge pool) and the timed primitives strategies invoke.
:class:`Boomer` is the public API: feed it GUI actions (or whole action
streams) and it interleaves CAP construction with formulation, completes
the index at Run, enumerates the upper-bound matches ``V_Δ``, and filters
by lower bounds just-in-time as results are visualized.

Timing model
------------
Two wall-clock accumulators:

* ``formulation_compute`` — CAP work done *during* formulation, hidden
  inside GUI latency (the user never waits for it);
* the **SRT** — system response time — everything between the Run click
  and the availability of ``V_Δ``: draining the pool of deferred edges plus
  enumeration.  This is exactly what the paper's Figures 5-7 and 11 plot.

CAP *construction time* (Figures 8/10) is the sum of CAP work wherever it
happened: formulation compute + run-phase pool drain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import (
    Action,
    ActionStream,
    DeleteEdge,
    ModifyBounds,
    NewEdge,
    NewVertex,
    Run,
)
from repro.core.cap import CAPIndex, CAPSizeReport
from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.core.edge_pool import EdgePool
from repro.core.enumerate import PartialMatches, partial_vertex_sets
from repro.core.lowerbound import ResultSubgraph, filter_by_lower_bound
from repro.core.modification import ModificationReport, delete_edge, modify_bounds
from repro.core.pvs import populate_vertex_set
from repro.core.query import BPHQuery, QueryEdge
from repro.core.strategies import (
    ConstructionStrategy,
    DeferToIdleStrategy,
    ImmediateStrategy,
    make_strategy,
)
from repro.errors import ActionError, SessionError
from repro.utils.timing import Stopwatch, TimeBudget, now

__all__ = ["BlenderEngine", "Boomer", "ActionReport", "RunResult"]


@dataclass
class ActionReport:
    """What happened when one GUI action was applied."""

    action: Action
    processed_now: bool  # for NewEdge: processed inline vs pooled
    compute_seconds: float  # engine compute triggered by this action
    idle_probe_seconds: float = 0.0  # extra compute done in leftover latency
    modification: ModificationReport | None = None


@dataclass
class RunResult:
    """Everything produced by the Run click."""

    matches: PartialMatches  # V_Δ (upper-bound constrained)
    srt_seconds: float  # Run click -> V_Δ available
    run_drain_seconds: float  # pool-drain share of the SRT
    enumeration_seconds: float  # DFS share of the SRT
    cap_construction_seconds: float  # formulation compute + run drain
    formulation_compute_seconds: float
    cap_size: CAPSizeReport
    cap_peak_size: int  # largest transient size (Figures 9/13/17)
    counters: dict[str, int]
    strategy: str

    @property
    def num_matches(self) -> int:
        """``|V_Δ|``."""
        return len(self.matches)


class BlenderEngine:
    """Mutable session state + timed CAP operations (strategy-facing API)."""

    def __init__(
        self,
        ctx: EngineContext,
        strategy: ConstructionStrategy,
        pruning: bool = True,
        force_large_upper: bool = False,
    ) -> None:
        self.ctx = ctx
        self.strategy = strategy
        self.query = BPHQuery()
        self.cap = CAPIndex(pruning_enabled=pruning)
        self.pool = EdgePool()
        self.force_large_upper = force_large_upper
        self.formulation_compute = Stopwatch()
        self.run_drain = Stopwatch()
        self._phase = "formulation"  # or "run"

    # -- configuration shortcuts ------------------------------------------
    @property
    def cost_model(self) -> CostModel:
        """The ``t_avg``/``t_lat`` cost model (Definition 5.8)."""
        return self.ctx.cost_model

    @property
    def t_lat(self) -> float:
        """Minimum GUI latency assumed when an action carries none."""
        return self.ctx.cost_model.t_lat

    # -- timed primitives ---------------------------------------------------
    def _active_timer(self) -> Stopwatch:
        return self.run_drain if self._phase == "run" else self.formulation_compute

    def enter_run_phase(self) -> None:
        """Switch timing accrual from formulation latency to SRT."""
        self._phase = "run"

    def process_new_vertex(self, vertex_id: int, label: object) -> None:
        """Create the CAP level for a fresh query vertex (Alg. 2 lines 2-4)."""
        with self._active_timer():
            self.cap.add_level(vertex_id, self.ctx.candidates_for(label))

    def process_edge(self, edge: QueryEdge) -> float:
        """ProcessEdge (Algorithm 6): begin, populate, prune.  Returns cost."""
        start = now()
        with self._active_timer():
            self.cap.begin_edge(edge.u, edge.v)
            populate_vertex_set(
                self.cap, self.ctx, edge, force_large_upper=self.force_large_upper
            )
            self.cap.finish_edge(edge.u, edge.v)
            self.ctx.counters.edges_processed += 1
        return now() - start

    def probe_pool(self, budget: TimeBudget) -> int:
        """Algorithm 10: drain pooled edges that fit in ``budget``.

        Returns how many edges were processed.  The budget shrinks with the
        real time spent, so an optimistic estimate cannot overdraw the idle
        window by more than one edge.
        """
        self.ctx.counters.pool_probes += 1
        processed = 0
        while self.pool and not budget.exhausted:
            entry = self.pool.min_edge(self.cap, self.cost_model)
            if entry is None:
                break
            edge, estimated = entry
            if estimated > budget.remaining():
                break  # still too expensive; await the next GUI action
            self.pool.remove(edge.u, edge.v)
            self.process_edge(edge)
            processed += 1
        return processed

    def drain_pool(self) -> int:
        """Process every pooled edge, cheapest (current T_est) first."""
        processed = 0
        while self.pool:
            entry = self.pool.min_edge(self.cap, self.cost_model)
            if entry is None:  # pragma: no cover - defensive
                break
            edge, _ = entry
            self.pool.remove(edge.u, edge.v)
            self.process_edge(edge)
            processed += 1
        return processed

    def after_modification(self) -> None:
        """Strategy-specific follow-up to a rollback (Section 6).

        IC never defers, so re-pooled edges are processed immediately; DI
        probes within one latency window; DR leaves them for Run.
        """
        if isinstance(self.strategy, ImmediateStrategy):
            self.drain_pool()
        elif isinstance(self.strategy, DeferToIdleStrategy):
            self.probe_pool(TimeBudget(self.t_lat))

    @property
    def cap_construction_seconds(self) -> float:
        """Total CAP build time regardless of where it was hidden."""
        return self.formulation_compute.elapsed + self.run_drain.elapsed


class Boomer:
    """Public facade: Algorithm 1's event loop plus result generation.

    Parameters
    ----------
    ctx:
        Preprocessed engine context (see :func:`repro.core.preprocessor.make_context`).
    strategy:
        ``"IC"`` / ``"DR"`` / ``"DI"`` or a :class:`ConstructionStrategy`.
    pruning:
        Disable to get the "No Pruning" ablation arm (Exp 2).
    force_large_upper:
        Route *all* PVS work through the PML all-pairs search — the
        "1-Strategy" arm of Exp 1.
    max_results:
        Cap on ``|V_Δ|`` enumeration (None = unbounded); truncation is
        reported on the result.
    """

    def __init__(
        self,
        ctx: EngineContext,
        strategy: str | ConstructionStrategy = "DI",
        pruning: bool = True,
        force_large_upper: bool = False,
        max_results: int | None = None,
        auto_idle: bool = True,
    ) -> None:
        if isinstance(strategy, str):
            strategy = make_strategy(strategy)
        self.engine = BlenderEngine(
            ctx,
            strategy,
            pruning=pruning,
            force_large_upper=force_large_upper,
        )
        self.max_results = max_results
        #: When True (standalone use), each apply() ends with an idle-probe
        #: whose budget is the action's leftover latency.  Timeline-driving
        #: callers (VisualSession) disable it and call probe_idle themselves
        #: with budgets derived from the virtual formulation clock.
        self.auto_idle = auto_idle
        self.action_reports: list[ActionReport] = []
        self.run_result: RunResult | None = None
        self.result_generation = Stopwatch()

    # -- convenience passthroughs ---------------------------------------------
    @property
    def query(self) -> BPHQuery:
        """The query as formulated so far."""
        return self.engine.query

    @property
    def cap(self) -> CAPIndex:
        """The live CAP index."""
        return self.engine.cap

    @property
    def strategy_name(self) -> str:
        """Short name of the active construction strategy."""
        return self.engine.strategy.name

    # -- Algorithm 1 event loop ---------------------------------------------
    def apply(self, action: Action) -> ActionReport:
        """Apply one GUI action; returns what the engine did with it."""
        if self.run_result is not None:
            raise ActionError("query already executed; start a new session")
        if isinstance(action, Run):
            self._run()
            report = ActionReport(
                action=action,
                processed_now=True,
                compute_seconds=self.run_result.srt_seconds,
            )
            self.action_reports.append(report)
            return report

        engine = self.engine
        start = now()
        modification: ModificationReport | None = None
        processed_now = True

        if isinstance(action, NewVertex):
            engine.query.add_vertex(action.label, vertex_id=action.vertex_id)
            engine.process_new_vertex(action.vertex_id, action.label)
        elif isinstance(action, NewEdge):
            edge = engine.query.add_edge(
                action.u, action.v, lower=action.lower, upper=action.upper
            )
            processed_now = engine.strategy.on_new_edge(engine, edge)
        elif isinstance(action, ModifyBounds):
            modification = modify_bounds(
                engine, action.u, action.v, action.lower, action.upper
            )
        elif isinstance(action, DeleteEdge):
            modification = delete_edge(engine, action.u, action.v)
        else:
            raise ActionError(f"unsupported action {action!r}")

        spent = now() - start
        probe_seconds = 0.0
        if self.auto_idle:
            # Leftover latency of this user step feeds Defer-to-Idle's probe.
            latency = (
                action.latency_after
                if action.latency_after is not None
                else engine.t_lat
            )
            probe_seconds = self.probe_idle(max(latency - spent, 0.0))

        report = ActionReport(
            action=action,
            processed_now=processed_now,
            compute_seconds=spent,
            idle_probe_seconds=probe_seconds,
            modification=modification,
        )
        self.action_reports.append(report)
        return report

    def probe_idle(self, idle_seconds: float) -> float:
        """Give the strategy ``idle_seconds`` of leftover GUI latency.

        Only Defer-to-Idle acts on it (Algorithm 4's pool probe); returns
        the compute time actually consumed.
        """
        if idle_seconds <= 0.0:
            return 0.0
        start = now()
        self.engine.strategy.on_idle(self.engine, idle_seconds)
        return now() - start

    def execute_stream(self, actions: ActionStream | list[Action]) -> RunResult:
        """Apply a whole stream (must end with Run); returns the run result."""
        stream = actions if isinstance(actions, ActionStream) else ActionStream(actions)
        while stream.has_pending:
            self.apply(stream.consume())
        if self.run_result is None:
            raise SessionError("action stream did not contain a Run action")
        return self.run_result

    def _run(self) -> None:
        """The Run click: finish CAP, enumerate V_Δ, record the SRT."""
        engine = self.engine
        engine.query.validate()
        engine.enter_run_phase()

        srt_start = now()
        engine.drain_pool()
        drain_seconds = now() - srt_start

        enum_start = now()
        matches = partial_vertex_sets(
            engine.query,
            engine.cap,
            matching_order=engine.query.matching_order,
            max_results=self.max_results,
        )
        enumeration_seconds = now() - enum_start

        self.run_result = RunResult(
            matches=matches,
            srt_seconds=now() - srt_start,
            run_drain_seconds=drain_seconds,
            enumeration_seconds=enumeration_seconds,
            cap_construction_seconds=engine.cap_construction_seconds,
            formulation_compute_seconds=engine.formulation_compute.elapsed,
            cap_size=engine.cap.size_report(),
            cap_peak_size=engine.cap.peak_total,
            counters=engine.ctx.counters.snapshot(),
            strategy=engine.strategy.name,
        )

    # -- result generation (Section 5.4) ------------------------------------
    def visualize(self, match: dict[int, int]) -> ResultSubgraph | None:
        """Lower-bound check + path materialization for one ``V_P``.

        Returns None when the match fails some lower bound (it is then not
        a bounded 1-1 p-hom match and is not displayed).
        """
        if self.run_result is None:
            raise SessionError("call apply(Run()) before visualizing results")
        with self.result_generation:
            return filter_by_lower_bound(match, self.engine.query, self.engine.ctx)

    def iter_results(self):
        """Lazily yield validated result subgraphs, one per Results-Panel step.

        Mirrors the paper's iteration model: the lower-bound check runs
        just-in-time per displayed result, so the first results appear
        without paying for validating the whole ``V_Δ``.
        """
        if self.run_result is None:
            raise SessionError("call apply(Run()) before fetching results")
        for match in self.run_result.matches:
            subgraph = self.visualize(match)
            if subgraph is not None:
                yield subgraph

    def results(self, limit: int | None = None) -> list[ResultSubgraph]:
        """All (or the first ``limit``) fully validated result subgraphs."""
        out: list[ResultSubgraph] = []
        for subgraph in self.iter_results():
            out.append(subgraph)
            if limit is not None and len(out) >= limit:
                break
        return out
