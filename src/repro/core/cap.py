"""The CAP (Compact Adaptive Path) index — Definition 5.1 of the paper.

The CAP index is a ``|V_B|``-level undirected graph over *data* vertices:

* level ``q`` holds the candidate set ``V_q`` — data vertices whose label
  matches query vertex ``q`` and that have not (yet) been pruned;
* for every *processed* query edge ``(q_i, q_j)``, each candidate
  ``v ∈ V_qi`` stores its **adjacent indexed vertex set** (AIVS)
  ``V_qi^qj(v)`` — the candidates of ``q_j`` reachable from ``v`` within
  ``e.upper`` hops in the data graph.

Only *upper* bounds shape the index; lower bounds are checked just-in-time
at visualization (Section 5.4).  A candidate whose AIVS for some processed
incident edge is empty is *isolated* and pruned, recursively (Algorithm 7),
which is what keeps the index "compact in practice" despite the quadratic
worst case (Lemma 5.2).

The index also tracks which query edges are processed vs still pooled;
the connected components of the *processed* edge set are what query
modification rolls back (Section 6 / Algorithm 5).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.query import BPHQuery, canonical_edge
from repro.errors import CAPStateError

__all__ = ["CAPIndex", "CAPSizeReport"]


@dataclass(frozen=True)
class CAPSizeReport:
    """Size accounting per Lemma 5.2: Σ|V_q| vertex entries + ΣAIVS pairs."""

    num_levels: int
    vertex_entries: int  # Σ_q |V_q|
    aivs_pairs: int  # Σ_(qi,qj) Σ_v |V_qi^qj(v)|  (directed count)

    @property
    def total(self) -> int:
        """Vertex entries plus (undirected) AIVS edge count."""
        return self.vertex_entries + self.aivs_pairs // 2


class CAPIndex:
    """Online, adaptive index over candidate matches of a (partial) BPH query.

    The index is owned and driven by the blender engine; its public surface
    is also used directly by the enumeration and modification modules.

    Parameters
    ----------
    pruning_enabled:
        When False, isolated candidates are *not* removed (the "No Pruning"
        arm of Exp 2).  The index stays correct — enumeration intersects
        AIVS sets — just bigger and slower.
    """

    def __init__(self, pruning_enabled: bool = True) -> None:
        self.pruning_enabled = pruning_enabled
        #: level -> candidate set V_q (data-vertex ids)
        self._candidates: dict[int, set[int]] = {}
        #: directed AIVS maps: (qi, qj) -> {v_i -> set(v_j)}.  Both
        #: directions of a processed edge are materialized.
        self._aivs: dict[tuple[int, int], dict[int, set[int]]] = {}
        #: canonical (qi, qj) keys of processed query edges
        self._processed: set[tuple[int, int]] = set()
        #: count of prune steps performed (Lemma 5.6 instrumentation)
        self.prune_steps = 0
        #: largest total size (Lemma 5.2 accounting) the index ever reached.
        #: The *final* index is a strategy-independent fixpoint, but the
        #: transient size is not: processing an expensive edge before
        #: pruning materializes pairs a deferred processing never creates.
        #: This is the quantity Figures 9/13/17 compare.
        self.peak_total = 0

    # ------------------------------------------------------------------
    # Levels (query vertices)
    # ------------------------------------------------------------------
    def add_level(self, q: int, candidates: Iterable[int]) -> None:
        """Create level ``q`` holding ``candidates`` (Algorithm 2, lines 3-4)."""
        if q in self._candidates:
            raise CAPStateError(f"CAP level for query vertex {q} already exists")
        self._candidates[q] = set(int(v) for v in candidates)
        self._note_peak()

    def remove_level(self, q: int) -> None:
        """Drop level ``q`` and all its AIVS maps (used by rollback)."""
        if q not in self._candidates:
            raise CAPStateError(f"CAP has no level for query vertex {q}")
        del self._candidates[q]
        for key in [k for k in self._aivs if q in k]:
            del self._aivs[key]
        self._processed = {e for e in self._processed if q not in e}

    def has_level(self, q: int) -> bool:
        """True iff level ``q`` exists."""
        return q in self._candidates

    def levels(self) -> list[int]:
        """Query-vertex ids that have levels."""
        return list(self._candidates)

    def candidates(self, q: int) -> set[int]:
        """The live candidate set ``V_q`` (the actual set — do not mutate)."""
        try:
            return self._candidates[q]
        except KeyError:
            raise CAPStateError(f"CAP has no level for query vertex {q}") from None

    def candidate_count(self, q: int) -> int:
        """``|V_q|`` for the deferment cost model."""
        return len(self.candidates(q))

    def reset_level(self, q: int, candidates: Iterable[int]) -> None:
        """Replace level ``q``'s candidates (rollback re-retrieval, Alg. 5)."""
        if q not in self._candidates:
            raise CAPStateError(f"CAP has no level for query vertex {q}")
        self._candidates[q] = set(int(v) for v in candidates)
        for key in [k for k in self._aivs if q in k]:
            del self._aivs[key]
        self._processed = {e for e in self._processed if q not in e}

    # ------------------------------------------------------------------
    # Edges / AIVS
    # ------------------------------------------------------------------
    def begin_edge(self, qi: int, qj: int) -> None:
        """Materialize empty AIVS maps for edge ``(qi, qj)``.

        Mirrors Algorithm 6 lines 1-7: every current candidate starts with
        an empty adjacent indexed vertex set, to be populated by PVS.
        """
        for q in (qi, qj):
            if q not in self._candidates:
                raise CAPStateError(
                    f"cannot process edge ({qi}, {qj}): level {q} missing"
                )
        key = canonical_edge(qi, qj)
        if key in self._processed:
            raise CAPStateError(f"query edge {key} was already processed")
        self._aivs[(qi, qj)] = {v: set() for v in self._candidates[qi]}
        self._aivs[(qj, qi)] = {v: set() for v in self._candidates[qj]}

    def add_pair(self, qi: int, qj: int, vi: int, vj: int) -> None:
        """Record that ``(vi, vj)`` satisfies the upper bound of ``(qi, qj)``."""
        self._aivs[(qi, qj)][vi].add(vj)
        self._aivs[(qj, qi)][vj].add(vi)

    def add_pairs(
        self, qi: int, qj: int, pairs: Iterable[tuple[int, int]]
    ) -> int:
        """Bulk :meth:`add_pair` for a batched PVS; returns the pair count.

        The forward/reverse maps are resolved once instead of per pair —
        the difference matters when the large-upper search hands over the
        whole edge's AIVS in one call.
        """
        forward = self._aivs[(qi, qj)]
        reverse = self._aivs[(qj, qi)]
        count = 0
        for vi, vj in pairs:
            forward[vi].add(vj)
            reverse[vj].add(vi)
            count += 1
        return count

    def finish_edge(self, qi: int, qj: int) -> list[int]:
        """Mark edge processed and prune isolated candidates.

        Returns the list of data vertices pruned (possibly across several
        levels, because pruning cascades).  With pruning disabled, marks
        the edge processed and returns ``[]``.
        """
        key = canonical_edge(qi, qj)
        if (qi, qj) not in self._aivs:
            raise CAPStateError(f"edge {key} was not begun")
        self._processed.add(key)
        self._note_peak()
        if not self.pruning_enabled:
            return []
        removed: list[int] = []
        # Algorithm 6 lines 9-18: candidates isolated w.r.t. the new edge.
        for q, other in ((qi, qj), (qj, qi)):
            aivs = self._aivs[(q, other)]
            isolated = [v for v in self._candidates[q] if not aivs.get(v)]
            for v in isolated:
                if v in self._candidates[q]:
                    self._prune(q, v, removed)
        return removed

    def is_processed(self, qi: int, qj: int) -> bool:
        """True iff the query edge ``(qi, qj)`` has been processed."""
        return canonical_edge(qi, qj) in self._processed

    def processed_edges(self) -> set[tuple[int, int]]:
        """Canonical keys of all processed query edges (copy)."""
        return set(self._processed)

    def drop_edge(self, qi: int, qj: int) -> None:
        """Forget a processed edge's AIVS maps without pruning.

        Used by modification when an edge's pairs are about to be fully
        recomputed (loosening) or discarded (deletion rollback handles the
        level resets itself).
        """
        key = canonical_edge(qi, qj)
        self._processed.discard(key)
        self._aivs.pop((qi, qj), None)
        self._aivs.pop((qj, qi), None)

    def aivs(self, qi: int, qj: int, v: int) -> set[int]:
        """``V_qi^qj(v)`` — candidates of ``qj`` within bound of ``v``.

        Returns the live set (do not mutate).  Raises if the edge is not
        processed or ``v`` is not a candidate of ``qi``.
        """
        try:
            return self._aivs[(qi, qj)][v]
        except KeyError:
            raise CAPStateError(
                f"no AIVS for edge ({qi}, {qj}) and candidate {v}"
            ) from None

    def remove_pair(self, qi: int, qj: int, vi: int, vj: int) -> None:
        """Remove a pair (bound-tightening re-check, Algorithm 15)."""
        self._aivs[(qi, qj)].get(vi, set()).discard(vj)
        self._aivs[(qj, qi)].get(vj, set()).discard(vi)

    # ------------------------------------------------------------------
    # Pruning (Algorithm 7)
    # ------------------------------------------------------------------
    def _prune(self, q: int, v: int, removed: list[int]) -> None:
        """Remove candidate ``v`` from level ``q`` and cascade (iterative).

        A worklist replaces Algorithm 7's recursion: prune cascades can be
        thousands of steps deep on low-selectivity queries, which would
        overflow Python's recursion limit.
        """
        worklist: list[tuple[int, int]] = [(q, v)]
        while worklist:
            level, vertex = worklist.pop()
            if vertex not in self._candidates.get(level, ()):
                continue
            self._candidates[level].discard(vertex)
            removed.append(vertex)
            self.prune_steps += 1
            # For every processed edge (level, other): delete the vertex's
            # AIVS and remove it from the reverse sets; reverse candidates
            # left empty become isolated in turn.
            for (a, b), aivs in list(self._aivs.items()):
                if a != level:
                    continue
                neighbors = aivs.pop(vertex, None)
                if not neighbors:
                    continue
                reverse = self._aivs[(b, a)]
                for w in neighbors:
                    rev_set = reverse.get(w)
                    if rev_set is None:
                        continue
                    rev_set.discard(vertex)
                    if not rev_set and w in self._candidates[b]:
                        worklist.append((b, w))

    def prune_candidate(self, q: int, v: int) -> list[int]:
        """Public entry point for pruning a specific candidate."""
        if v not in self._candidates.get(q, set()):
            return []
        removed: list[int] = []
        self._prune(q, v, removed)
        return removed

    def prune_isolated(self, qi: int, qj: int) -> list[int]:
        """Re-run the isolation check for edge ``(qi, qj)``.

        Needed after bound tightening removes pairs (Algorithm 15 line 9).
        """
        if not self.pruning_enabled:
            return []
        removed: list[int] = []
        for q, other in ((qi, qj), (qj, qi)):
            aivs = self._aivs.get((q, other))
            if aivs is None:
                continue
            isolated = [v for v in self._candidates[q] if not aivs.get(v)]
            for v in isolated:
                if v in self._candidates[q]:
                    self._prune(q, v, removed)
        return removed

    # ------------------------------------------------------------------
    # Components / introspection
    # ------------------------------------------------------------------
    def processed_component(self, q_start: int) -> tuple[set[int], set[tuple[int, int]]]:
        """Connected component of *processed* edges containing ``q_start``.

        Returns ``(component_vertices, component_edges)``; a vertex with no
        processed incident edge yields ``({q_start}, set())``.  This is the
        "affected region" of Section 6's rollback.
        """
        adjacency: dict[int, set[int]] = {}
        for a, b in self._processed:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        component = {q_start}
        stack = [q_start]
        while stack:
            u = stack.pop()
            for w in adjacency.get(u, ()):
                if w not in component:
                    component.add(w)
                    stack.append(w)
        edges = {e for e in self._processed if e[0] in component and e[1] in component}
        return component, edges

    def _note_peak(self) -> None:
        total = self.size_report().total
        if total > self.peak_total:
            self.peak_total = total

    def size_report(self) -> CAPSizeReport:
        """Current size per Lemma 5.2's accounting."""
        vertex_entries = sum(len(c) for c in self._candidates.values())
        aivs_pairs = sum(
            len(s) for aivs in self._aivs.values() for s in aivs.values()
        )
        return CAPSizeReport(
            num_levels=len(self._candidates),
            vertex_entries=vertex_entries,
            aivs_pairs=aivs_pairs,
        )

    def integrity_issues(
        self, query: BPHQuery
    ) -> list[tuple[tuple[int, int] | None, str]]:
        """Collect every structural-invariant violation without raising.

        Returns ``(edge_key, message)`` tuples — ``edge_key`` is the
        canonical query edge whose entry is corrupt (None when the issue is
        not attributable to one edge).  Checked invariants:

        * AIVS maps exist exactly for processed edges, in both directions;
        * AIVS symmetry: ``vj in V_qi^qj(vi)`` iff ``vi in V_qj^qi(vj)``;
        * AIVS sources and members are live candidates;
        * with pruning on, no live candidate is isolated w.r.t. a
          processed incident edge.

        This is the audit surface the resilience layer's
        :class:`~repro.resilience.CAPInvariantChecker` builds on; an empty
        list means the index is structurally sound.
        """
        issues: list[tuple[tuple[int, int] | None, str]] = []
        for qi, qj in sorted(self._processed):
            key = canonical_edge(qi, qj)
            for a, b in ((qi, qj), (qj, qi)):
                if (a, b) not in self._aivs:
                    issues.append((key, f"missing AIVS direction ({a}, {b})"))
            if not query.has_edge(qi, qj):
                issues.append((key, f"processed edge {(qi, qj)} not in query"))
        for (a, b), aivs in sorted(self._aivs.items()):
            key = canonical_edge(a, b)
            if key not in self._processed:
                issues.append((key, f"AIVS for unprocessed edge ({a}, {b})"))
                continue
            reverse = self._aivs.get((b, a), {})
            level = self._candidates.get(a, set())
            other_level = self._candidates.get(b, set())
            for v in sorted(level):
                if v not in aivs:
                    issues.append(
                        (key, f"candidate {v} of {a} has no AIVS entry for ({a}, {b})")
                    )
            for v, targets in sorted(aivs.items()):
                if v not in level:
                    issues.append(
                        (key, f"AIVS source {v} is not a live candidate of {a}")
                    )
                for w in sorted(targets):
                    if w not in other_level:
                        issues.append(
                            (key, f"AIVS target {w} is not a live candidate of {b}")
                        )
                    if v not in reverse.get(w, set()):
                        issues.append(
                            (key, f"AIVS asymmetry: {v}->{w} on ({a},{b}) lacks reverse")
                        )
                if self.pruning_enabled and not targets and v in level:
                    issues.append(
                        (
                            key,
                            f"candidate {v} of {a} is isolated w.r.t. ({a}, {b}) "
                            "but was not pruned",
                        )
                    )
        return issues

    def check_consistency(self, query: BPHQuery) -> None:
        """Verify internal invariants (tests + debugging; not on hot paths).

        Raises :class:`CAPStateError` on the first violation found by
        :meth:`integrity_issues`.
        """
        issues = self.integrity_issues(query)
        if issues:
            raise CAPStateError(issues[0][1])

    def __repr__(self) -> str:
        report = self.size_report()
        return (
            f"CAPIndex(levels={report.num_levels}, "
            f"vertices={report.vertex_entries}, aivs_pairs={report.aivs_pairs}, "
            f"processed_edges={len(self._processed)})"
        )
