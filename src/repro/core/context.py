"""Shared engine context: the data graph plus everything preprocessed.

One :class:`EngineContext` is built per data graph (via
:mod:`repro.core.preprocessor`) and shared across queries, strategies, the
baseline, and the experiment harness.  It also centralizes the counters the
experiments report (distance queries issued, PVS scan choices, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import CostModel
from repro.core.matcher import LabelEqualityMatcher, VertexMatcher
from repro.graph.graph import Graph
from repro.indexing import batch as _batch
from repro.indexing.oracle import DistanceOracle

__all__ = ["EngineContext", "EngineCounters"]


@dataclass
class EngineCounters:
    """Mutable instrumentation shared by the PVS searches and strategies."""

    distance_queries: int = 0
    #: Interpreter-level oracle invocations.  A scalar query is 1; a batch
    #: query through a native kernel is 1 per vectorized call regardless
    #: of how many logical distances it answered; a batch query that fell
    #: back to the per-pair shim counts every shim call.  The ratio
    #: ``distance_queries / oracle_calls`` is the batching win the
    #: ``bench_distance_batch`` benchmark gates on.
    oracle_calls: int = 0
    out_scans: int = 0
    in_scans: int = 0
    pairs_added: int = 0
    edges_processed: int = 0
    edges_deferred: int = 0
    pool_probes: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.distance_queries = 0
        self.oracle_calls = 0
        self.out_scans = 0
        self.in_scans = 0
        self.pairs_added = 0
        self.edges_processed = 0
        self.edges_deferred = 0
        self.pool_probes = 0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "distance_queries": self.distance_queries,
            "oracle_calls": self.oracle_calls,
            "out_scans": self.out_scans,
            "in_scans": self.in_scans,
            "pairs_added": self.pairs_added,
            "edges_processed": self.edges_processed,
            "edges_deferred": self.edges_deferred,
            "pool_probes": self.pool_probes,
        }


@dataclass
class EngineContext:
    """Everything a strategy needs to process query vertices and edges.

    Attributes
    ----------
    graph:
        The data graph.
    oracle:
        Exact shortest-path distance oracle (PML by default; the framework
        is oracle-agnostic per the paper's footnote 5).
    two_hop:
        Per-vertex 2-hop neighborhood *counts* (Section 5.2) feeding the
        two-hop search's scan-choice cost model.
    cost_model:
        ``t_avg`` / ``t_lat`` bundle answering Definition 5.8.
    """

    graph: Graph
    oracle: DistanceOracle
    two_hop: np.ndarray
    cost_model: CostModel
    counters: EngineCounters = field(default_factory=EngineCounters)
    #: Ablation hook: force every PVS scan choice to "in" or "out" instead
    #: of the Lemma 5.3/5.4 cost comparison (None = cost model decides).
    scan_override: str | None = None
    #: Vertex-matching policy: label equality (BPH default, Def. 3.1) or a
    #: similarity matcher (full 1-1 p-hom semantics, Sec. 2).
    matcher: VertexMatcher = field(default_factory=LabelEqualityMatcher)
    #: When False every batch query is answered by the per-pair scalar
    #: loop instead of the oracle's native kernel — the A/B toggle the
    #: bit-identity tests and ``bench_distance_batch`` flip (results must
    #: not depend on it).
    batch_enabled: bool = True

    @property
    def epoch(self) -> int:
        """The graph's mutation epoch (see :attr:`repro.graph.graph.Graph.epoch`)."""
        return self.graph.epoch

    def candidates_for(self, label: object) -> list[int]:
        """Candidate data vertices of a query vertex labeled ``label``."""
        return [int(v) for v in self.matcher.candidates_for(self.graph, label)]

    def distance(self, u: int, v: int) -> int:
        """Counted oracle distance query."""
        self.counters.distance_queries += 1
        self.counters.oracle_calls += 1
        return self.oracle.distance(u, v)

    def within(self, u: int, v: int, upper: int) -> bool:
        """Counted bounded-distance check."""
        self.counters.distance_queries += 1
        self.counters.oracle_calls += 1
        return self.oracle.within(u, v, upper)

    # -- batched queries (see repro.indexing.batch) --------------------
    def _use_batch(self) -> bool:
        return self.batch_enabled and _batch.supports_batch(self.oracle)

    def distances_from(self, source: int, targets) -> np.ndarray:
        """Counted batch distance query: ``dist(source, t)`` per target.

        Counts one logical ``distance_queries`` per target either way;
        ``oracle_calls`` records 1 for a native kernel call versus one
        per target on the scalar fallback.
        """
        t = np.asarray(targets, dtype=np.int64)
        self.counters.distance_queries += int(t.size)
        if self._use_batch():
            self.counters.oracle_calls += 1
            return _batch.distances_from(self.oracle, source, t)
        self.counters.oracle_calls += int(t.size)
        return _batch.scalar_distances(self.oracle, source, t)

    def within_many(
        self, sources, targets, upper: int, skip_equal: bool = False
    ) -> list[tuple[int, int]]:
        """Counted batch bounded-distance check over ``sources × targets``.

        Returns qualifying ``(u, v)`` pairs source-major, targets in the
        given order — the exact emission order of the per-pair double
        loop, so consumers are order-identical under either path.
        ``skip_equal=True`` excludes (and does not count) the diagonal.
        """
        queries = len(sources) * len(targets)
        if skip_equal:
            target_set = {int(v) for v in targets}
            queries -= sum(1 for u in sources if int(u) in target_set)
        self.counters.distance_queries += queries
        if self._use_batch():
            self.counters.oracle_calls += len(sources)
            return _batch.within_many(
                self.oracle, sources, targets, upper, skip_equal
            )
        self.counters.oracle_calls += queries
        return _batch.scalar_within_many(
            self.oracle, sources, targets, upper, skip_equal
        )
