"""Shared engine context: the data graph plus everything preprocessed.

One :class:`EngineContext` is built per data graph (via
:mod:`repro.core.preprocessor`) and shared across queries, strategies, the
baseline, and the experiment harness.  It also centralizes the counters the
experiments report (distance queries issued, PVS scan choices, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import CostModel
from repro.core.matcher import LabelEqualityMatcher, VertexMatcher
from repro.graph.graph import Graph
from repro.indexing.oracle import DistanceOracle

__all__ = ["EngineContext", "EngineCounters"]


@dataclass
class EngineCounters:
    """Mutable instrumentation shared by the PVS searches and strategies."""

    distance_queries: int = 0
    out_scans: int = 0
    in_scans: int = 0
    pairs_added: int = 0
    edges_processed: int = 0
    edges_deferred: int = 0
    pool_probes: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.distance_queries = 0
        self.out_scans = 0
        self.in_scans = 0
        self.pairs_added = 0
        self.edges_processed = 0
        self.edges_deferred = 0
        self.pool_probes = 0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "distance_queries": self.distance_queries,
            "out_scans": self.out_scans,
            "in_scans": self.in_scans,
            "pairs_added": self.pairs_added,
            "edges_processed": self.edges_processed,
            "edges_deferred": self.edges_deferred,
            "pool_probes": self.pool_probes,
        }


@dataclass
class EngineContext:
    """Everything a strategy needs to process query vertices and edges.

    Attributes
    ----------
    graph:
        The data graph.
    oracle:
        Exact shortest-path distance oracle (PML by default; the framework
        is oracle-agnostic per the paper's footnote 5).
    two_hop:
        Per-vertex 2-hop neighborhood *counts* (Section 5.2) feeding the
        two-hop search's scan-choice cost model.
    cost_model:
        ``t_avg`` / ``t_lat`` bundle answering Definition 5.8.
    """

    graph: Graph
    oracle: DistanceOracle
    two_hop: np.ndarray
    cost_model: CostModel
    counters: EngineCounters = field(default_factory=EngineCounters)
    #: Ablation hook: force every PVS scan choice to "in" or "out" instead
    #: of the Lemma 5.3/5.4 cost comparison (None = cost model decides).
    scan_override: str | None = None
    #: Vertex-matching policy: label equality (BPH default, Def. 3.1) or a
    #: similarity matcher (full 1-1 p-hom semantics, Sec. 2).
    matcher: VertexMatcher = field(default_factory=LabelEqualityMatcher)

    def candidates_for(self, label: object) -> list[int]:
        """Candidate data vertices of a query vertex labeled ``label``."""
        return [int(v) for v in self.matcher.candidates_for(self.graph, label)]

    def distance(self, u: int, v: int) -> int:
        """Counted oracle distance query."""
        self.counters.distance_queries += 1
        return self.oracle.distance(u, v)

    def within(self, u: int, v: int, upper: int) -> bool:
        """Counted bounded-distance check."""
        self.counters.distance_queries += 1
        return self.oracle.within(u, v, upper)
