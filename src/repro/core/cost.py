"""Edge-processing cost model and the expensive-edge predicate.

Deferment (Section 5.3) rests on two empirical quantities:

* ``t_avg`` — the average time of a PML distance query on this data graph,
  measured offline by the preprocessor over a large random sample;
* ``t_lat`` — the *minimum* GUI latency available to process an edge.  The
  paper derives ``t_lat = t_e`` (edge-construction time, ≈ 2 s for their
  participants) because drawing an edge is the fastest user step.

The estimated processing time of query edge ``e = (q_i, q_j)`` is then

    T_est = |V_qi| * |V_qj| * t_avg                       (Sec. 5.3)

and ``e`` is **expensive** (Definition 5.8) iff

    T_est > t_lat  and  e.upper >= 3.

The ``upper >= 3`` guard reflects that the neighbor/two-hop searches do not
touch all |V_qi|×|V_qj| pairs, so the product formula only models the
large-upper (PML all-pairs) search.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "GUILatencyConstants"]


@dataclass(frozen=True)
class GUILatencyConstants:
    """Per-step visual formulation times (Section 5.3's t_m, t_s, t_d, t_e, t_b).

    Defaults follow the paper's measured values (seconds): moving the
    cursor + scanning/selecting a label + dragging it ≈ 1 s each, edge
    construction ≈ 2 s, bound entry ≈ 1.5 s.  The dataset registry scales
    them down alongside graph scale via ``scaled``.
    """

    t_move: float = 1.0
    t_select: float = 1.0
    t_drag: float = 1.0
    t_edge: float = 2.0
    t_bounds: float = 1.5

    @property
    def t_vertex(self) -> float:
        """``T_node = t_m + t_s + t_d`` — latency of drawing one vertex."""
        return self.t_move + self.t_select + self.t_drag

    @property
    def t_lat(self) -> float:
        """Minimum GUI latency: ``min(T_node, T_edge)`` with default bounds.

        Since bound entry is skipped for default ``[1,1]`` edges,
        ``T_edge``'s minimum is ``t_e``, and ``t_m + t_s + t_d > t_e``
        empirically, so ``t_lat = t_e`` (Equation 2's derivation).
        """
        return min(self.t_vertex, self.t_edge)

    def scaled(self, factor: float) -> "GUILatencyConstants":
        """Uniformly scale all step times by ``factor``.

        Used when the data graph is emulated below paper scale: compute
        costs shrink roughly with the graph, so latency must shrink by the
        same factor for the expensive/inexpensive boundary to land on the
        same queries.
        """
        return GUILatencyConstants(
            t_move=self.t_move * factor,
            t_select=self.t_select * factor,
            t_drag=self.t_drag * factor,
            t_edge=self.t_edge * factor,
            t_bounds=self.t_bounds * factor,
        )


@dataclass(frozen=True)
class CostModel:
    """Bundles ``t_avg`` / ``t_lat`` and answers Definition 5.8.

    ``mean_degree`` / ``mean_two_hop`` are data-graph averages used to
    estimate the cost of *bound-specialized* PVS searches (neighbor and
    two-hop search do not touch all |V_qi|x|V_qj| pairs, so pricing them
    with the all-pairs product would grossly overestimate — which matters
    when query modification re-pools bound-1/2 edges and the Defer-to-Idle
    probe must decide whether they fit in an idle window).
    """

    t_avg: float
    t_lat: float
    mean_degree: float = 0.0
    mean_two_hop: float = 0.0

    def estimate_edge_cost(self, n_qi: int, n_qj: int, upper: int | None = None) -> float:
        """Estimated processing time of an edge (seconds).

        ``upper`` is None or >= 3: the paper's ``T_est = |V_qi| * |V_qj| *
        t_avg`` (the all-pairs large-upper search).  For upper 1/2 the
        neighbor/two-hop searches scan roughly ``|V_qi|`` neighborhoods, so
        the estimate scales with the mean (2-hop) degree instead.
        """
        if upper is None or upper >= 3:
            return n_qi * n_qj * self.t_avg
        per_vertex = self.mean_degree if upper == 1 else self.mean_two_hop
        if per_vertex <= 0:
            per_vertex = 1.0
        return min(n_qi, n_qj) * per_vertex * self.t_avg

    def is_expensive(self, n_qi: int, n_qj: int, upper: int) -> bool:
        """Definition 5.8: large-upper edge whose T_est exceeds t_lat."""
        if upper < 3:
            return False
        return self.estimate_edge_cost(n_qi, n_qj) > self.t_lat
