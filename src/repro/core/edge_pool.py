"""The edge pool of deferred (expensive) query edges.

Defer-to-Run and Defer-to-Idle park expensive edges here instead of
processing them inline (Algorithm 3, line 10).  The paper implements the
pool as a priority queue keyed by estimated cost; because candidate sets
shrink as other edges prune the index, an edge's priority *changes while it
waits*.  With at most ``|E_B|`` (single-digit) entries, recomputing
``T_est`` on every :meth:`min_edge` call is both simpler and cheaper than
maintaining a decrease-key heap — and always uses fresh sizes, which the
Defer-to-Idle probe depends on.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.cap import CAPIndex
from repro.core.cost import CostModel
from repro.core.query import BPHQuery, QueryEdge, canonical_edge
from repro.errors import CAPStateError

__all__ = ["EdgePool"]


class EdgePool:
    """Set of deferred query edges ordered by current estimated cost."""

    def __init__(self) -> None:
        self._edges: dict[tuple[int, int], QueryEdge] = {}

    def insert(self, edge: QueryEdge) -> None:
        """Park ``edge`` for later processing."""
        self._edges[edge.key] = edge

    def remove(self, u: int, v: int) -> QueryEdge:
        """Remove and return the pooled edge ``{u, v}``."""
        edge = self._edges.pop(canonical_edge(u, v), None)
        if edge is None:
            raise CAPStateError(f"edge ({u}, {v}) is not in the pool")
        return edge

    def discard(self, u: int, v: int) -> QueryEdge | None:
        """Remove ``{u, v}`` if pooled; returns it or None."""
        return self._edges.pop(canonical_edge(u, v), None)

    def contains(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is pooled."""
        return canonical_edge(u, v) in self._edges

    def replace(self, edge: QueryEdge) -> None:
        """Update the stored bounds of a pooled edge (bound modification)."""
        if edge.key not in self._edges:
            raise CAPStateError(f"edge {edge.key} is not in the pool")
        self._edges[edge.key] = edge

    def estimated_cost(self, edge: QueryEdge, cap: CAPIndex, model: CostModel) -> float:
        """Current ``T_est`` of ``edge`` given live candidate-set sizes.

        Bound-aware: a re-pooled bound-1/2 edge is priced by its scan-based
        search, not by the all-pairs product (see ``CostModel``).
        """
        return model.estimate_edge_cost(
            cap.candidate_count(edge.u), cap.candidate_count(edge.v), edge.upper
        )

    def min_edge(self, cap: CAPIndex, model: CostModel) -> tuple[QueryEdge, float] | None:
        """The cheapest pooled edge and its current ``T_est``; None if empty.

        "In each iteration, the least expensive edge is removed from pool
        and processed" (Sec. 5.3) — cheapest-first drain maximizes early
        pruning, which in turn shrinks the still-pooled edges.
        """
        best: tuple[QueryEdge, float] | None = None
        for edge in self._edges.values():
            cost = self.estimated_cost(edge, cap, model)
            if best is None or cost < best[1]:
                best = (edge, cost)
        return best

    def cheapest_cost(self, cap: CAPIndex, model: CostModel) -> float | None:
        """Current ``T_est`` of the cheapest pooled edge; None when empty.

        A peek-only companion to :meth:`min_edge` for schedulers that rank
        *pools* against each other (the service's cross-session idle
        multiplexer) before committing to process anything.
        """
        entry = self.min_edge(cap, model)
        return entry[1] if entry is not None else None

    def sync_query_bounds(self, query: BPHQuery) -> None:
        """Refresh pooled edges from the query (after bound modifications).

        A pooled key may no longer exist in the query — a modification can
        delete an edge that was still deferred.  Such stale keys are
        discarded (the pool must mirror the query, and asking the query
        for a deleted edge would raise), never re-fetched.
        """
        for key in list(self._edges):
            if query.has_edge(*key):
                self._edges[key] = query.edge_between(*key)
            else:
                del self._edges[key]

    def edges(self) -> list[QueryEdge]:
        """Pooled edges (insertion order, copy)."""
        return list(self._edges.values())

    def clear(self) -> None:
        """Drop everything (session reset)."""
        self._edges.clear()

    def __len__(self) -> int:
        return len(self._edges)

    def __bool__(self) -> bool:
        return bool(self._edges)

    def __iter__(self) -> Iterator[QueryEdge]:
        return iter(self.edges())

    def __repr__(self) -> str:
        keys = ", ".join(str(k) for k in self._edges)
        return f"EdgePool([{keys}])"
