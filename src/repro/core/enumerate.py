"""Enumeration of partial-matched vertex sets (Algorithms 11 and 12).

After Run completes CAP construction, the *upper-bound-constrained* matches
of the query are exactly the connected subgraphs of the CAP index with one
candidate per level whose pairs are AIVS-linked for every query edge — the
paper's partial-matched vertex sets ``V_P``, collectively ``V_Δ``.

The enumeration is a depth-first search over a reordered matching order
(levels sorted by increasing ``|V_q|``, Algorithm 11 line 2): at each step
the candidate pool for the next query vertex is the intersection of the
AIVS sets of its already-matched query neighbors, and the 1-1 requirement
of Definition 3.1 is enforced by excluding already-used data vertices.

Lower bounds are *not* checked here — that is the just-in-time job of
:mod:`repro.core.lowerbound` during result visualization.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.cap import CAPIndex
from repro.core.query import BPHQuery
from repro.errors import CAPStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.deadline import Deadline

__all__ = ["PartialMatches", "reorder_matching_order", "iter_partial_vertex_sets", "partial_vertex_sets"]


@dataclass
class PartialMatches:
    """``V_Δ``: all upper-bound-constrained matches found (possibly capped)."""

    #: Each match maps query-vertex id -> data-vertex id.
    matches: list[dict[int, int]]
    #: The (reordered) matching order the DFS used.
    order: list[int]
    #: True when enumeration stopped early at ``max_results``.
    truncated: bool = False
    extras: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[dict[int, int]]:
        return iter(self.matches)


def reorder_matching_order(
    query: BPHQuery, cap: CAPIndex, matching_order: list[int] | None = None
) -> list[int]:
    """Sort the matching order by increasing live candidate-set size.

    Smaller levels first means fewer DFS branches near the root — the
    classic candidate-size heuristic, applied by Algorithm 11's
    ``Reorder``.  Ties keep the user's original drawing order, which makes
    enumeration deterministic.
    """
    base = matching_order if matching_order is not None else query.matching_order
    position = {q: i for i, q in enumerate(base)}
    return sorted(base, key=lambda q: (cap.candidate_count(q), position[q]))


def iter_partial_vertex_sets(
    query: BPHQuery,
    cap: CAPIndex,
    matching_order: list[int] | None = None,
    reorder: bool = True,
    deadline: "Deadline | None" = None,
) -> Iterator[dict[int, int]]:
    """Lazily yield every partial-matched vertex set ``V_P``.

    Requires every query edge to be processed in the CAP index (the state
    after Run); raises :class:`CAPStateError` otherwise, because an
    unprocessed edge would silently produce supersets of the true ``V_Δ``.

    ``reorder=False`` keeps the user's drawing order (the reorder-ablation
    arm); results are the same set, traversal cost differs.

    ``deadline`` adds a cooperative cancellation checkpoint per DFS
    extension step, so combinatorially exploding enumerations can be
    bounded (:class:`~repro.errors.DeadlineExceededError` at the next
    step) instead of holding the session hostage.
    """
    for edge in query.edges():
        if not cap.is_processed(edge.u, edge.v):
            raise CAPStateError(
                f"cannot enumerate: query edge {edge.key} is unprocessed"
            )
    if reorder:
        order = reorder_matching_order(query, cap, matching_order)
    else:
        order = list(matching_order if matching_order is not None else query.matching_order)
    if not order:
        return

    assignment: dict[int, int] = {}
    used: set[int] = set()
    neighbors_of = {q: query.neighbors(q) for q in order}

    def extend(position: int) -> Iterator[dict[int, int]]:
        if deadline is not None:
            deadline.checkpoint("V_Delta enumeration")
        if position == len(order):
            yield dict(assignment)
            return
        q_next = order[position]
        # Intersect AIVS sets of matched query neighbors (Algorithm 12
        # lines 1-6); with no matched neighbor yet, fall back to the level.
        pool: set[int] | None = None
        for q_matched in neighbors_of[q_next]:
            if q_matched not in assignment:
                continue
            aivs = cap.aivs(q_matched, q_next, assignment[q_matched])
            pool = aivs if pool is None else (pool & aivs)
            if not pool:
                return
        candidates = cap.candidates(q_next) if pool is None else pool
        # Sorted for run-to-run determinism of the result ordering.
        for v in sorted(candidates):
            if v in used:
                continue  # 1-1: distinct data vertices (Definition 3.1)
            assignment[q_next] = v
            used.add(v)
            yield from extend(position + 1)
            used.discard(v)
            del assignment[q_next]

    yield from extend(0)


def partial_vertex_sets(
    query: BPHQuery,
    cap: CAPIndex,
    matching_order: list[int] | None = None,
    max_results: int | None = None,
    reorder: bool = True,
    deadline: "Deadline | None" = None,
) -> PartialMatches:
    """Collect ``V_Δ`` eagerly, optionally capped at ``max_results``.

    The cap exists because low-selectivity queries on permissive bounds can
    have combinatorially many matches; experiments set a generous cap and
    report truncation explicitly (DESIGN.md, "no silent caps").
    """
    if reorder:
        order = reorder_matching_order(query, cap, matching_order)
    else:
        order = list(matching_order if matching_order is not None else query.matching_order)
    matches: list[dict[int, int]] = []
    truncated = False
    for match in iter_partial_vertex_sets(
        query, cap, matching_order, reorder=reorder, deadline=deadline
    ):
        if max_results is not None and len(matches) >= max_results:
            truncated = True
            break
        matches.append(match)
    return PartialMatches(matches=matches, order=order, truncated=truncated)
