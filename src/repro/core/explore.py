"""Exploratory-search helpers over a live CAP index.

The paper argues the blended paradigm "opens up opportunities to enhance
usability of graph databases (e.g., exploratory search)" (Section 1, citing
PICASSO).  With a partially formulated query, the CAP index already knows
which candidates are alive — so the GUI can *guide* the user:

* :func:`maximum_match` — Fan et al.'s maximum match ``S_M`` (the paper's
  footnote 6): for every query vertex, all data vertices that participate
  in at least the partial constraints processed so far (its live CAP
  level).
* :func:`suggest_extension_labels` — ranked labels for the *next* vertex
  the user might attach to query vertex ``q``: labels found among the data
  neighbors of ``q``'s live candidates.  Drawing a suggested label with a
  bound-1 edge leaves both touched CAP levels non-empty (an *unsuggested*
  label would prune the new level to nothing immediately); whether complete
  matches survive still depends on the rest of the query's constraints.
* :func:`estimate_selectivity` — how much each live level has already been
  pruned (a proxy for how "decided" each query vertex is).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable

from repro.core.blender import BlenderEngine
from repro.errors import CAPStateError

__all__ = ["maximum_match", "suggest_extension_labels", "estimate_selectivity"]

Label = Hashable


def maximum_match(engine: BlenderEngine) -> dict[int, list[int]]:
    """``S_M``: per query vertex, the sorted live candidate vertices.

    This is exactly the union semantics of the paper's footnote 6 —
    everything that could still appear in some partial match given the
    processed constraints.
    """
    return {
        q: sorted(engine.cap.candidates(q)) for q in engine.cap.levels()
    }


def suggest_extension_labels(
    engine: BlenderEngine, query_vertex: int, top_k: int = 5
) -> list[tuple[Label, int]]:
    """Ranked ``(label, support)`` suggestions for extending ``query_vertex``.

    ``support`` counts live candidates of ``query_vertex`` having at least
    one data neighbor with that label; a label with support 0 would prune
    the level empty if attached with bounds [1, 1].  Data vertices already
    used as the level's own label are included — self-label extensions are
    legitimate (e.g. author-author collaboration patterns).
    """
    if not engine.cap.has_level(query_vertex):
        raise CAPStateError(f"query vertex {query_vertex} has no CAP level")
    graph = engine.ctx.graph
    support: Counter[Label] = Counter()
    for v in engine.cap.candidates(query_vertex):
        seen: set[Label] = set()
        for w in graph.neighbors(v):
            seen.add(graph.label(int(w)))
        support.update(seen)
    ranked = sorted(support.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return ranked[:top_k]


def estimate_selectivity(engine: BlenderEngine) -> dict[int, float]:
    """Per query vertex: fraction of its initial candidates still alive.

    1.0 = untouched (no incident edge processed yet); values near 0 mean
    the vertex is almost decided.  Useful for GUIs that color query
    vertices by how constrained they already are.
    """
    out: dict[int, float] = {}
    for q in engine.cap.levels():
        label = engine.query.label(q)
        initial = len(engine.ctx.candidates_for(label))
        live = engine.cap.candidate_count(q)
        out[q] = (live / initial) if initial else 0.0
    return out
