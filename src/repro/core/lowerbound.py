"""Just-in-time lower-bound checking and result-subgraph generation.

CAP construction deliberately ignores lower bounds (checking them for every
candidate pair during formulation would burn GUI latency for constraints
that only matter to *displayed* results).  Instead, when the user iterates
through matches on the Results Panel, BOOMER materializes — per query edge —
one *matching path* whose length satisfies ``[lower, upper]``
(Algorithms 13/14).  A match for which some edge has no such path is
rejected at this stage.

``DetectPath`` is a distance-guided DFS:

* prune any branch where ``steps_so_far + dist(current, target) > upper``
  (the PML oracle makes this O(label) per node);
* when ``steps_so_far + dist(current, target) >= lower`` prefer neighbors
  that make *progress* (distance decreases); otherwise prefer *detours*
  first, since the shortest continuation would arrive too early.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import EngineContext
from repro.core.query import BPHQuery, QueryEdge
from repro.graph.algorithms import region_around
from repro.graph.graph import Graph
from repro.obs.metrics import metrics

__all__ = [
    "ResultSubgraph",
    "PathSearchStats",
    "detect_path",
    "filter_by_lower_bound",
]


@dataclass
class ResultSubgraph:
    """A fully validated bounded 1-1 p-hom match, ready to visualize.

    ``paths`` maps each query-edge key to the concrete matching path
    (vertex list, endpoints included) chosen for display; all path lengths
    satisfy the edge's ``[lower, upper]``.
    """

    assignment: dict[int, int]
    paths: dict[tuple[int, int], list[int]] = field(default_factory=dict)

    @property
    def vertices(self) -> set[int]:
        """All data vertices participating (match vertices + path interiors)."""
        out = set(self.assignment.values())
        for path in self.paths.values():
            out.update(path)
        return out

    def path_length(self, u: int, v: int) -> int:
        """Length of the displayed matching path of query edge ``{u, v}``."""
        key = (u, v) if u <= v else (v, u)
        return len(self.paths[key]) - 1

    def region(self, graph: Graph, radius: int = 1):
        """Small visualization region around the match (Section 5.4).

        Returns ``(subgraph, original->region vertex mapping)``.
        """
        return region_around(graph, sorted(self.vertices), radius=radius)

    def all_path_embeddings(
        self,
        query: BPHQuery,
        ctx: EngineContext,
        limit_per_edge: int | None = 100,
    ) -> dict[tuple[int, int], list[list[int]]]:
        """Every bounded simple path realizing each query edge (Section 8).

        ``paths`` stores the one display path DetectPath picked; this
        enumerates *all* path embeddings (capped per edge), which is what
        distinguishes BOOMER from vertex-only distance-join systems.
        """
        from repro.graph.paths import bounded_paths

        out: dict[tuple[int, int], list[list[int]]] = {}
        for edge in query.edges():
            out[edge.key] = bounded_paths(
                ctx.graph,
                self.assignment[edge.u],
                self.assignment[edge.v],
                edge.lower,
                edge.upper,
                limit=limit_per_edge,
                oracle=ctx.oracle,
            )
        return out


@dataclass
class PathSearchStats:
    """What one :func:`detect_path` search did — beyond its yes/no answer.

    ``truncated`` distinguishes "no qualifying path exists" from "the
    ``max_nodes`` safety valve fired before the search could prove
    either" — a ``None`` result with ``truncated=True`` may have silently
    dropped a valid match, which callers (and the
    ``repro_detect_path_truncations_total`` metric) need to know.
    """

    expanded: int = 0
    truncated: bool = False


def detect_path(
    ctx: EngineContext,
    source: int,
    target: int,
    lower: int,
    upper: int,
    max_nodes: int = 100_000,
    stats: PathSearchStats | None = None,
) -> list[int] | None:
    """Find one simple path ``source -> target`` with length in [lower, upper].

    Returns the vertex list (including endpoints) or None when no such path
    exists.  ``max_nodes`` bounds the DFS expansion as a safety valve; the
    distance-guided pruning keeps real searches tiny (Exp 5 measures this).
    Pass a :class:`PathSearchStats` to learn whether a ``None`` meant
    "proved absent" or "gave up at the expansion budget" (``truncated``).

    The per-node pruning distances are fetched with one batched
    ``distances_from(target, unvisited_neighbors)`` call — distances are
    symmetric on the undirected data graph — instead of one oracle call
    per neighbor.
    """
    if stats is None:
        stats = PathSearchStats()
    else:
        stats.expanded = 0
        stats.truncated = False
    if source == target:
        return None  # matching paths are non-empty and simple
    d0 = ctx.distance(source, target)
    if d0 < 0 or d0 > upper:
        return None

    graph = ctx.graph
    path = [source]
    visited = {source}

    def dfs(current: int, steps: int) -> bool:
        stats.expanded += 1
        if stats.expanded > max_nodes:
            stats.truncated = True
            return False
        if current == target:
            return lower <= steps <= upper
        if steps >= upper:
            return False
        d_current = ctx.distance(current, target)
        neighbors = [
            w for w in (int(w) for w in graph.neighbors(current))
            if w not in visited
        ]
        progress: list[int] = []
        detour: list[int] = []
        if neighbors:
            dists = ctx.distances_from(target, neighbors)
            for w, d_w in zip(neighbors, dists):
                d_w = int(d_w)
                if d_w < 0 or steps + 1 + d_w > upper:
                    continue  # cannot reach target within upper any more
                if d_w == d_current - 1:
                    progress.append(w)
                else:
                    detour.append(w)
        # Algorithm 14 lines 15-19: if finishing via shortest continuation
        # already satisfies lower, try progress first; else detour first.
        ordered = progress + detour if steps + d_current >= lower else detour + progress
        for w in ordered:
            visited.add(w)
            path.append(w)
            if dfs(w, steps + 1):
                return True
            path.pop()
            visited.discard(w)
        return False

    if dfs(source, 0):
        return path
    return None


def filter_by_lower_bound(
    assignment: dict[int, int],
    query: BPHQuery,
    ctx: EngineContext,
) -> ResultSubgraph | None:
    """Validate (and materialize) one match against all lower bounds.

    Implements Algorithm 13: for every query edge, detect a matching path
    within bounds.  Returns the displayable :class:`ResultSubgraph`, or
    None when some edge admits no qualifying path (the match is spurious
    under lower bounds and must not be shown).
    """
    result = ResultSubgraph(assignment=dict(assignment))
    stats = PathSearchStats()
    for edge in query.edges():
        vi = assignment[edge.u]
        vj = assignment[edge.v]
        path = _matching_path(ctx, edge, vi, vj, stats)
        if path is None:
            if stats.truncated:
                # The rejection is unproven: DetectPath ran out of budget,
                # so this match *may* have been dropped wrongly.  Surface
                # the distinction (a silent None here looks exactly like a
                # legitimate lower-bound rejection).
                metrics.counter(
                    "repro_detect_path_truncations_total",
                    "DetectPath searches that hit max_nodes before "
                    "proving path absence (potentially dropped matches)",
                ).inc()
            return None
        result.paths[edge.key] = path
    return result


def _matching_path(
    ctx: EngineContext,
    edge: QueryEdge,
    vi: int,
    vj: int,
    stats: PathSearchStats | None = None,
) -> list[int] | None:
    """One path for ``edge`` between the mapped endpoints."""
    return detect_path(ctx, vi, vj, edge.lower, edge.upper, stats=stats)
