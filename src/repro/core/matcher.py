"""Vertex matchers: from label equality to similarity-based matching.

The BPH queries of the paper match vertices by *label equality*
(Definition 3.1), but the underlying 1-1 p-homomorphism of Fan et al. —
which BPH specializes — matches vertices by a **similarity matrix**:
``ξ(v) = u`` requires ``M(v, u) >= t`` for a threshold ``t`` (paper
Section 2).  This module restores that generality as a pluggable policy:

* :class:`LabelEqualityMatcher` — the paper's BPH default; candidate
  retrieval is the O(1) label-index lookup.
* :class:`SimilarityMatcher` — a similarity function over *labels* plus a
  threshold; the candidate set of a query vertex is the union of the label
  buckets whose similarity to the query label reaches the threshold.
  (Similarity between labels rather than between individual vertices keeps
  retrieval index-backed, matching how M is built from label information
  in [13].)

The blender, baseline, and modification rollback all fetch candidates
through :meth:`EngineContext`-agnostic ``candidates_for`` so that every
component honors the same matcher.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import Protocol, runtime_checkable

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "VertexMatcher",
    "LabelEqualityMatcher",
    "SimilarityMatcher",
    "jaccard_label_similarity",
]

Label = Hashable


@runtime_checkable
class VertexMatcher(Protocol):
    """Maps a query-vertex label to its candidate data vertices."""

    def candidates_for(self, graph: Graph, label: Label) -> np.ndarray:
        """Sorted array of data-vertex ids that *match* ``label``."""
        ...

    def matches(self, graph: Graph, label: Label, vertex: int) -> bool:
        """Does data vertex ``vertex`` match query label ``label``?"""
        ...


class LabelEqualityMatcher:
    """The BPH default: ``L(q) == L(v)`` (Definition 3.1)."""

    def candidates_for(self, graph: Graph, label: Label) -> np.ndarray:
        return graph.vertices_with_label(label)

    def matches(self, graph: Graph, label: Label, vertex: int) -> bool:
        return graph.label(vertex) == label

    def __repr__(self) -> str:
        return "LabelEqualityMatcher()"


class SimilarityMatcher:
    """1-1 p-hom style matching: ``sim(L(q), L(v)) >= threshold``.

    Parameters
    ----------
    similarity:
        ``sim(query_label, data_label) -> float`` in ``[0, 1]``.  Must give
        1.0 for identical labels if exact matches should always qualify.
    threshold:
        The paper's ``t``: a vertex qualifies iff similarity reaches it.

    Candidate retrieval unions the graph's per-label buckets whose label
    clears the threshold, then sorts — still index-backed, so CAP
    construction is unchanged apart from larger candidate sets.
    """

    def __init__(
        self,
        similarity: Callable[[Label, Label], float],
        threshold: float,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.similarity = similarity
        self.threshold = threshold
        # (graph id, query label) -> candidate array; similarity over the
        # label alphabet is cheap but repeated per query vertex otherwise.
        self._cache: dict[tuple[int, Label], np.ndarray] = {}

    def matching_labels(self, graph: Graph, label: Label) -> list[Label]:
        """Data-graph labels whose similarity to ``label`` >= threshold."""
        return [
            data_label
            for data_label in sorted(graph.distinct_labels(), key=repr)
            if self.similarity(label, data_label) >= self.threshold
        ]

    def candidates_for(self, graph: Graph, label: Label) -> np.ndarray:
        key = (id(graph), label)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        buckets = [
            graph.vertices_with_label(data_label)
            for data_label in self.matching_labels(graph, label)
        ]
        if buckets:
            merged = np.unique(np.concatenate(buckets)).astype(np.int32)
        else:
            merged = np.empty(0, dtype=np.int32)
        self._cache[key] = merged
        return merged

    def matches(self, graph: Graph, label: Label, vertex: int) -> bool:
        return self.similarity(label, graph.label(vertex)) >= self.threshold

    def __repr__(self) -> str:
        return f"SimilarityMatcher(threshold={self.threshold})"


def jaccard_label_similarity(a: Label, b: Label) -> float:
    """Character-set Jaccard similarity between two string-able labels.

    A convenient default for demos/tests: identical labels give 1.0,
    disjoint alphabets give 0.0.
    """
    set_a = set(str(a).lower())
    set_b = set(str(b).lower())
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)
