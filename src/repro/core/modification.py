"""Query modification during formulation (Section 6, Algorithms 5 and 15).

Users delete edges and alter bounds mid-formulation; the CAP index must
follow without a from-scratch rebuild.  The cases:

=====================  ======================  =================================
modification           edge state              CAP maintenance
=====================  ======================  =================================
delete                 unprocessed (pooled)    remove from pool; CAP untouched
delete                 processed               rollback affected component (Alg 5)
lower bound change     any                     CAP untouched (lower is JIT)
upper bound tightened  unprocessed             update pooled bounds
upper bound tightened  processed               re-check pairs, prune (Alg 15)
upper bound loosened   unprocessed             update pooled bounds
upper bound loosened   processed               rollback + re-pool incl. the edge
=====================  ======================  =================================

"Rollback" re-derives the connected component of *processed* query edges
containing the modified edge: candidate levels of the component's query
vertices are reset to their full label sets, the component's edges are
pushed (back) into the pool, and the strategy decides when they are
re-processed (IC: immediately; DI: within the current idle window; DR: at
Run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.query import QueryEdge, canonical_edge
from repro.errors import CAPStateError
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blender import BlenderEngine

__all__ = ["ModificationReport", "delete_edge", "modify_bounds", "quarantine_edge"]


@dataclass
class ModificationReport:
    """What a modification did to the index, and what it cost."""

    kind: str  # "delete" | "tighten" | "loosen" | "lower-only" | "pooled-update"
    edge: tuple[int, int]
    was_processed: bool
    affected_levels: list[int] = field(default_factory=list)
    repooled_edges: list[tuple[int, int]] = field(default_factory=list)
    pruned_vertices: int = 0
    elapsed_seconds: float = 0.0


def delete_edge(engine: "BlenderEngine", u: int, v: int) -> ModificationReport:
    """Handle the user deleting query edge ``{u, v}``."""
    watch = Stopwatch().start()
    # Validate *before* mutating the query so a bad request leaves the
    # session untouched.
    engine.query.edge_between(u, v)  # raises if absent
    pooled = engine.pool.contains(u, v)
    if not pooled and not engine.cap.is_processed(u, v):
        raise CAPStateError(
            f"edge ({u}, {v}) is neither pooled nor processed; "
            "was it ever delivered as a NewEdge action?"
        )
    engine.query.remove_edge(u, v)

    if pooled:
        # Unprocessed edge: "no change is required on the CAP index".
        # Re-derive the pool from the query instead of surgically
        # discarding one key — the query is the single source of truth,
        # so pool state cannot diverge from it after a deletion.
        engine.pool.sync_query_bounds(engine.query)
        return ModificationReport(
            kind="delete",
            edge=canonical_edge(u, v),
            was_processed=False,
            elapsed_seconds=watch.stop(),
        )

    report = _rollback(engine, canonical_edge(u, v), readd_edge=False)
    report.kind = "delete"
    report.elapsed_seconds = watch.stop()
    return report


def modify_bounds(
    engine: "BlenderEngine", u: int, v: int, lower: int, upper: int
) -> ModificationReport:
    """Handle the user changing the bounds of query edge ``{u, v}``."""
    watch = Stopwatch().start()
    old = engine.query.edge_between(u, v)
    key = canonical_edge(u, v)
    pooled = engine.pool.contains(u, v)
    if not pooled and not engine.cap.is_processed(u, v):
        # Validate before mutating: a bad request leaves the session intact.
        raise CAPStateError(
            f"edge ({u}, {v}) is neither pooled nor processed; "
            "was it ever delivered as a NewEdge action?"
        )
    new = engine.query.set_bounds(u, v, lower, upper)

    if pooled:
        # Unprocessed: CAP untouched; the pool re-reads every pooled
        # edge's bounds from the query (single source of truth) rather
        # than patching just the modified copy.
        engine.pool.sync_query_bounds(engine.query)
        return ModificationReport(
            kind="pooled-update",
            edge=key,
            was_processed=False,
            elapsed_seconds=watch.stop(),
        )

    if new.upper == old.upper:
        # Only the lower bound moved: CAP ignores lower bounds entirely
        # (they are checked just-in-time at visualization).
        return ModificationReport(
            kind="lower-only",
            edge=key,
            was_processed=True,
            elapsed_seconds=watch.stop(),
        )

    if new.upper < old.upper:
        report = _tighten(engine, new)
    else:
        report = _rollback(engine, key, readd_edge=True)
        report.kind = "loosen"
    report.elapsed_seconds = watch.stop()
    return report


def quarantine_edge(engine: "BlenderEngine", u: int, v: int) -> ModificationReport:
    """Resilience repair: roll back the component of a corrupt edge entry.

    Used by :class:`repro.resilience.CAPInvariantChecker` when the CAP
    entry of processed edge ``{u, v}`` fails an integrity audit.  The same
    Algorithm 5 machinery that serves query modification resets the
    affected component's candidate levels and re-pools its edges — but
    *without* the strategy's eager re-processing, because the caller
    decides when (and under which retry/deadline regime) to rebuild.
    """
    watch = Stopwatch().start()
    if not engine.cap.is_processed(u, v):
        raise CAPStateError(
            f"cannot quarantine edge ({u}, {v}): it is not processed"
        )
    report = _rollback(engine, canonical_edge(u, v), readd_edge=True, eager=False)
    report.kind = "quarantine"
    report.elapsed_seconds = watch.stop()
    return report


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------
def _tighten(engine: "BlenderEngine", edge: QueryEdge) -> ModificationReport:
    """Algorithm 15: stricter upper bound on a processed edge.

    Every surviving AIVS pair is re-validated against the new bound; pairs
    that now violate it are removed, then the isolation prune re-runs for
    this edge.  The re-check uses the same bound specialization as PVS:
    adjacency test for upper 1, sorted common-neighbor join for upper 2,
    oracle distance otherwise.
    """
    qi, qj = edge.u, edge.v
    cap = engine.cap
    ctx = engine.ctx
    upper = edge.upper
    graph = ctx.graph

    if upper == 1:
        still_valid = lambda vi, vj: graph.has_edge(vi, vj)
    elif upper == 2:
        from repro.core.pvs import _within_two_hops

        still_valid = lambda vi, vj: _within_two_hops(
            graph, vi, vj, graph.neighbors(vi)
        )
    else:
        still_valid = lambda vi, vj: ctx.within(vi, vj, upper)

    removed_pairs: list[tuple[int, int]] = []
    for vi in list(cap.candidates(qi)):
        for vj in list(cap.aivs(qi, qj, vi)):
            if not still_valid(vi, vj):
                removed_pairs.append((vi, vj))
    for vi, vj in removed_pairs:
        cap.remove_pair(qi, qj, vi, vj)
    pruned = cap.prune_isolated(qi, qj)
    return ModificationReport(
        kind="tighten",
        edge=edge.key,
        was_processed=True,
        affected_levels=[qi, qj],
        pruned_vertices=len(pruned),
    )


def _rollback(
    engine: "BlenderEngine",
    edge_key: tuple[int, int],
    readd_edge: bool,
    eager: bool = True,
) -> ModificationReport:
    """Algorithm 5: rebuild the affected processed-edge component.

    ``readd_edge`` distinguishes loosening (the edge returns to the pool
    with its new bound) from deletion (it does not).  ``eager=False`` skips
    the strategy's immediate re-processing, leaving every re-pooled edge
    for the caller (the resilience repair path controls rebuilds itself).
    """
    cap = engine.cap
    query = engine.query

    component_vertices, component_edges = cap.processed_component(edge_key[0])
    # Reset every affected level to its full matcher-based candidate set;
    # reset_level also drops the AIVS maps and processed marks touching it.
    for qk in sorted(component_vertices):
        cap.reset_level(qk, engine.ctx.candidates_for(query.label(qk)))

    # Re-pool the component's edges (minus the deleted one).
    repooled: list[tuple[int, int]] = []
    for a, b in sorted(component_edges):
        if (a, b) == edge_key and not readd_edge:
            continue
        if not query.has_edge(a, b):
            continue  # deleted edge itself
        engine.pool.insert(query.edge_between(a, b))
        repooled.append((a, b))

    report = ModificationReport(
        kind="loosen" if readd_edge else "delete",
        edge=edge_key,
        was_processed=True,
        affected_levels=sorted(component_vertices),
        repooled_edges=repooled,
    )
    # Strategy decides how eagerly the re-pooled edges are processed
    # (Algorithm 5 line 12 probes the pool under Defer-to-Idle).
    if eager:
        engine.after_modification()
    return report
