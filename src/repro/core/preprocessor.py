"""The BOOMER preprocessor (Section 4).

One-time, offline, per-data-graph work:

1. build the PML index (exact distance oracle);
2. precompute per-vertex 2-hop neighborhood *counts* (for the two-hop
   search's scan-choice model, Section 5.2);
3. empirically measure ``t_avg`` — the average PML distance-query time —
   by running a large number of random distance queries (the paper uses
   one million; scaled here with the data).

The result is packaged as an :class:`EngineContext` factory so sessions,
baselines, and experiments all share identical preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import EngineContext
from repro.core.cost import CostModel, GUILatencyConstants
from repro.graph.graph import Graph
from repro.indexing.oracle import DistanceOracle
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from repro.utils.rng import seeded_rng
from repro.obs.clock import now

__all__ = ["PreprocessResult", "preprocess", "measure_t_avg", "make_context"]


@dataclass
class PreprocessResult:
    """Everything the offline phase produced, with its costs."""

    graph: Graph
    pml: PrunedLandmarkLabeling
    two_hop: np.ndarray
    t_avg: float
    pml_build_seconds: float
    two_hop_seconds: float
    t_avg_samples: int

    def summary(self) -> str:
        """One-line report (mirrors the paper's preprocessing cost note)."""
        return (
            f"preprocess[{self.graph.name}]: PML {self.pml_build_seconds:.2f}s "
            f"(avg label {self.pml.average_label_size():.1f}), "
            f"2-hop counts {self.two_hop_seconds:.2f}s, "
            f"t_avg {self.t_avg * 1e6:.2f}us over {self.t_avg_samples:,} queries"
        )


def measure_t_avg(
    oracle: DistanceOracle, graph: Graph, samples: int = 20_000, seed: int = 0
) -> float:
    """Average per-query oracle time over random vertex pairs.

    The paper issues 1M queries on full-size graphs; 20k on our emulated
    scales gives the same statistical stability at proportionate cost.
    """
    if graph.num_vertices == 0:
        return 0.0
    rng = seeded_rng(seed)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(samples)]
    start = now()
    for u, v in pairs:
        oracle.distance(u, v)
    elapsed = now() - start
    return elapsed / samples if samples else 0.0


def preprocess(graph: Graph, seed: int = 0, t_avg_samples: int = 20_000) -> PreprocessResult:
    """Run the full offline phase for ``graph``."""
    start = now()
    pml = PrunedLandmarkLabeling.build(graph)
    pml_seconds = now() - start

    start = now()
    two_hop = two_hop_counts(graph)
    two_hop_seconds = now() - start

    t_avg = measure_t_avg(pml, graph, samples=t_avg_samples, seed=seed)
    return PreprocessResult(
        graph=graph,
        pml=pml,
        two_hop=two_hop,
        t_avg=t_avg,
        pml_build_seconds=pml_seconds,
        two_hop_seconds=two_hop_seconds,
        t_avg_samples=t_avg_samples,
    )


def make_context(
    pre: PreprocessResult,
    latency: GUILatencyConstants | None = None,
    oracle: DistanceOracle | None = None,
) -> EngineContext:
    """Assemble an :class:`EngineContext` from preprocessing output.

    ``oracle`` defaults to the PML index; passing :class:`BFSOracle` here
    is how the PML-vs-BFS ablation runs the identical pipeline on a
    different distance backend.
    """
    constants = latency or GUILatencyConstants()
    graph = pre.graph
    mean_degree = (2.0 * graph.num_edges / graph.num_vertices) if len(graph) else 0.0
    mean_two_hop = float(pre.two_hop.mean()) if len(pre.two_hop) else 0.0
    return EngineContext(
        graph=graph,
        oracle=oracle if oracle is not None else pre.pml,
        two_hop=pre.two_hop,
        cost_model=CostModel(
            t_avg=pre.t_avg,
            t_lat=constants.t_lat,
            mean_degree=mean_degree,
            mean_two_hop=mean_two_hop,
        ),
    )
