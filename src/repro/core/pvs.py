"""PopulateVertexSet (PVS) — Algorithm 8 and its three search strategies.

Given a freshly processed query edge ``(q_i, q_j)`` with upper bound ``b``,
PVS fills the AIVS maps of the CAP index with every candidate pair
``(v_i, v_j) ∈ V_qi × V_qj`` such that ``dist(v_i, v_j) <= b``:

* ``b == 1`` — **neighbor search** (Algorithm 9): per candidate ``v_i``,
  choose *out-scan* (walk ``v_i``'s adjacency, filter by label + candidate
  membership) or *in-scan* (walk ``V_qj``, test adjacency) by the cost
  model of Lemma 5.3.
* ``b == 2`` — **two-hop search**: same structure, with the 2-hop
  neighborhood enumerated on the fly for out-scans and a sorted
  common-neighbor merge join for in-scans (Lemma 5.4); scan choice uses
  the precomputed 2-hop *counts*.
* ``b >= 3`` — **large-upper search**: all-pairs bounded-distance checks
  through the PML oracle (Lemma 5.5).

Pairs with ``v_i == v_j`` are skipped: the 1-1 mapping can never use them
and keeping them would let a candidate keep itself alive.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cap import CAPIndex
from repro.core.context import EngineContext
from repro.core.query import QueryEdge
from repro.indexing.twohop import two_hop_neighbors

__all__ = [
    "populate_vertex_set",
    "neighbor_search",
    "two_hop_search",
    "large_upper_search",
]


def populate_vertex_set(
    cap: CAPIndex,
    ctx: EngineContext,
    edge: QueryEdge,
    force_large_upper: bool = False,
) -> None:
    """Populate the AIVS maps of ``edge`` (Algorithm 8 dispatch).

    ``force_large_upper=True`` disables the bound-specialized searches and
    runs everything through the PML all-pairs path — the "1-Strategy" arm
    of Exp 1 (Fig. 5).
    """
    if force_large_upper:
        large_upper_search(cap, ctx, edge)
    elif edge.upper == 1:
        neighbor_search(cap, ctx, edge)
    elif edge.upper == 2:
        two_hop_search(cap, ctx, edge)
    else:
        large_upper_search(cap, ctx, edge)


def _log2(x: int) -> float:
    return math.log2(x) if x > 1 else 1.0


def _choose_out(ctx: EngineContext, cost_out: float, cost_in: float) -> bool:
    """Scan choice: the Lemma 5.3/5.4 cost model, or the ablation override."""
    if ctx.scan_override == "out":
        return True
    if ctx.scan_override == "in":
        return False
    return cost_out < cost_in


def neighbor_search(cap: CAPIndex, ctx: EngineContext, edge: QueryEdge) -> None:
    """Upper bound 1: AIVS via adjacency scans (Algorithm 9 / Lemma 5.3).

    Iterates the *smaller* candidate side (the relation is symmetric), so
    the per-edge work is ``min(|V_qi|, |V_qj|)`` scans — which is also what
    the pool's bound-aware cost estimate assumes.
    """
    qi, qj = edge.u, edge.v
    graph = ctx.graph
    counters = ctx.counters
    v_qi = cap.candidates(qi)
    v_qj = cap.candidates(qj)
    if len(v_qj) < len(v_qi):
        qi, qj = qj, qi
        v_qi, v_qj = v_qj, v_qi
    p_label = graph.label_frequency(_level_label(graph, v_qj))
    size_j = len(v_qj)
    log_size_j = _log2(size_j)

    for vi in v_qi:
        deg_vi = graph.degree(vi)
        cost_out = deg_vi + deg_vi * p_label * log_size_j
        cost_in = size_j * _log2(deg_vi)
        if _choose_out(ctx, cost_out, cost_in):
            counters.out_scans += 1
            for vj in graph.neighbors(vi):
                vj = int(vj)
                if vj != vi and vj in v_qj:
                    cap.add_pair(qi, qj, vi, vj)
                    counters.pairs_added += 1
        else:
            counters.in_scans += 1
            for vj in v_qj:
                if vj != vi and graph.has_edge(vi, vj):
                    cap.add_pair(qi, qj, vi, vj)
                    counters.pairs_added += 1


def two_hop_search(cap: CAPIndex, ctx: EngineContext, edge: QueryEdge) -> None:
    """Upper bound 2: AIVS via 2-hop scans (Lemma 5.4).

    Iterates the smaller candidate side, like :func:`neighbor_search`.
    """
    qi, qj = edge.u, edge.v
    graph = ctx.graph
    counters = ctx.counters
    v_qi = cap.candidates(qi)
    v_qj = cap.candidates(qj)
    if len(v_qj) < len(v_qi):
        qi, qj = qj, qi
        v_qi, v_qj = v_qj, v_qi
    p_label = graph.label_frequency(_level_label(graph, v_qj))
    size_j = len(v_qj)
    log_size_j = _log2(size_j)
    mean_deg = (2.0 * graph.num_edges / graph.num_vertices) if len(graph) else 0.0

    for vi in v_qi:
        twohop_vi = int(ctx.two_hop[vi])
        deg_vi = graph.degree(vi)
        cost_out = twohop_vi + twohop_vi * p_label * log_size_j
        cost_in = size_j * (deg_vi + mean_deg)
        if _choose_out(ctx, cost_out, cost_in):
            counters.out_scans += 1
            for vj in two_hop_neighbors(graph, vi):
                if vj != vi and vj in v_qj:
                    cap.add_pair(qi, qj, vi, vj)
                    counters.pairs_added += 1
        else:
            counters.in_scans += 1
            nbrs_vi = graph.neighbors(vi)
            for vj in v_qj:
                if vj == vi:
                    continue
                if _within_two_hops(graph, vi, vj, nbrs_vi):
                    cap.add_pair(qi, qj, vi, vj)
                    counters.pairs_added += 1


def _within_two_hops(graph, vi: int, vj: int, nbrs_vi: np.ndarray) -> bool:
    """``dist(vi, vj) <= 2`` via adjacency + sorted common-neighbor join."""
    nbrs_vj = graph.neighbors(vj)
    # Adjacent?  Both arrays are sorted; binary search the shorter probe.
    pos = int(np.searchsorted(nbrs_vi, vj))
    if pos < len(nbrs_vi) and int(nbrs_vi[pos]) == vj:
        return True
    # Common neighbor?  Merge-join (Lemma 5.4 charges deg(vi) + deg(vj)).
    i = j = 0
    len_i, len_j = len(nbrs_vi), len(nbrs_vj)
    while i < len_i and j < len_j:
        a, b = int(nbrs_vi[i]), int(nbrs_vj[j])
        if a == b:
            return True
        if a < b:
            i += 1
        else:
            j += 1
    return False


def large_upper_search(cap: CAPIndex, ctx: EngineContext, edge: QueryEdge) -> None:
    """Upper bound >= 3 (or forced): batched all-pairs checks (Lemma 5.5).

    One :meth:`~repro.core.context.EngineContext.within_many` call per
    edge replaces the |V_qi|·|V_qj| interpreter-level oracle loop; the
    qualifying pairs land in the CAP through one bulk
    :meth:`~repro.core.cap.CAPIndex.add_pairs`.  Diagonal pairs are
    skipped before the oracle (the 1-1 mapping can never use them) but
    still charged to ``distance_queries``, matching the Lemma 5.5 cost
    accounting this search always reported.
    """
    qi, qj = edge.u, edge.v
    upper = edge.upper
    # Candidate sets are iterated in their (deterministic) set order, the
    # same order the former per-pair double loop used — so oracle call
    # order, and therefore fault-injection schedules, are unchanged.
    v_qi = list(cap.candidates(qi))
    v_qj = list(cap.candidates(qj))
    counters = ctx.counters
    diagonal = len(cap.candidates(qi) & cap.candidates(qj))
    pairs = ctx.within_many(v_qi, v_qj, upper, skip_equal=True)
    counters.distance_queries += diagonal
    counters.pairs_added += cap.add_pairs(qi, qj, pairs)


def _level_label(graph, candidates: set[int]) -> object:
    """Label shared by a candidate level (levels are label-homogeneous)."""
    for v in candidates:
        return graph.label(v)
    return None
