"""Bounded 1-1 *p*-homomorphic (BPH) query model.

A BPH query ``Q_B = (V_B, E_B, L, λ)`` (paper Section 3.1) is a connected,
undirected, simple, vertex-labeled graph whose edges carry path-length
bounds ``[lower, upper]`` with ``1 <= lower <= upper``.  A set of distinct
data vertices is a match (Definition 3.1) when labels agree, the set has
one vertex per query vertex, and every query edge has a matching path whose
length falls within its bounds.

Unlike the data graph, the query is *mutable*: it is exactly the object a
user grows (and modifies) on the Query Panel, one vertex/edge at a time.
The matching order ``M`` records the order vertices were drawn in.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterator

from repro.errors import (
    BoundsError,
    QueryEdgeNotFoundError,
    QueryValidationError,
    QueryVertexNotFoundError,
)

__all__ = ["Bounds", "QueryVertex", "QueryEdge", "BPHQuery", "canonical_edge"]

Label = Hashable


def canonical_edge(u: int, v: int) -> tuple[int, int]:
    """Canonical key of the undirected query edge ``{u, v}``."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Bounds:
    """Path-length bounds ``[lower, upper]`` of a query edge.

    The paper's GUI defaults a fresh edge to ``[1, 1]``; with every edge at
    ``[1, 1]``, BPH matching reduces to subgraph isomorphism.
    """

    lower: int = 1
    upper: int = 1

    def __post_init__(self) -> None:
        if self.lower < 1:
            raise BoundsError(f"lower bound must be >= 1, got {self.lower}")
        if self.lower > self.upper:
            raise BoundsError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @property
    def is_default(self) -> bool:
        """True for the GUI default ``[1, 1]`` (edge-to-edge mapping)."""
        return self.lower == 1 and self.upper == 1

    def contains(self, length: int) -> bool:
        """Does a path of ``length`` satisfy these bounds?"""
        return self.lower <= length <= self.upper

    def __str__(self) -> str:
        return f"[{self.lower},{self.upper}]"


@dataclass(frozen=True)
class QueryVertex:
    """A query vertex: dense id + label dragged from the Attribute Panel."""

    id: int
    label: Label


@dataclass(frozen=True)
class QueryEdge:
    """A query edge with its bounds; ``(u, v)`` is stored canonically."""

    u: int
    v: int
    bounds: Bounds

    def __post_init__(self) -> None:
        if self.u > self.v:
            raise QueryValidationError(
                "QueryEdge endpoints must be canonical (u <= v); "
                "use BPHQuery.add_edge which canonicalizes"
            )

    @property
    def key(self) -> tuple[int, int]:
        """The canonical ``(u, v)`` pair identifying the edge."""
        return (self.u, self.v)

    @property
    def lower(self) -> int:
        """Shortcut for ``bounds.lower`` (paper notation ``e_q.lower``)."""
        return self.bounds.lower

    @property
    def upper(self) -> int:
        """Shortcut for ``bounds.upper`` (paper notation ``e_q.upper``)."""
        return self.bounds.upper

    def other_endpoint(self, q: int) -> int:
        """The endpoint that is not ``q``."""
        if q == self.u:
            return self.v
        if q == self.v:
            return self.u
        raise QueryVertexNotFoundError(q)

    def __str__(self) -> str:
        return f"(q{self.u}, q{self.v}){self.bounds}"


class BPHQuery:
    """Mutable BPH query graph.

    >>> q = BPHQuery()
    >>> a = q.add_vertex("BCL2"); b = q.add_vertex("CASP3")
    >>> _ = q.add_edge(a, b, lower=1, upper=3)
    >>> q.edge_between(a, b).upper
    3
    """

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self._vertices: dict[int, QueryVertex] = {}
        self._edges: dict[tuple[int, int], QueryEdge] = {}
        self._adjacency: dict[int, set[int]] = {}
        self._matching_order: list[int] = []

    # ------------------------------------------------------------------
    # Construction / mutation (mirrors GUI actions)
    # ------------------------------------------------------------------
    def add_vertex(self, label: Label, vertex_id: int | None = None) -> int:
        """Add a query vertex; returns its id.

        ``vertex_id`` lets callers (the GUI simulator, tests) pin explicit
        ids matching the paper's q1, q2, ... numbering; by default ids are
        allocated densely starting at 0.
        """
        if label is None:
            raise QueryValidationError("query vertex label must not be None")
        vid = vertex_id if vertex_id is not None else self._next_id()
        if vid in self._vertices:
            raise QueryValidationError(f"query vertex id {vid} already exists")
        self._vertices[vid] = QueryVertex(vid, label)
        self._adjacency[vid] = set()
        self._matching_order.append(vid)
        return vid

    def add_edge(self, u: int, v: int, lower: int = 1, upper: int = 1) -> QueryEdge:
        """Add the edge ``{u, v}`` with bounds ``[lower, upper]``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise QueryValidationError("self loops are not allowed in a BPH query")
        key = canonical_edge(u, v)
        if key in self._edges:
            raise QueryValidationError(f"query edge {key} already exists")
        edge = QueryEdge(key[0], key[1], Bounds(lower, upper))
        self._edges[key] = edge
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        return edge

    def remove_edge(self, u: int, v: int) -> QueryEdge:
        """Remove edge ``{u, v}``, returning the removed edge."""
        key = canonical_edge(u, v)
        edge = self._edges.pop(key, None)
        if edge is None:
            raise QueryEdgeNotFoundError(u, v)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        return edge

    def set_bounds(self, u: int, v: int, lower: int, upper: int) -> QueryEdge:
        """Replace the bounds of edge ``{u, v}``; returns the updated edge."""
        key = canonical_edge(u, v)
        if key not in self._edges:
            raise QueryEdgeNotFoundError(u, v)
        edge = QueryEdge(key[0], key[1], Bounds(lower, upper))
        self._edges[key] = edge
        return edge

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``|V_B|``."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """``|E_B|``."""
        return len(self._edges)

    def vertex(self, vid: int) -> QueryVertex:
        """The vertex with id ``vid``."""
        self._check_vertex(vid)
        return self._vertices[vid]

    def label(self, vid: int) -> Label:
        """``L(q)`` for query vertex ``vid``."""
        return self.vertex(vid).label

    def has_vertex(self, vid: int) -> bool:
        """True iff ``vid`` is a query vertex."""
        return vid in self._vertices

    def vertices(self) -> list[QueryVertex]:
        """All query vertices (insertion order)."""
        return [self._vertices[v] for v in self._matching_order]

    def vertex_ids(self) -> list[int]:
        """All query vertex ids (insertion order)."""
        return list(self._matching_order)

    def edges(self) -> list[QueryEdge]:
        """All query edges (insertion order)."""
        return list(self._edges.values())

    def edge_between(self, u: int, v: int) -> QueryEdge:
        """The edge joining ``u`` and ``v``."""
        key = canonical_edge(u, v)
        edge = self._edges.get(key)
        if edge is None:
            raise QueryEdgeNotFoundError(u, v)
        return edge

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is a query edge."""
        return canonical_edge(u, v) in self._edges

    def neighbors(self, vid: int) -> set[int]:
        """Query vertices adjacent to ``vid`` (copy)."""
        self._check_vertex(vid)
        return set(self._adjacency[vid])

    def incident_edges(self, vid: int) -> list[QueryEdge]:
        """Edges incident to ``vid``."""
        self._check_vertex(vid)
        return [self.edge_between(vid, w) for w in sorted(self._adjacency[vid])]

    @property
    def matching_order(self) -> list[int]:
        """``M`` — vertex ids in the order the user drew them (copy)."""
        return list(self._matching_order)

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the query graph is connected (vacuously for <= 1 vertex)."""
        if self.num_vertices <= 1:
            return True
        start = self._matching_order[0]
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for w in self._adjacency[u]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == self.num_vertices

    @property
    def is_subgraph_iso_query(self) -> bool:
        """True when every edge has default bounds ``[1, 1]``.

        Such a BPH query is exactly an exact-subgraph-search query
        (Section 4, "Generality of the framework").
        """
        return all(edge.bounds.is_default for edge in self._edges.values())

    def validate(self) -> None:
        """Check all invariants of a *complete* BPH query.

        A query under construction may be temporarily disconnected; this is
        invoked when the Run icon is clicked.
        """
        if self.num_vertices == 0:
            raise QueryValidationError("query has no vertices")
        if not self.is_connected():
            raise QueryValidationError("BPH query must be connected")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "BPHQuery":
        """Deep copy (bounds objects are immutable and shared)."""
        clone = BPHQuery(name=name or self.name)
        for vid in self._matching_order:
            clone.add_vertex(self._vertices[vid].label, vertex_id=vid)
        for edge in self._edges.values():
            clone.add_edge(edge.u, edge.v, edge.lower, edge.upper)
        return clone

    def _next_id(self) -> int:
        return max(self._vertices, default=-1) + 1

    def _check_vertex(self, vid: int) -> None:
        if vid not in self._vertices:
            raise QueryVertexNotFoundError(vid)

    def __iter__(self) -> Iterator[QueryVertex]:
        return iter(self.vertices())

    def __repr__(self) -> str:
        return (
            f"BPHQuery(name={self.name!r}, |V_B|={self.num_vertices}, "
            f"|E_B|={self.num_edges})"
        )
