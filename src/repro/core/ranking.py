"""Result ranking for the Results Panel.

The paper iterates results one small region at a time (Section 5.4); in
practice users see the *best* matches first.  This module provides ranking
schemes over validated :class:`ResultSubgraph` objects:

* ``compactness`` — total matching-path length over all query edges
  (shorter = tighter = first); the natural score for BPH results, where a
  query edge may stretch into a path.
* ``slack`` — total slack against the upper bounds (``Σ upper - length``,
  larger-first means "safest" matches first, i.e. those furthest from the
  bound that would prune them).
* ``spread`` — diameter of the matched vertex set under oracle distances
  (smaller first): matches living in one neighborhood read better on a
  small-region display.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.context import EngineContext
from repro.core.lowerbound import ResultSubgraph
from repro.core.query import BPHQuery
from repro.errors import ExperimentError

__all__ = ["rank_results", "compactness_score", "slack_score", "spread_score", "RANKINGS"]


def compactness_score(result: ResultSubgraph, query: BPHQuery, ctx: EngineContext) -> float:
    """Total matching-path length (lower is better)."""
    return float(sum(len(path) - 1 for path in result.paths.values()))


def slack_score(result: ResultSubgraph, query: BPHQuery, ctx: EngineContext) -> float:
    """Negative total slack vs. upper bounds (lower is better => most slack first)."""
    slack = 0
    for edge in query.edges():
        slack += edge.upper - result.path_length(edge.u, edge.v)
    return float(-slack)


def spread_score(result: ResultSubgraph, query: BPHQuery, ctx: EngineContext) -> float:
    """Diameter of the matched vertices under exact distances (lower first)."""
    vertices = sorted(set(result.assignment.values()))
    worst = 0
    for i, u in enumerate(vertices):
        for v in vertices[i + 1 :]:
            d = ctx.oracle.distance(u, v)
            if d > worst:
                worst = d
    return float(worst)


RANKINGS = {
    "compactness": compactness_score,
    "slack": slack_score,
    "spread": spread_score,
}


def rank_results(
    results: Iterable[ResultSubgraph],
    query: BPHQuery,
    ctx: EngineContext,
    scheme: str = "compactness",
    limit: int | None = None,
) -> list[ResultSubgraph]:
    """Sort results by ``scheme`` (ascending score = better), optionally capped.

    Ties break on the sorted assignment tuple, keeping the ordering
    deterministic run to run.
    """
    try:
        score = RANKINGS[scheme]
    except KeyError:
        raise ExperimentError(
            f"unknown ranking scheme {scheme!r}; known: {sorted(RANKINGS)}"
        ) from None
    ordered: Sequence[ResultSubgraph] = sorted(
        results,
        key=lambda r: (score(r, query, ctx), tuple(sorted(r.assignment.items()))),
    )
    return list(ordered[:limit] if limit is not None else ordered)
