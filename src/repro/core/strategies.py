"""CAP construction strategies: Immediate, Defer-to-Run, Defer-to-Idle.

A strategy is a *policy* plugged into the blender engine; it decides, for
each newly drawn query edge, whether to process it now (inside the current
GUI latency) or park it in the edge pool, and when pooled edges get their
turn:

* :class:`ImmediateStrategy` (IC, Algorithm 2) — always process now, in
  formulation order.
* :class:`DeferToRunStrategy` (DR, Algorithm 3) — pool expensive edges
  (Definition 5.8); drain the pool, cheapest first, only when Run is
  clicked.
* :class:`DeferToIdleStrategy` (DI, Algorithm 4) — like DR, but after every
  user action the strategy *probes* the pool (Algorithm 10): if the action
  left idle latency and the cheapest pooled edge now fits in it (candidate
  sets having shrunk through pruning), process it early.

Strategies only talk to the engine through the small surface used below
(``process_edge``, ``pool``, ``cap``, ``cost_model``), which keeps them
independently testable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.query import QueryEdge
from repro.utils.timing import TimeBudget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blender import BlenderEngine

__all__ = [
    "ConstructionStrategy",
    "ImmediateStrategy",
    "DeferToRunStrategy",
    "DeferToIdleStrategy",
    "make_strategy",
    "STRATEGY_NAMES",
]


class ConstructionStrategy:
    """Base policy; subclasses override the three hooks."""

    #: Short name used in experiment tables ("IC", "DR", "DI").
    name: str = "base"

    def on_new_edge(self, engine: "BlenderEngine", edge: QueryEdge) -> bool:
        """A new query edge was drawn.  Return True iff it was processed now."""
        raise NotImplementedError

    def on_idle(self, engine: "BlenderEngine", idle_seconds: float) -> None:
        """The current action finished with ``idle_seconds`` of latency left."""
        # Default: do nothing with idle time.

    def on_run(self, engine: "BlenderEngine") -> None:
        """Run was clicked: complete CAP construction (drain the pool)."""
        engine.drain_pool()


class ImmediateStrategy(ConstructionStrategy):
    """IC — process every edge the moment it is drawn (Algorithm 2)."""

    name = "IC"

    def on_new_edge(self, engine: "BlenderEngine", edge: QueryEdge) -> bool:
        engine.process_edge(edge)
        return True


class _DeferringStrategy(ConstructionStrategy):
    """Shared new-edge logic of DR and DI (Algorithm 3, lines 6-11)."""

    def on_new_edge(self, engine: "BlenderEngine", edge: QueryEdge) -> bool:
        model = engine.cost_model
        n_u = engine.cap.candidate_count(edge.u)
        n_v = engine.cap.candidate_count(edge.v)
        if not model.is_expensive(n_u, n_v, edge.upper):
            engine.process_edge(edge)
            return True
        engine.pool.insert(edge)
        engine.ctx.counters.edges_deferred += 1
        return False


class DeferToRunStrategy(_DeferringStrategy):
    """DR — expensive edges wait for the Run click (Algorithm 3)."""

    name = "DR"


class DeferToIdleStrategy(_DeferringStrategy):
    """DI — expensive edges may run early in leftover GUI latency (Alg. 4)."""

    name = "DI"

    def on_idle(self, engine: "BlenderEngine", idle_seconds: float) -> None:
        if idle_seconds <= 0.0 or not engine.pool:
            return
        engine.probe_pool(TimeBudget(idle_seconds))


#: Strategy registry for config-driven experiments.
STRATEGY_NAMES = ("IC", "DR", "DI")


def make_strategy(name: str) -> ConstructionStrategy:
    """Instantiate a strategy by its short name (case-insensitive).

    Accepts the paper's abbreviations (IC / DR / DI) and the long names
    (immediate / defer-to-run / defer-to-idle).
    """
    normalized = name.strip().lower().replace("_", "-")
    table = {
        "ic": ImmediateStrategy,
        "immediate": ImmediateStrategy,
        "dr": DeferToRunStrategy,
        "defer-to-run": DeferToRunStrategy,
        "di": DeferToIdleStrategy,
        "defer-to-idle": DeferToIdleStrategy,
    }
    try:
        return table[normalized]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(table)}"
        ) from None
