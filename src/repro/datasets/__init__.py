"""Named dataset configurations with build caching."""

from repro.datasets.registry import (
    DatasetBundle,
    DatasetConfig,
    DATASET_NAMES,
    SCALES,
    dataset_config,
    get_dataset,
    clear_memory_cache,
)

__all__ = [
    "DatasetBundle",
    "DatasetConfig",
    "DATASET_NAMES",
    "SCALES",
    "dataset_config",
    "get_dataset",
    "clear_memory_cache",
]
