"""Dataset registry: seeded, cached emulations of the paper's datasets.

Three datasets — ``wordnet``, ``dblp``, ``flickr`` — at two scales:

* ``tiny`` — seconds-fast builds for the test suite;
* ``small`` — the default benchmark scale.

Scaling rules (DESIGN.md, substitution table):

* |V| shrinks to a few percent of the paper's datasets (pure-Python PML
  cannot hold the originals interactively);
* the label alphabet shrinks *with* |V| so that the per-label candidate-set
  size |V_q| keeps its paper-relative magnitude — |V_q| (together with the
  scaled GUI latency) is what the expensive-edge predicate of Def. 5.8
  actually sees, so preserving it preserves which edges get deferred:
  WordNet's noun level is enormous (always expensive), DBLP levels are
  borderline (expensive at upper >= 3), Flickr levels are tiny (never
  expensive);
* GUI latency constants shrink by ``latency_scale``, mirroring that
  compute costs shrank with the graphs.

Preprocessing (PML + 2-hop counts + t_avg) is expensive enough to cache:
an in-process memo plus an on-disk pickle cache (``~/.cache/repro-boomer``
or ``$REPRO_CACHE_DIR``) keyed by the full configuration.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.core.context import EngineContext
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import PreprocessResult, make_context, preprocess
from repro.errors import DatasetError
from repro.graph.generators import dblp_like, flickr_like, wordnet_like
from repro.graph.graph import Graph

__all__ = [
    "DatasetConfig",
    "DatasetBundle",
    "DATASET_NAMES",
    "SCALES",
    "dataset_config",
    "get_dataset",
    "clear_memory_cache",
]

DATASET_NAMES = ("wordnet", "dblp", "flickr")
SCALES = ("tiny", "small")

_CACHE_VERSION = 1
_memory_cache: dict[tuple, "DatasetBundle"] = {}


@dataclass(frozen=True)
class DatasetConfig:
    """Fully pinned-down recipe for one dataset at one scale."""

    name: str
    scale: str
    num_vertices: int
    num_labels: int | None  # None = the generator's own labeling (wordnet)
    seed: int
    latency_scale: float

    @property
    def cache_key(self) -> str:
        """Stable string identifying this configuration on disk."""
        return (
            f"{self.name}-{self.scale}-n{self.num_vertices}"
            f"-l{self.num_labels}-s{self.seed}-v{_CACHE_VERSION}"
        )


#: (name, scale) -> (num_vertices, num_labels, latency_scale).
#: Label counts follow the per-label-density rule explained in the module
#: docstring; latency scales shrink t_lat so the expensive/inexpensive
#: boundary lands on the same datasets as in the paper.
_PRESETS: dict[tuple[str, str], tuple[int, int | None, float]] = {
    ("wordnet", "tiny"): (350, None, 0.02),
    # Latency scales are calibrated so that the expensive-edge cost /
    # formulation-time ratio lands in the paper's regime (their WordNet Q2:
    # ~347s of e1 work vs ~28s of QFT, ratio ~12).  Pure-Python compute on
    # the emulated graphs is faster relative to the paper's testbed, so the
    # latency shrinks harder than |V| does.
    ("wordnet", "small"): (2400, None, 0.02),
    ("dblp", "tiny"): (500, 4, 0.02),
    # dblp's latency scale is tighter than wordnet's: its per-label
    # candidate sets are ~5x smaller (paper ratio), so for its expensive
    # edges to overflow formulation latency — the regime Figs. 7/8 show on
    # DBLP — the latency window must shrink accordingly.
    ("dblp", "small"): (6000, 18, 0.03),
    ("flickr", "tiny"): (700, 22, 0.02),
    ("flickr", "small"): (9000, 280, 0.1),
}


def dataset_config(name: str, scale: str = "small") -> DatasetConfig:
    """The registry's configuration for ``(name, scale)``."""
    key = (name.lower(), scale.lower())
    if key not in _PRESETS:
        raise DatasetError(
            f"unknown dataset/scale {key}; datasets: {DATASET_NAMES}, "
            f"scales: {SCALES}"
        )
    n, labels, latency_scale = _PRESETS[key]
    return DatasetConfig(
        name=key[0],
        scale=key[1],
        num_vertices=n,
        num_labels=labels,
        seed=42,
        latency_scale=latency_scale,
    )


@dataclass
class DatasetBundle:
    """A built dataset: graph + preprocessing + scaled latency constants."""

    config: DatasetConfig
    graph: Graph
    pre: PreprocessResult
    latency: GUILatencyConstants

    def make_context(self, oracle=None) -> EngineContext:
        """Fresh :class:`EngineContext` (fresh counters, shared index)."""
        return make_context(self.pre, latency=self.latency, oracle=oracle)

    @property
    def name(self) -> str:
        """Dataset name (``wordnet`` / ``dblp`` / ``flickr``)."""
        return self.config.name


def _build_graph(config: DatasetConfig) -> Graph:
    if config.name == "wordnet":
        return wordnet_like(config.num_vertices, seed=config.seed)
    if config.name == "dblp":
        return dblp_like(
            config.num_vertices, seed=config.seed, num_labels=config.num_labels or 100
        )
    if config.name == "flickr":
        return flickr_like(
            config.num_vertices, seed=config.seed, num_labels=config.num_labels or 3000
        )
    raise DatasetError(f"no generator for dataset {config.name!r}")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-boomer"


def get_dataset(
    name: str, scale: str = "small", use_disk_cache: bool = True
) -> DatasetBundle:
    """Build (or load from cache) the dataset bundle for ``(name, scale)``.

    Generation + preprocessing is deterministic given the config, so cache
    hits are exact replicas of fresh builds.
    """
    config = dataset_config(name, scale)
    memo_key = (config.cache_key,)
    if memo_key in _memory_cache:
        return _memory_cache[memo_key]

    cache_path = _cache_dir() / f"{config.cache_key}.pkl"
    pre: PreprocessResult | None = None
    if use_disk_cache and cache_path.exists():
        try:
            with cache_path.open("rb") as handle:
                pre = pickle.load(handle)
        except Exception:  # corrupt cache: rebuild silently
            pre = None

    if pre is None:
        graph = _build_graph(config)
        pre = preprocess(graph, seed=config.seed)
        if use_disk_cache:
            try:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                with cache_path.open("wb") as handle:
                    pickle.dump(pre, handle, protocol=pickle.HIGHEST_PROTOCOL)
            except OSError:
                pass  # read-only filesystems just skip the disk cache

    bundle = DatasetBundle(
        config=config,
        graph=pre.graph,
        pre=pre,
        latency=GUILatencyConstants().scaled(config.latency_scale),
    )
    _memory_cache[memo_key] = bundle
    return bundle


def clear_memory_cache() -> None:
    """Drop in-process bundles (tests use this to force rebuild paths)."""
    _memory_cache.clear()
