"""Dataset registry: seeded, cached emulations of the paper's datasets.

Three datasets — ``wordnet``, ``dblp``, ``flickr`` — at the scales the
presets below register (the :data:`SCALES` tuple is *derived* from the
preset table, never hand-maintained):

* ``tiny`` — seconds-fast builds for the test suite;
* ``small`` — the default benchmark scale;
* ``paper`` — the source paper's actual dimensions (currently Flickr,
  1.8M vertices / ~23M edges / 3000 labels).  Paper-scale bundles are
  built for the mmap storage backend: the basis is materialized once on
  disk (:func:`materialize_basis`) and served demand-paged under a byte
  budget — holding it fully resident is exactly what
  :mod:`repro.storage` exists to avoid.

Scaling rules (DESIGN.md, substitution table):

* |V| shrinks to a few percent of the paper's datasets at tiny/small
  (pure-Python PML cannot build the originals interactively);
* the label alphabet shrinks *with* |V| so that the per-label
  candidate-set size |V_q| keeps its paper-relative magnitude — |V_q|
  (together with the scaled GUI latency) is what the expensive-edge
  predicate of Def. 5.8 actually sees, so preserving it preserves which
  edges get deferred: WordNet's noun level is enormous (always
  expensive), DBLP levels are borderline (expensive at upper >= 3),
  Flickr levels are tiny (never expensive);
* GUI latency constants shrink by ``latency_scale``, mirroring that
  compute costs shrank with the graphs.  The paper preset keeps 1.0 —
  nothing shrank.

Preprocessing (PML + 2-hop counts + t_avg) is expensive enough to cache:
an in-process memo plus an on-disk pickle cache (``~/.cache/repro-boomer``
or ``$REPRO_CACHE_DIR``) keyed by the full configuration.  Cache files
are a versioned envelope ``{"version", "finalized", "pre"}`` — the
``finalized`` flag persists that the PML label CSR in the pickle is
already frozen, so loads (and mmap bases saved from them) never re-run
:meth:`~repro.indexing.pml.PrunedLandmarkLabeling._finalize_labels`.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.core.context import EngineContext
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import PreprocessResult, make_context, preprocess
from repro.errors import DatasetError
from repro.graph.generators import dblp_like, flickr_like, wordnet_like
from repro.graph.graph import Graph

__all__ = [
    "DatasetConfig",
    "DatasetBundle",
    "DATASET_NAMES",
    "SCALES",
    "dataset_config",
    "get_dataset",
    "materialize_basis",
    "clear_memory_cache",
]

_CACHE_VERSION = 2
_memory_cache: dict[tuple, "DatasetBundle"] = {}


@dataclass(frozen=True)
class DatasetConfig:
    """Fully pinned-down recipe for one dataset at one scale."""

    name: str
    scale: str
    num_vertices: int
    num_labels: int | None  # None = the generator's own labeling (wordnet)
    seed: int
    latency_scale: float
    #: Target |E|/|V| override; None keeps the generator's default.  Only
    #: the paper-scale Flickr preset sets it (the full ~12.8 ratio; the
    #: reduced scales cap density at 8 to keep PML builds interactive).
    edge_ratio: float | None = None

    @property
    def cache_key(self) -> str:
        """Stable string identifying this configuration on disk."""
        ratio = "" if self.edge_ratio is None else f"-r{self.edge_ratio}"
        return (
            f"{self.name}-{self.scale}-n{self.num_vertices}"
            f"-l{self.num_labels}-s{self.seed}{ratio}-v{_CACHE_VERSION}"
        )


#: (name, scale) -> (num_vertices, num_labels, latency_scale, edge_ratio).
#: Label counts follow the per-label-density rule explained in the module
#: docstring; latency scales shrink t_lat so the expensive/inexpensive
#: boundary lands on the same datasets as in the paper.
_PRESETS: dict[tuple[str, str], tuple[int, int | None, float, float | None]] = {
    ("wordnet", "tiny"): (350, None, 0.02, None),
    # Latency scales are calibrated so that the expensive-edge cost /
    # formulation-time ratio lands in the paper's regime (their WordNet Q2:
    # ~347s of e1 work vs ~28s of QFT, ratio ~12).  Pure-Python compute on
    # the emulated graphs is faster relative to the paper's testbed, so the
    # latency shrinks harder than |V| does.
    ("wordnet", "small"): (2400, None, 0.02, None),
    ("dblp", "tiny"): (500, 4, 0.02, None),
    # dblp's latency scale is tighter than wordnet's: its per-label
    # candidate sets are ~5x smaller (paper ratio), so for its expensive
    # edges to overflow formulation latency — the regime Figs. 7/8 show on
    # DBLP — the latency window must shrink accordingly.
    ("dblp", "small"): (6000, 18, 0.03, None),
    ("flickr", "tiny"): (700, 22, 0.02, None),
    ("flickr", "small"): (9000, 280, 0.1, None),
    # The paper's Flickr itself: 1.8M vertices at the full ~12.8 edge
    # ratio (~23M edges) and the full 3000-label alphabet; latency is
    # unscaled.  Build it through `repro.storage` (mmap backend) — see
    # benchmarks/bench_scale.py and docs/STORAGE.md.
    ("flickr", "paper"): (1_800_000, 3000, 1.0, 12.8),
}

DATASET_NAMES: tuple[str, ...] = tuple(
    dict.fromkeys(name for name, _ in _PRESETS)
)
SCALES: tuple[str, ...] = tuple(
    dict.fromkeys(scale for _, scale in _PRESETS)
)


def dataset_config(name: str, scale: str = "small") -> DatasetConfig:
    """The registry's configuration for ``(name, scale)``.

    The single validation point for dataset/scale pairs: CLI argument
    checks and programmatic callers all route here, and the error lists
    the registered presets dynamically (a new preset needs no second
    error-message edit anywhere).
    """
    key = (name.lower(), scale.lower())
    if key not in _PRESETS:
        presets = ", ".join(f"{n}/{s}" for n, s in _PRESETS)
        raise DatasetError(
            f"unknown dataset/scale {key}; registered presets: {presets}"
        )
    n, labels, latency_scale, edge_ratio = _PRESETS[key]
    return DatasetConfig(
        name=key[0],
        scale=key[1],
        num_vertices=n,
        num_labels=labels,
        seed=42,
        latency_scale=latency_scale,
        edge_ratio=edge_ratio,
    )


@dataclass
class DatasetBundle:
    """A built dataset: graph + preprocessing + scaled latency constants."""

    config: DatasetConfig
    graph: Graph
    pre: PreprocessResult
    latency: GUILatencyConstants

    def make_context(self, oracle=None, *, basis=None) -> EngineContext:
        """Fresh :class:`EngineContext` (fresh counters, shared index).

        ``basis=`` builds the context over an
        :class:`~repro.storage.basis.EngineBasis` instead of the
        bundle's resident preprocessing — the storage seam callers use
        to serve this dataset from shm or an mmap directory.  ``oracle``
        (ablations only) is incompatible with ``basis``.
        """
        if basis is not None:
            if oracle is not None:
                raise DatasetError(
                    "make_context takes either oracle= or basis=, not both"
                )
            from repro.storage import context_from_basis

            return context_from_basis(basis)
        return make_context(self.pre, latency=self.latency, oracle=oracle)

    @property
    def name(self) -> str:
        """Dataset name (``wordnet`` / ``dblp`` / ``flickr``)."""
        return self.config.name


def _build_graph(config: DatasetConfig) -> Graph:
    if config.name == "wordnet":
        return wordnet_like(config.num_vertices, seed=config.seed)
    if config.name == "dblp":
        return dblp_like(
            config.num_vertices, seed=config.seed, num_labels=config.num_labels or 100
        )
    if config.name == "flickr":
        return flickr_like(
            config.num_vertices,
            seed=config.seed,
            num_labels=config.num_labels or 3000,
            edge_ratio=config.edge_ratio,
        )
    raise DatasetError(f"no generator for dataset {config.name!r}")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-boomer"


def _load_cache_envelope(cache_path: Path) -> PreprocessResult | None:
    """Read one disk-cache file; None on any corruption (silent rebuild)."""
    try:
        with cache_path.open("rb") as handle:
            payload = pickle.load(handle)
    except Exception:
        return None
    if isinstance(payload, PreprocessResult):  # pre-envelope cache file
        return payload
    if not isinstance(payload, dict) or "pre" not in payload:
        return None
    pre = payload["pre"]
    if not isinstance(pre, PreprocessResult):
        return None
    if payload.get("finalized"):
        # The pickled label CSR is already frozen; make that explicit so
        # no process re-finalizes what the cache already holds.
        pre.pml._finalized = True
    return pre


def get_dataset(
    name: str, scale: str = "small", use_disk_cache: bool = True
) -> DatasetBundle:
    """Build (or load from cache) the dataset bundle for ``(name, scale)``.

    Generation + preprocessing is deterministic given the config, so cache
    hits are exact replicas of fresh builds.
    """
    config = dataset_config(name, scale)
    memo_key = (config.cache_key,)
    if memo_key in _memory_cache:
        return _memory_cache[memo_key]

    cache_path = _cache_dir() / f"{config.cache_key}.pkl"
    pre: PreprocessResult | None = None
    if use_disk_cache and cache_path.exists():
        pre = _load_cache_envelope(cache_path)

    if pre is None:
        graph = _build_graph(config)
        pre = preprocess(graph, seed=config.seed)
        pre.pml._finalize_labels()  # freeze before caching (idempotent)
        if use_disk_cache:
            envelope = {
                "version": _CACHE_VERSION,
                "finalized": bool(getattr(pre.pml, "_finalized", False)),
                "pre": pre,
            }
            try:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                with cache_path.open("wb") as handle:
                    pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            except OSError:
                pass  # read-only filesystems just skip the disk cache

    bundle = DatasetBundle(
        config=config,
        graph=pre.graph,
        pre=pre,
        latency=GUILatencyConstants().scaled(config.latency_scale),
    )
    _memory_cache[memo_key] = bundle
    return bundle


def materialize_basis(
    bundle: DatasetBundle, directory: str | Path | None = None
) -> Path:
    """Save (or reuse) the bundle's on-disk mmap basis; returns its path.

    The default location is ``<cache dir>/<cache_key>.basis`` — next to
    the pickle cache, keyed identically, so one preprocessing run feeds
    both the resident and the mmap service paths.  An existing valid
    basis is reused as-is (manifest-validated, never rebuilt).
    """
    from repro.errors import BasisFormatError
    from repro.storage import basis_from_context, save_basis
    from repro.storage.mmapstore import read_meta

    path = (
        Path(directory)
        if directory is not None
        else _cache_dir() / f"{bundle.config.cache_key}.basis"
    )
    if path.exists():
        try:
            read_meta(path)
            return path
        except BasisFormatError:
            pass  # partial/stale save: rewrite below
    basis = basis_from_context(bundle.make_context())
    return save_basis(basis, path)


def clear_memory_cache() -> None:
    """Drop in-process bundles (tests use this to force rebuild paths)."""
    _memory_cache.clear()
