"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the failure domain (graph construction, query
validation, index usage, ...) when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphBuildError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "GraphIOError",
    "QueryError",
    "QueryValidationError",
    "QueryVertexNotFoundError",
    "QueryEdgeNotFoundError",
    "BoundsError",
    "QueryFileError",
    "IndexError_",
    "IndexNotBuiltError",
    "StaleIndexError",
    "GraphMutationError",
    "CAPError",
    "CAPStateError",
    "SessionError",
    "ActionError",
    "LatencyConfigError",
    "DatasetError",
    "ExperimentError",
    "ResilienceError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    "CAPCorruptionError",
    "DegradedModeError",
    "ServiceError",
    "SessionNotFoundError",
    "SessionEvictedError",
    "AdmissionError",
    "OverloadConfigError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "CheckpointError",
    "ProtocolError",
    "WorkerPoolError",
    "WorkerDiedError",
    "RelayedError",
    "StorageError",
    "BasisFormatError",
    "AnalysisError",
    "LintUsageError",
    "LockOrderViolationError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library.

    Every class carries a stable machine-readable ``code`` (what the v2
    wire protocol and scripts switch on); subclasses override it, the
    base matches the protocol's generic ``engine_error``.  ``retryable``
    is the class-level retry verdict mirrored by the wire protocol's
    ``_RETRYABLE`` registry — boomerlint R9 cross-checks the two, so a
    class flipping the flag without a registry update fails the lint
    gate instead of silently changing client retry behavior.
    """

    code: str = "engine_error"
    retryable: bool = False


# --------------------------------------------------------------------------
# Graph substrate
# --------------------------------------------------------------------------
class GraphError(ReproError):
    """Base class for graph-substrate failures."""


class GraphBuildError(GraphError):
    """Raised when a graph cannot be assembled from the provided pieces.

    Typical causes: self loops, parallel edges in simple-graph mode, labels
    missing for some vertices, or inconsistent vertex ids.
    """


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex id the graph lacks."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge the graph lacks."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class GraphIOError(GraphError):
    """Raised when a graph cannot be parsed from or serialized to a file."""


class GraphMutationError(GraphError, ValueError):
    """Raised when an edge update cannot be applied to the data graph.

    Covers self loops, inserting an edge that already exists, and
    deleting an edge that does not — the same simplicity invariants
    :class:`~repro.graph.builder.GraphBuilder` enforces at build time,
    re-checked by :mod:`repro.updates` before any in-place mutation, so
    a refused update leaves the graph (and its epoch) untouched.
    """

    code = "graph_mutation_invalid"


# --------------------------------------------------------------------------
# BPH query model
# --------------------------------------------------------------------------
class QueryError(ReproError):
    """Base class for BPH-query failures."""


class QueryValidationError(QueryError):
    """Raised when a BPH query violates a structural invariant.

    BPH queries must be simple, connected, undirected graphs whose edges
    carry bounds ``[lower, upper]`` with ``1 <= lower <= upper``.
    """


class QueryVertexNotFoundError(QueryError, KeyError):
    """Raised when a query-vertex id is referenced but absent."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"query vertex {vertex!r} is not in the query")
        self.vertex = vertex


class QueryEdgeNotFoundError(QueryError, KeyError):
    """Raised when a query-edge is referenced but absent."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"query edge ({u!r}, {v!r}) is not in the query")
        self.edge = (u, v)


class BoundsError(QueryError, ValueError):
    """Raised for malformed ``[lower, upper]`` path-length bounds."""


class QueryFileError(QueryError, ValueError):
    """Raised when a textual query file cannot be parsed.

    Subclasses :class:`ValueError` so legacy callers that caught the
    untyped parse errors keep working; the stable ``code`` lets scripts
    and the wire protocol distinguish a malformed query file from other
    query failures.
    """

    code = "query_file_invalid"


# --------------------------------------------------------------------------
# Indexes (PML, CAP)
# --------------------------------------------------------------------------
class IndexError_(ReproError):
    """Base class for index failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class IndexNotBuiltError(IndexError_):
    """Raised when an index is queried before :meth:`build` completed."""


class StaleIndexError(IndexError_):
    """Raised when an index (or stored basis) describes an older graph epoch.

    The graph moved — :mod:`repro.updates` bumped
    :attr:`~repro.graph.graph.Graph.epoch` — and a derived structure
    (PML labels, a saved :class:`~repro.storage.basis.EngineBasis`) was
    not maintained to match.  Serving from it would silently return
    pre-mutation distances, so every epoch-checked read path raises this
    instead.  ``expected`` is the graph's current epoch, ``actual`` the
    epoch the stale structure was built at.
    """

    code = "stale_index"

    def __init__(
        self,
        what: str,
        expected: int | None = None,
        actual: int | None = None,
    ) -> None:
        detail = ""
        if expected is not None and actual is not None:
            detail = f" (graph epoch {expected}, index epoch {actual})"
        super().__init__(f"{what} is stale{detail}; rebuild or apply updates")
        self.expected = expected
        self.actual = actual


class CAPError(ReproError):
    """Base class for CAP-index failures."""


class CAPStateError(CAPError):
    """Raised when a CAP operation is invalid for the index's current state.

    Example: processing a query edge whose endpoints have not been added,
    or enumerating results while unprocessed edges remain in the pool.
    """


# --------------------------------------------------------------------------
# Visual session / actions
# --------------------------------------------------------------------------
class SessionError(ReproError):
    """Base class for visual-session failures."""


class ActionError(SessionError):
    """Raised for malformed or out-of-order GUI actions."""


class LatencyConfigError(SessionError, ValueError):
    """Raised for invalid GUI latency-model parameters.

    Subclasses :class:`ValueError` for backward compatibility with
    callers that validated latency configuration generically; the stable
    ``code`` identifies the failure domain.
    """

    code = "latency_config_invalid"


# --------------------------------------------------------------------------
# Resilience (retry / deadline / degradation — see repro.resilience)
# --------------------------------------------------------------------------
class ResilienceError(ReproError):
    """Base class for failures of the resilience machinery itself.

    Raised when the defensive layer (retries, deadlines, CAP repair,
    degradation) could not mask an underlying component failure.  Sessions
    never silently return wrong matches: they either complete, degrade to
    the BU baseline, or raise a subclass of this error.
    """


class DeadlineExceededError(ResilienceError, TimeoutError):
    """Raised at a cooperative checkpoint once a :class:`Deadline` expires.

    Carries the phase that overran so callers (and the CLI, which maps this
    to exit code 3) can report *where* the budget went.
    """

    def __init__(self, context: str = "operation", limit: float | None = None) -> None:
        detail = f" (budget {limit:.3f}s)" if limit is not None else ""
        super().__init__(f"deadline exceeded during {context}{detail}")
        self.context = context
        self.limit = limit


class RetryExhaustedError(ResilienceError):
    """Raised when a :class:`RetryPolicy` runs out of attempts.

    ``last_error`` holds the final underlying exception (also chained as
    ``__cause__``); ``attempts`` is how many times the operation was tried.
    """

    def __init__(self, operation: str, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"{operation} failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error


class CAPCorruptionError(ResilienceError, CAPError):
    """Raised when CAP index integrity is violated and cannot be repaired.

    Produced by :class:`repro.resilience.CAPInvariantChecker` when an audit
    finds corrupted query-edge entries (asymmetric AIVS, dead candidates,
    out-of-bound pairs) that quarantine + rebuild could not restore.
    """

    def __init__(self, message: str, corrupt_edges: list[tuple[int, int]] | None = None) -> None:
        super().__init__(message)
        self.corrupt_edges = list(corrupt_edges or [])


class DegradedModeError(ResilienceError):
    """Raised when every rung of the degradation ladder failed.

    The CAP path failed, and so did the BU fallback (with the session
    oracle *and* with the index-free BFS oracle) — there is no correct
    answer left to return.
    """


# --------------------------------------------------------------------------
# Multi-session service (see repro.service)
# --------------------------------------------------------------------------
class ServiceError(ReproError):
    """Base class for multi-session query-service failures."""


class SessionNotFoundError(ServiceError, KeyError):
    """Raised when a service operation references an unknown session id."""

    def __init__(self, session_id: str) -> None:
        super().__init__(f"session {session_id!r} does not exist")
        self.session_id = session_id


class SessionEvictedError(ServiceError):
    """Raised when the referenced session was evicted by admission control.

    Distinct from :class:`SessionNotFoundError` so clients can tell a typo
    from a session the server reclaimed under memory pressure (the client
    should recreate the session and replay its formulation).
    """

    retryable = True

    def __init__(self, session_id: str, reason: str = "memory pressure") -> None:
        super().__init__(f"session {session_id!r} was evicted ({reason})")
        self.session_id = session_id
        self.reason = reason


class AdmissionError(ServiceError):
    """Raised when the service refuses to admit (or grow) a session.

    The manager only admits work it can host within its session and
    CAP-entry budgets; when every other session is active (unevictable)
    and the budget is exhausted, creation is refused rather than letting
    one tenant push the process into swap.
    """

    retryable = True


class OverloadConfigError(ServiceError, ValueError):
    """Raised for an invalid :class:`repro.service.OverloadPolicy`.

    Watermarks must lie in ``(0, 1]`` and hints/depths must be
    non-negative; a policy that cannot be enforced is refused at
    construction, not discovered mid-shed.
    """

    code = "overload_config"


class ServiceOverloadedError(ServiceError):
    """Raised when backpressure sheds work instead of admitting it.

    Distinct from :class:`AdmissionError` (a hard refusal: the budget is
    exhausted and nothing will free it) — overload shedding is *transient*
    by construction: the service is past a configured watermark (open
    sessions, CAP-entry usage, in-flight requests) or draining for
    shutdown, and the condition clears as in-flight work completes.  The
    ``retry_after_ms`` hint tells well-behaved clients how long to back
    off before retrying; :class:`repro.service.client.ServiceClient`
    honors it through its :class:`~repro.resilience.RetryPolicy`.
    """

    code = "overloaded"
    retryable = True

    def __init__(
        self,
        message: str,
        reason: str = "overload",
        retry_after_ms: int = 50,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_ms = int(retry_after_ms)


class ServiceTimeoutError(ServiceError, TimeoutError):
    """Raised client-side when a service read/write exceeds its socket
    timeout.

    A hung or partitioned server must surface as a *typed, retryable*
    error instead of blocking the client forever; the bound comes from
    the :class:`~repro.service.client.ServiceClient` socket timeout.
    ``retryable`` mirrors the wire protocol's error-envelope hint so the
    client retry path treats local timeouts like remote shedding.
    """

    code = "service_timeout"
    retryable = True

    def __init__(self, operation: str, timeout_seconds: float | None) -> None:
        bound = (
            f" after {timeout_seconds:.1f}s" if timeout_seconds is not None else ""
        )
        super().__init__(f"service {operation!r} timed out{bound}")
        self.operation = operation
        self.timeout_seconds = timeout_seconds


class CheckpointError(ServiceError):
    """Raised when a session checkpoint cannot be captured or restored.

    Covers malformed serialized checkpoints (unknown fields, wrong
    format version) and restore-time contract violations (restoring over
    a live session id, replaying a checkpoint whose actions no longer
    apply).
    """

    code = "checkpoint_invalid"


class ProtocolError(ServiceError, ValueError):
    """Raised for malformed wire requests (bad JSON, unknown op, ...)."""


class WorkerPoolError(ServiceError):
    """Raised for worker-pool configuration and lifecycle failures.

    Covers misconfiguration (zero workers, an oracle the pool cannot
    publish over shared memory) and dispatcher-side contract breaches
    (dispatching into a closed pool).
    """

    code = "worker_pool"


class WorkerDiedError(WorkerPoolError):
    """Raised when a request was in flight on a worker that died.

    Transient by contract: the dispatcher respawns the worker and
    requeues its sessions onto healthy processes from their disk
    checkpoints, so a retry normally lands on the restored session.
    Clients holding a :class:`~repro.resilience.RetryPolicy` retry it
    like an overload shed.
    """

    code = "worker_died"
    retryable = True

    def __init__(self, worker: int, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"worker {worker} died with a request in flight{suffix}")
        self.worker = worker


class RelayedError(ServiceError):
    """A typed worker-side failure rehydrated in the dispatcher.

    Worker processes report failures over the control pipe as the v1
    error payload plus the stable v2 code (exceptions themselves are not
    pickled — custom ``__init__`` signatures make that fragile).  The
    dispatcher wraps that structure in this carrier; the wire protocol
    renders it in either dialect exactly as if the original exception
    had been raised in-process (see :func:`repro.service.protocol.error_code`).
    """

    def __init__(
        self, code: str, payload: dict, retryable: bool = False
    ) -> None:
        super().__init__(str(payload.get("message", code)))
        self.code = code
        self.payload = dict(payload)
        self.retryable = retryable


# --------------------------------------------------------------------------
# Engine-basis storage (see repro.storage)
# --------------------------------------------------------------------------
class StorageError(ServiceError):
    """Raised for engine-basis storage failures (see :mod:`repro.storage`).

    Covers backend misconfiguration (unknown backend name, a byte budget
    that cannot hold a single page), un-materializable bases (an oracle
    with no frozen label arrays to export), and on-disk basis directories
    that cannot be written.  Subclasses :class:`ServiceError` because the
    storage seam is wire-visible: ``serve --storage mmap`` surfaces these
    through the v2 error envelope.
    """

    code = "storage_error"


class BasisFormatError(StorageError):
    """Raised when an on-disk engine basis cannot be opened.

    A missing or unparsable ``meta.json``, an unsupported format version,
    or an array file whose dtype/shape disagrees with the manifest all
    land here — the basis directory is treated as untrusted input, never
    half-loaded.
    """

    code = "basis_format_invalid"


# --------------------------------------------------------------------------
# Static analysis / invariant checking (see repro.analysis)
# --------------------------------------------------------------------------
class AnalysisError(ReproError):
    """Base class for failures of the :mod:`repro.analysis` machinery."""

    code = "analysis_error"


class LintUsageError(AnalysisError, ValueError):
    """Raised for invalid lint-engine configuration (unknown rule ids,
    missing paths) — not for violations, which are data, not errors."""

    code = "lint_usage_invalid"


class LockOrderViolationError(AnalysisError):
    """Raised by the lock-order race detector when the acquisition graph
    recorded at runtime contains a cycle (a lock-order inversion).

    ``inversions`` holds the detector's
    :class:`~repro.analysis.lockorder.Inversion` records — each names the
    allocation sites forming the cycle and the thread that closed it.
    """

    code = "lock_order_inversion"

    def __init__(self, message: str, inversions: list | None = None) -> None:
        super().__init__(message)
        self.inversions = list(inversions or [])


# --------------------------------------------------------------------------
# Datasets / experiments
# --------------------------------------------------------------------------
class DatasetError(ReproError):
    """Raised when a named dataset configuration cannot be materialized."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""
