"""Experiment harness regenerating every table and figure of the paper.

Importing this package registers all experiments; use
:func:`get_experiment`/:data:`EXPERIMENT_REGISTRY` or the CLI::

    python -m repro.experiments list
    python -m repro.experiments run exp3 --scale tiny
    python -m repro.experiments all --scale small --out EXPERIMENTS.md
"""

from repro.experiments.harness import (
    EXPERIMENT_REGISTRY,
    Experiment,
    ExperimentTable,
    ScaleSettings,
    get_experiment,
    scale_settings,
)
from repro.experiments import (  # noqa: F401  (registration side effects)
    exp1_pvs_strategies,
    exp2_pruning,
    exp3_strategies,
    exp4_upper_bound,
    exp5_lower_bound,
    exp6_modification,
    exp7_qfs,
    exp8_ablations,
    exp9_users,
    exp10_result_sizes,
)
from repro.experiments.report import render_markdown, write_report

__all__ = [
    "EXPERIMENT_REGISTRY",
    "Experiment",
    "ExperimentTable",
    "ScaleSettings",
    "get_experiment",
    "scale_settings",
    "render_markdown",
    "write_report",
]
