"""CLI for the experiment harness.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run exp1 exp2 --scale tiny
    python -m repro.experiments all --scale small --out EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    EXPERIMENT_REGISTRY,
    get_experiment,
    write_report,
)
from repro.experiments.harness import ExperimentTable


def _run_ids(exp_ids: list[str], scale: str) -> list[ExperimentTable]:
    tables: list[ExperimentTable] = []
    for exp_id in exp_ids:
        experiment = get_experiment(exp_id)
        print(f"== {exp_id}: {experiment.title} (scale={scale})", file=sys.stderr)
        for table in experiment.run(scale=scale):
            print(table.render())
            print()
            tables.append(table)
    return tables


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("ids", nargs="+", choices=sorted(EXPERIMENT_REGISTRY))
    run.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    run.add_argument("--out", default=None, help="also write a markdown report")

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    everything.add_argument("--out", default=None, help="write EXPERIMENTS.md here")

    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in sorted(EXPERIMENT_REGISTRY):
            experiment = EXPERIMENT_REGISTRY[exp_id]
            artifacts = ", ".join(experiment.artifacts)
            print(f"{exp_id}: {experiment.title} [{artifacts}]")
        return 0

    ids = sorted(EXPERIMENT_REGISTRY) if args.command == "all" else args.ids
    tables = _run_ids(ids, args.scale)
    if args.out:
        path = write_report(tables, args.scale, args.out)
        print(f"report written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
