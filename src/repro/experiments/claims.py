"""Programmatic verdicts for the paper's qualitative claims.

Each claim checker receives the regenerated tables (artifact -> table) and
returns a :class:`ClaimVerdict`.  ``write_report`` appends the verdict
section to EXPERIMENTS.md, so the paper-vs-measured record carries explicit
PASS/FAIL marks instead of leaving shape-reading to the reader.  The same
predicates are asserted (with the same thresholds) by the benchmark suite.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.experiments.harness import ExperimentTable

__all__ = ["ClaimVerdict", "evaluate_claims", "render_claims"]


@dataclass(frozen=True)
class ClaimVerdict:
    """Outcome of checking one paper claim against regenerated tables."""

    claim_id: str
    artifact: str
    statement: str
    passed: bool | None  # None = required table not in this run
    detail: str = ""


def _numeric(values) -> list[float]:
    return [float(v) for v in values if isinstance(v, (int, float))]


def _column(table: ExperimentTable, header: str) -> list:
    idx = table.headers.index(header)
    return [row[idx] for row in table.rows]


def _rows(table: ExperimentTable, **filters) -> list[list]:
    idx = {table.headers.index(k): v for k, v in filters.items()}
    return [r for r in table.rows if all(r[i] == v for i, v in idx.items())]


def _check_fig5(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    table = tables["Figure 5"]
    three = sum(_numeric(_column(table, "3-strategy SRT (ms)")))
    one = sum(_numeric(_column(table, "1-strategy SRT (ms)")))
    return three < one, f"aggregate SRT {three:.1f}ms vs {one:.1f}ms"


def _check_fig6(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    srt = tables["Figure 6(a)"]
    size = tables["Figure 6(b)"]
    srt_ok = sum(_numeric(_column(srt, "pruning SRT (ms)"))) < sum(
        _numeric(_column(srt, "no-pruning SRT (ms)"))
    )
    sizes_p = _numeric(_column(size, "pruning size"))
    sizes_n = _numeric(_column(size, "no-pruning size"))
    size_ok = all(p <= n for p, n in zip(sizes_p, sizes_n))
    return srt_ok and size_ok, f"SRT ok={srt_ok}, size ok={size_ok}"


def _check_fig7(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    table = tables["Figure 7"]
    details = []
    ok = True
    for dataset in ("wordnet", "dblp"):
        rows = _rows(table, dataset=dataset)
        bu_cells = [r[table.headers.index("BU (ms)")] for r in rows]
        di = sum(_numeric([r[table.headers.index("DI (ms)")] for r in rows]))
        ic = sum(_numeric([r[table.headers.index("IC (ms)")] for r in rows]))
        dr = sum(_numeric([r[table.headers.index("DR (ms)")] for r in rows]))
        dnfs = sum(1 for c in bu_cells if c == "DNF")
        bu_dominated = dnfs > 0 or sum(_numeric(bu_cells)) > 5 * di
        deferment_wins = dr < ic and di < ic
        ok = ok and bu_dominated and deferment_wins
        details.append(
            f"{dataset}: BU DNFs={dnfs}, IC={ic:.0f}ms DR={dr:.0f}ms DI={di:.0f}ms"
        )
    return ok, "; ".join(details)


def _check_fig8(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    table = tables["Figure 8"]
    rows = _rows(table, dataset="wordnet")
    ic = sum(_numeric([r[table.headers.index("IC (ms)")] for r in rows]))
    dr = sum(_numeric([r[table.headers.index("DR (ms)")] for r in rows]))
    return dr < ic, f"wordnet CAP time IC={ic:.0f}ms DR={dr:.0f}ms"


def _check_fig9(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    table = tables["Figure 9"]
    rows = _rows(table, dataset="wordnet")
    ic = sum(_numeric([r[table.headers.index("IC peak")] for r in rows]))
    dr = sum(_numeric([r[table.headers.index("DR peak")] for r in rows]))
    return dr < ic, f"wordnet peak IC={ic:.0f} DR={dr:.0f}"


def _check_fig10_11(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    cap = tables["Figure 10"]
    srt = tables["Figure 11"]
    # growth + flattening on dblp Q2 (IC)
    rows = sorted(
        _rows(cap, dataset="dblp", query="Q2"),
        key=lambda r: r[cap.headers.index("upper")],
    )
    series = _numeric([r[cap.headers.index("IC (ms)")] for r in rows])
    grows = series[-1] > series[0]
    flattens = (
        len(series) >= 3
        and (series[-1] - series[-2]) <= (series[1] - series[0])
    )
    bu_cells = _column(srt, "BU (ms)")
    di_total = sum(_numeric(_column(srt, "DI (ms)")))
    dnfs = sum(1 for c in bu_cells if c == "DNF")
    bu_dominated = dnfs > 0 or sum(_numeric(bu_cells)) > 5 * di_total
    return grows and flattens and bu_dominated, (
        f"dblp/Q2 IC series {['%.0f' % s for s in series]}, BU DNFs={dnfs}"
    )


def _check_fig14(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    table = tables["Figure 14"]
    worst = max(_numeric(_column(table, "avg check (ms)")), default=0.0)
    return worst < 5000, f"worst per-result check {worst:.1f}ms (budget 5000ms)"


def _check_table1(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    table = tables["Table 1"]
    tighten, loosen = [], []
    for i, header in enumerate(table.headers):
        for row in table.rows:
            if isinstance(row[i], (int, float)):
                if header.startswith("tighten"):
                    tighten.append(float(row[i]))
                elif header.startswith("loosen"):
                    loosen.append(float(row[i]))
    ok = bool(tighten and loosen) and (
        sum(tighten) / len(tighten) < sum(loosen) / len(loosen)
    )
    return ok, (
        f"mean tighten {sum(tighten) / max(len(tighten), 1):.1f}ms vs "
        f"mean loosen {sum(loosen) / max(len(loosen), 1):.1f}ms"
    )


def _check_qfs(tables: Mapping[str, ExperimentTable]) -> tuple[bool, str]:
    table = tables["Figure 16"]
    ic = _numeric([r[table.headers.index("IC")] for r in _rows(table, dataset="wordnet")])
    dr = _numeric([r[table.headers.index("DR")] for r in _rows(table, dataset="wordnet")])
    ic_spread = max(ic) / max(min(ic), 1e-9)
    dr_spread = max(dr) / max(min(dr), 1e-9)
    ok = max(ic) > max(dr) or ic_spread > dr_spread
    return ok, f"IC spread {ic_spread:.1f}x vs DR spread {dr_spread:.1f}x"


_CHECKS: list[tuple[str, str, str, Callable]] = [
    ("C1", "Figure 5", "3-strategy PVS beats forced large-upper-only under IC", _check_fig5),
    ("C2", "Figure 6(a)", "pruning shrinks both SRT and CAP size", _check_fig6),
    ("C3", "Figure 7", "BU >> blended; deferment beats IC on WordNet/DBLP", _check_fig7),
    ("C4", "Figure 8", "deferment shrinks CAP construction time on WordNet", _check_fig8),
    ("C5", "Figure 9", "deferment shrinks peak CAP size on WordNet", _check_fig9),
    ("C6", "Figure 10", "cost grows with the upper bound then flattens; all << BU", _check_fig10_11),
    ("C7", "Figure 14", "lower-bound check well under the 5s budget", _check_fig14),
    ("C8", "Table 1", "tighten is far cheaper than loosen", _check_table1),
    ("C9", "Figure 16", "IC is QFS-sensitive; deferment is not", _check_qfs),
]


def evaluate_claims(tables: Mapping[str, ExperimentTable]) -> list[ClaimVerdict]:
    """Check every claim whose artifact tables are present."""
    verdicts: list[ClaimVerdict] = []
    for claim_id, artifact, statement, check in _CHECKS:
        try:
            passed, detail = check(tables)
        except KeyError:
            verdicts.append(
                ClaimVerdict(claim_id, artifact, statement, None, "table not in this run")
            )
            continue
        verdicts.append(ClaimVerdict(claim_id, artifact, statement, passed, detail))
    return verdicts


def render_claims(verdicts: list[ClaimVerdict]) -> str:
    """Markdown verdict section."""
    lines = ["## Claim verdicts", ""]
    lines.append("| claim | artifact | statement | verdict | evidence |")
    lines.append("|---|---|---|---|---|")
    for verdict in verdicts:
        mark = "—" if verdict.passed is None else ("PASS" if verdict.passed else "FAIL")
        lines.append(
            f"| {verdict.claim_id} | {verdict.artifact} | {verdict.statement} "
            f"| {mark} | {verdict.detail} |"
        )
    lines.append("")
    return "\n".join(lines)
