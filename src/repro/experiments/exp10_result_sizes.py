"""Exp 10 — Figure 4's result-size bands.

Figure 4 annotates each template query with "{min, max} result size of all
query instances across all datasets".  This experiment regenerates those
bands: every template is instantiated with several label seeds on every
dataset (default Figure-4 bounds), evaluated under Defer-to-Idle, and the
per-template min/max |V_Δ| across all instances is reported.

There is no winner to assert here; the artifact documents the workload's
selectivity spread — from near-empty to (at permissive bounds and coarse
labels) combinatorial, which is why the enumeration cap exists.
"""

from __future__ import annotations

from repro.datasets.registry import get_dataset
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    register_experiment,
    scale_settings,
    session_for,
)
from repro.workload.generator import instantiate
from repro.workload.templates import template_names

__all__ = ["Exp10ResultSizes"]

SEEDS = (11, 48)


@register_experiment
class Exp10ResultSizes(Experiment):
    """Result-size bands per template (Figure 4's curly-brace annotations)."""

    id = "exp10"
    title = "Min/max |V_delta| per template across datasets (Figure 4 bands)"
    artifacts = ("Figure 4 (bands)",)
    datasets = ("wordnet", "dblp", "flickr")

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        rows: list[list[object]] = []
        for name in template_names():
            sizes: list[int] = []
            capped = False
            for dataset in self.datasets:
                bundle = get_dataset(dataset, scale)
                session = session_for(bundle)
                for seed in SEEDS:
                    instance = instantiate(
                        name, bundle.graph, seed=seed, dataset=dataset
                    )
                    result = session.run(
                        instance, strategy="DI", max_results=settings.max_results
                    )
                    sizes.append(result.num_matches)
                    capped = capped or result.run.matches.truncated
            rows.append(
                [
                    name,
                    min(sizes),
                    max(sizes),
                    len(sizes),
                    "yes" if capped else "no",
                ]
            )
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 4 (bands)",
                title=self.title,
                headers=["template", "min |V_delta|", "max |V_delta|", "instances", "cap hit"],
                rows=rows,
                notes=[
                    f"instances = {len(self.datasets)} datasets x {len(SEEDS)} label seeds, "
                    "default Figure-4 bounds, DI strategy",
                    f"enumeration cap = {scale_settings(scale).max_results} "
                    "(matches marked 'cap hit' are lower bounds on the true size)",
                ],
            )
        ]
