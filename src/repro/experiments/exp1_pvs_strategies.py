"""Exp 1 — Figure 5: 3-strategy vs 1-strategy PVS under Immediate construction.

Paper setup (Sec. 7.2): DBLP dataset, all template queries with their
default bounds, Immediate construction; the "3-Strategy" arm picks
neighbor/two-hop/large-upper search per edge bound, the "1-Strategy" arm
forces every edge through the PML all-pairs (large-upper) search.  Metric:
average SRT per query.

Expected shape: 3-strategy SRT significantly smaller for every query
(forcing all-pairs work for bound-1/2 edges floods the formulation timeline
and leaves a backlog at Run).
"""

from __future__ import annotations

from repro.datasets.registry import get_dataset
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    average_sessions,
    register_experiment,
    scale_settings,
)
from repro.workload.generator import instantiate
from repro.workload.templates import template_names

__all__ = ["Exp1PVSStrategies"]


@register_experiment
class Exp1PVSStrategies(Experiment):
    """3-strategy vs 1-strategy PVS (Figure 5)."""

    id = "exp1"
    title = "3-Strategy vs 1-Strategy for IC (avg SRT, DBLP)"
    artifacts = ("Figure 5",)

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        bundle = get_dataset("dblp", scale)
        rows: list[list[object]] = []
        for name in template_names():
            instance = instantiate(name, bundle.graph, dataset="dblp")
            three = average_sessions(bundle, instance, "IC", settings)
            one = average_sessions(
                bundle, instance, "IC", settings, force_large_upper=True
            )
            speedup = one["srt"] / three["srt"] if three["srt"] > 0 else float("inf")
            rows.append(
                [
                    name,
                    round(three["srt"] * 1e3, 3),
                    round(one["srt"] * 1e3, 3),
                    round(speedup, 2),
                    int(three["matches"]),
                ]
            )
        table = ExperimentTable(
            experiment=self.id,
            artifact="Figure 5",
            title=self.title,
            headers=["query", "3-strategy SRT (ms)", "1-strategy SRT (ms)", "speedup", "|V_delta|"],
            rows=rows,
            notes=[
                "paper shape: 3-strategy < 1-strategy for every query",
                f"scale={scale}; SRT includes formulation backlog at Run",
            ],
        )
        return [table]
