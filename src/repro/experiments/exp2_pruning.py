"""Exp 2 — Figure 6: pruning vs no pruning of isolated vertices.

Paper setup: DBLP dataset, template queries with default bounds, Immediate
construction (the 3-strategy variant adopted after Exp 1).  Arms: isolated-
vertex pruning on vs off.  Metrics: average SRT (Fig. 6a) and average CAP
index size (Fig. 6b).

Expected shape: pruning gives both significantly smaller SRT (smaller
candidate sets to enumerate over) and a much smaller CAP index.
"""

from __future__ import annotations

from repro.datasets.registry import get_dataset
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    average_sessions,
    register_experiment,
    scale_settings,
)
from repro.workload.generator import instantiate
from repro.workload.templates import template_names

__all__ = ["Exp2Pruning"]


@register_experiment
class Exp2Pruning(Experiment):
    """Pruning vs No-Pruning (Figure 6)."""

    id = "exp2"
    title = "Effect of pruning isolated vertices (DBLP, IC)"
    artifacts = ("Figure 6(a)", "Figure 6(b)")

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        bundle = get_dataset("dblp", scale)
        srt_rows: list[list[object]] = []
        size_rows: list[list[object]] = []
        for name in template_names():
            instance = instantiate(name, bundle.graph, dataset="dblp")
            pruned = average_sessions(bundle, instance, "IC", settings, pruning=True)
            unpruned = average_sessions(bundle, instance, "IC", settings, pruning=False)
            srt_rows.append(
                [
                    name,
                    round(pruned["srt"] * 1e3, 3),
                    round(unpruned["srt"] * 1e3, 3),
                    round(unpruned["srt"] / pruned["srt"], 2)
                    if pruned["srt"] > 0
                    else float("inf"),
                ]
            )
            size_rows.append(
                [
                    name,
                    int(pruned["cap_size"]),
                    int(unpruned["cap_size"]),
                    round(unpruned["cap_size"] / pruned["cap_size"], 2)
                    if pruned["cap_size"] > 0
                    else float("inf"),
                ]
            )
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 6(a)",
                title="SRT with vs without pruning",
                headers=["query", "pruning SRT (ms)", "no-pruning SRT (ms)", "ratio"],
                rows=srt_rows,
                notes=["paper shape: pruning SRT < no-pruning SRT for every query"],
            ),
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 6(b)",
                title="CAP index size with vs without pruning",
                headers=["query", "pruning size", "no-pruning size", "ratio"],
                rows=size_rows,
                notes=["size = Sigma|V_q| + undirected AIVS pairs (Lemma 5.2)"],
            ),
        ]
