"""Exp 3 — Figures 7/8/9: BU vs IC vs DR vs DI across the three datasets.

Paper setup (Sec. 7.2): new query instances derived from the templates by
raising the first edge's upper bound to 5 (4 for Q5 on WordNet) and
adjusting a handful of other bounds per dataset:

* WordNet: ``e1.upper=5`` for all but Q5 (``4`` there); ``e2.upper=1`` for
  Q1 and Q5; ``e3.upper=1`` for Q3 and Q5; ``e5.upper=1, e6.upper=2`` for Q6.
* Flickr: ``e1.upper=5`` and ``e2.upper=5`` for all; ``e3.upper=1`` for Q3
  and Q5; ``e5.upper=1, e6.upper=2`` for Q6.
* DBLP: same as Flickr except ``e3.upper=3`` for Q5.

Metrics: SRT of BU/IC/DR/DI (Figure 7), CAP construction time of IC/DR/DI
(Figure 8), CAP index size (Figure 9).  The SRT cap (the paper's 2 hours)
is the scale's BU timeout; a timed-out BU run reports "DNF".

Expected shapes: BU >= 1 order of magnitude over IC on WordNet/DBLP (with
BU DNFs on the hardest WordNet queries); IC >= 1 order over DR/DI where
expensive edges exist; IC ~ DR ~ DI on Flickr (nothing is expensive);
deferment shrinks CAP construction time most on WordNet.
"""

from __future__ import annotations

from repro.datasets.registry import get_dataset
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    average_sessions,
    register_experiment,
    run_bu,
    scale_settings,
)
from repro.workload.generator import QueryInstance, instantiate

__all__ = ["Exp3Strategies", "exp3_instance"]


def exp3_overrides(dataset: str, template_name: str) -> dict[int, int]:
    """The Sec. 7.2 upper-bound overrides for one (dataset, template)."""
    name = template_name.upper()
    if dataset == "wordnet":
        overrides: dict[int, int] = {1: 4 if name == "Q5" else 5}
        if name in ("Q1", "Q5"):
            overrides[2] = 1
        if name in ("Q3", "Q5"):
            overrides[3] = 1
        if name == "Q6":
            overrides[5] = 1
            overrides[6] = 2
        return overrides
    # Flickr, and DBLP derives from it.
    overrides = {1: 5, 2: 5}
    if name in ("Q3", "Q5"):
        overrides[3] = 1
    if name == "Q6":
        overrides[5] = 1
        overrides[6] = 2
    if dataset == "dblp" and name == "Q5":
        overrides[3] = 3
    return overrides


def exp3_instance(dataset: str, template_name: str, graph, seed: int = 11) -> QueryInstance:
    """Instantiate a template with Exp-3 bounds on ``dataset``.

    Vertex labels come from a sampled graph region, *except* that ``e1``'s
    endpoints (q1, q2) are relabeled with the dataset's two most frequent
    labels.  Exp 3 studies the expensive-edge regime — in the paper's own
    WordNet numbers, ``|V_q1| = 5501`` and ``|V_q2| = 63099`` on Q2, i.e.
    e1 connected the *largest* candidate sets; random region labels would
    only sometimes produce that regime at emulated scale.
    """
    from dataclasses import replace

    instance = instantiate(template_name, graph, seed=seed, dataset=dataset)
    by_frequency = sorted(
        graph.distinct_labels(),
        key=lambda lab: (-len(graph.vertices_with_label(lab)), repr(lab)),
    )
    top = by_frequency[0]
    second = by_frequency[1] if len(by_frequency) > 1 else top
    labels = list(instance.labels)
    u, v = instance.template.edges[0]  # e1's endpoints (1-based)
    labels[u - 1] = top
    labels[v - 1] = second
    instance = replace(instance, labels=tuple(labels))
    overrides = {
        i: up
        for i, up in exp3_overrides(dataset, template_name).items()
        if 1 <= i <= instance.template.num_edges
    }
    return instance.with_upper(overrides, tag="exp3")


@register_experiment
class Exp3Strategies(Experiment):
    """BU vs IC vs DR vs DI (Figures 7, 8, 9)."""

    id = "exp3"
    title = "Strategy comparison across datasets"
    artifacts = ("Figure 7", "Figure 8", "Figure 9")
    datasets = ("wordnet", "dblp", "flickr")
    #: Representative queries — Figure 7 itself plots "representative
    #: queries", not all 18 combinations; one template per topology class
    #: (triangle/cycle/star/flower) keeps the bench runtime sane.
    templates_by_scale = {
        "tiny": ("Q1", "Q2", "Q5"),
        "small": ("Q1", "Q2", "Q5", "Q6"),
    }

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        srt_rows: list[list[object]] = []
        cap_time_rows: list[list[object]] = []
        cap_size_rows: list[list[object]] = []
        for dataset in self.datasets:
            bundle = get_dataset(dataset, scale)
            for name in self.templates_by_scale[scale]:
                instance = exp3_instance(dataset, name, bundle.graph)
                bu = run_bu(bundle, instance, settings)
                per_strategy = {
                    s: average_sessions(bundle, instance, s, settings)
                    for s in ("IC", "DR", "DI")
                }
                bu_cell = (
                    "DNF"
                    if bu.timed_out
                    else round(bu.srt_seconds * 1e3, 2)
                )
                srt_rows.append(
                    [
                        dataset,
                        name,
                        bu_cell,
                        round(per_strategy["IC"]["srt"] * 1e3, 3),
                        round(per_strategy["DR"]["srt"] * 1e3, 3),
                        round(per_strategy["DI"]["srt"] * 1e3, 3),
                        int(per_strategy["DI"]["matches"]),
                    ]
                )
                cap_time_rows.append(
                    [
                        dataset,
                        name,
                        round(per_strategy["IC"]["cap_time"] * 1e3, 3),
                        round(per_strategy["DR"]["cap_time"] * 1e3, 3),
                        round(per_strategy["DI"]["cap_time"] * 1e3, 3),
                        int(per_strategy["DI"]["deferred"]),
                    ]
                )
                cap_size_rows.append(
                    [
                        dataset,
                        name,
                        int(per_strategy["IC"]["cap_peak_size"]),
                        int(per_strategy["DR"]["cap_peak_size"]),
                        int(per_strategy["DI"]["cap_peak_size"]),
                        int(per_strategy["DI"]["cap_size"]),
                    ]
                )
        note_scale = f"scale={scale}; BU timeout={settings.bu_timeout_seconds}s (paper: 2h)"
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 7",
                title="SRT: BU vs IC vs DR vs DI",
                headers=["dataset", "query", "BU (ms)", "IC (ms)", "DR (ms)", "DI (ms)", "|V_delta|"],
                rows=srt_rows,
                notes=["paper shape: BU >> IC >> DR ~ DI on wordnet/dblp; all ~equal on flickr", note_scale],
            ),
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 8",
                title="Avg CAP construction time",
                headers=["dataset", "query", "IC (ms)", "DR (ms)", "DI (ms)", "deferred"],
                rows=cap_time_rows,
                notes=["paper shape: deferment helps most on wordnet (largest |V_q|)"],
            ),
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 9",
                title="Avg CAP index size (peak during construction)",
                headers=["dataset", "query", "IC peak", "DR peak", "DI peak", "final"],
                rows=cap_size_rows,
                notes=[
                    "peak size is reported: the final index is a strategy-"
                    "independent fixpoint, but IC transiently materializes "
                    "expensive edges' pairs before pruning shrinks the sets"
                ],
            ),
        ]
