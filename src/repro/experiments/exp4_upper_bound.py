"""Exp 4 — Figures 10/11/13: effect of varying the upper bound.

Paper setup (Sec. 7.2 + Appendix D): templates Q2, Q5, Q6 on DBLP and
Flickr; the *varied* edges sweep ``upper ∈ {1, 3, 5, 10}`` while a few
companion edges are pinned:

* DBLP — Q2: vary e1, e2.  Q5: pin e3=1, e4=2; vary e2 (mirroring Flickr).
  Q6: pin e5=e6=2; vary e1, e2.
* Flickr — Q2: vary e1, e2.  Q5: pin e3=1, e4=2; vary e2.
  Q6: pin e4=2, e5=2, e6=1; vary e1, e3.

Metrics per (dataset, query, upper): CAP construction time (Fig. 10), SRT
(Fig. 11, including BU for the "orders of magnitude" comparison), and
peak CAP size (Fig. 13).

Expected shapes: cost and size grow with the bound but flatten (companion
strict bounds keep pruning); DR/DI below IC at high bounds on DBLP; all
orders of magnitude below BU.
"""

from __future__ import annotations

from repro.datasets.registry import get_dataset
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    average_sessions,
    register_experiment,
    run_bu,
    scale_settings,
)
from repro.workload.generator import QueryInstance, instantiate

__all__ = ["Exp4UpperBound", "exp4_plan", "UPPER_SWEEP"]

UPPER_SWEEP = (1, 3, 5, 10)

#: (dataset, template) -> (pinned {edge: upper}, varied edge indices)
_PLAN: dict[tuple[str, str], tuple[dict[int, int], tuple[int, ...]]] = {
    ("dblp", "Q2"): ({}, (1, 2)),
    ("dblp", "Q5"): ({3: 1, 4: 2}, (2,)),
    ("dblp", "Q6"): ({5: 2, 6: 2}, (1, 2)),
    ("flickr", "Q2"): ({}, (1, 2)),
    ("flickr", "Q5"): ({3: 1, 4: 2}, (2,)),
    ("flickr", "Q6"): ({4: 2, 5: 2, 6: 1}, (1, 3)),
}


def exp4_plan(dataset: str, template_name: str) -> tuple[dict[int, int], tuple[int, ...]]:
    """Pinned bounds and varied edges for one (dataset, template)."""
    return _PLAN[(dataset, template_name.upper())]


def exp4_instance(
    dataset: str, template_name: str, graph, upper: int, seed: int = 23
) -> QueryInstance:
    """Template instance with Exp-4 pins and the sweep value applied."""
    pinned, varied = exp4_plan(dataset, template_name)
    instance = instantiate(template_name, graph, seed=seed, dataset=dataset)
    overrides = dict(pinned)
    overrides.update({i: upper for i in varied})
    return instance.with_upper(overrides, tag=f"u{upper}")


@register_experiment
class Exp4UpperBound(Experiment):
    """Upper-bound sweep (Figures 10, 11, 13)."""

    id = "exp4"
    title = "Effect of varying the upper bound"
    artifacts = ("Figure 10", "Figure 11", "Figure 13")
    datasets = ("dblp", "flickr")
    templates = ("Q2", "Q5", "Q6")

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        sweep = UPPER_SWEEP if scale == "small" else (1, 3, 5)
        cap_time_rows: list[list[object]] = []
        srt_rows: list[list[object]] = []
        size_rows: list[list[object]] = []
        for dataset in self.datasets:
            bundle = get_dataset(dataset, scale)
            for name in self.templates:
                for upper in sweep:
                    instance = exp4_instance(dataset, name, bundle.graph, upper)
                    per_strategy = {
                        s: average_sessions(bundle, instance, s, settings)
                        for s in ("IC", "DR", "DI")
                    }
                    bu = run_bu(bundle, instance, settings)
                    bu_cell = "DNF" if bu.timed_out else round(bu.srt_seconds * 1e3, 2)
                    cap_time_rows.append(
                        [
                            dataset,
                            name,
                            upper,
                            round(per_strategy["IC"]["cap_time"] * 1e3, 3),
                            round(per_strategy["DR"]["cap_time"] * 1e3, 3),
                            round(per_strategy["DI"]["cap_time"] * 1e3, 3),
                        ]
                    )
                    srt_rows.append(
                        [
                            dataset,
                            name,
                            upper,
                            bu_cell,
                            round(per_strategy["IC"]["srt"] * 1e3, 3),
                            round(per_strategy["DR"]["srt"] * 1e3, 3),
                            round(per_strategy["DI"]["srt"] * 1e3, 3),
                        ]
                    )
                    size_rows.append(
                        [
                            dataset,
                            name,
                            upper,
                            int(per_strategy["IC"]["cap_peak_size"]),
                            int(per_strategy["DR"]["cap_peak_size"]),
                            int(per_strategy["DI"]["cap_peak_size"]),
                        ]
                    )
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 10",
                title="CAP construction time vs upper bound",
                headers=["dataset", "query", "upper", "IC (ms)", "DR (ms)", "DI (ms)"],
                rows=cap_time_rows,
                notes=["paper shape: grows with the bound, then flattens"],
            ),
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 11",
                title="SRT vs upper bound",
                headers=["dataset", "query", "upper", "BU (ms)", "IC (ms)", "DR (ms)", "DI (ms)"],
                rows=srt_rows,
                notes=[
                    "paper shape: DR/DI <= IC at high bounds on DBLP; all "
                    "orders of magnitude below BU",
                    f"sweep={list(sweep)} (paper: {list(UPPER_SWEEP)})",
                ],
            ),
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 13",
                title="Peak CAP size vs upper bound",
                headers=["dataset", "query", "upper", "IC", "DR", "DI"],
                rows=size_rows,
                notes=["paper shape: grows with bound, modest in absolute terms"],
            ),
        ]
