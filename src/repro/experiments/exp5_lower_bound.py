"""Exp 5 — Figure 14: cost of the just-in-time lower-bound check.

Paper setup (Appendix D): templates Q2, Q5, Q6 on WordNet and Flickr; lower
bounds varied in {1, 2, 3}; for each setting, 10 random partial-matched
vertex sets ``V_P ∈ V_Δ`` are validated (DetectPath per query edge) and the
average per-result check time is reported.

To make lower > 1 satisfiable, every edge's upper bound is raised to at
least ``lower + 1`` (the paper's instances guarantee the same by
construction).  Expected shape: per-result check time far below the 5 s
interactivity budget the paper cites, roughly flat in the lower bound on
the WordNet analog.
"""

from __future__ import annotations

from repro.core.blender import Boomer
from repro.core.lowerbound import filter_by_lower_bound
from repro.core.query import Bounds
from repro.datasets.registry import get_dataset
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    register_experiment,
    scale_settings,
    session_for,
)
from repro.utils.rng import seeded_rng
from repro.obs.clock import now
from repro.workload.generator import QueryInstance, instantiate

__all__ = ["Exp5LowerBound", "exp5_instance", "LOWER_SWEEP"]

LOWER_SWEEP = (1, 2, 3)


def exp5_instance(
    dataset: str, template_name: str, graph, lower: int, seed: int = 29
) -> QueryInstance:
    """Instance with every edge at ``[lower, max(upper, lower + 1)]``."""
    base = instantiate(template_name, graph, seed=seed, dataset=dataset)
    bounds = {
        i: Bounds(lower, max(b.upper, lower + 1))
        for i, b in enumerate(base.bounds, start=1)
    }
    return base.with_bounds(bounds, tag=f"l{lower}")


@register_experiment
class Exp5LowerBound(Experiment):
    """Lower-bound check cost (Figure 14)."""

    id = "exp5"
    title = "Cost of lower-bound checking at result visualization"
    artifacts = ("Figure 14",)
    datasets = ("wordnet", "flickr")
    templates = ("Q2", "Q5", "Q6")
    samples = 10  # random V_P per setting, as in the paper

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        rows: list[list[object]] = []
        for dataset in self.datasets:
            bundle = get_dataset(dataset, scale)
            session = session_for(bundle)
            for name in self.templates:
                for lower in LOWER_SWEEP:
                    instance = exp5_instance(dataset, name, bundle.graph, lower)
                    result = session.run(
                        instance, strategy="DI", max_results=settings.max_results
                    )
                    avg_ms, checked, passed = self._check_cost(
                        result.boomer, result.run.matches.matches
                    )
                    rows.append(
                        [
                            dataset,
                            name,
                            lower,
                            round(avg_ms, 3),
                            checked,
                            passed,
                        ]
                    )
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 14",
                title="Avg lower-bound check time per result (10 random V_P)",
                headers=["dataset", "query", "lower", "avg check (ms)", "V_P checked", "passed"],
                rows=rows,
                notes=[
                    "paper shape: well under the 5s interactivity budget; "
                    "relatively flat on the WordNet analog"
                ],
            )
        ]

    def _check_cost(
        self, boomer: Boomer, matches: list[dict[int, int]]
    ) -> tuple[float, int, int]:
        """Average filter_by_lower_bound time over sampled matches (ms)."""
        if not matches:
            return 0.0, 0, 0
        rng = seeded_rng(7)
        sample = (
            matches
            if len(matches) <= self.samples
            else rng.sample(matches, self.samples)
        )
        passed = 0
        start = now()
        for match in sample:
            if filter_by_lower_bound(match, boomer.query, boomer.engine.ctx):
                passed += 1
        elapsed = now() - start
        return elapsed / len(sample) * 1e3, len(sample), passed
