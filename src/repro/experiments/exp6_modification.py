"""Exp 6 — Table 1: query-modification cost.

Paper setup (Appendix D): templates Q4, Q5, Q6 on WordNet and Flickr under
the Defer-to-Idle strategy.  Every edge starts at ``[1, 2]``.  Three
modification kinds are measured after the full query has been formulated
(just before Run):

* **delete e1** — the first-drawn edge, i.e. the worst-case rollback
  (the whole processed component is affected);
* **tighten e_i** — ``[1,2] -> [1,1]`` for each of e3..e6 where present;
* **loosen e_i** — ``[1,2] -> [1,3]`` for each of e3..e6 where present.

The metric is the *total CAP maintenance cost* of the modification: the
in-place work (pair re-checks, rollback, the DI pool probe) plus draining
whatever the rollback re-pooled, i.e. the time until the index is fully
repaired.  This matches the paper's Table 1 semantics — their WordNet
loosen/delete costs (~2-4 s) are component-reprocessing costs, far beyond
any single GUI-latency window; Defer-to-Idle merely *hides* part of that
cost in later idle windows, it does not remove it.

Expected shape: tighten is near-free (no reprocessing, only pair
re-checks); loosen ~ delete >> tighten; costlier on the WordNet analog
(larger |V_q|) than on the Flickr analog.
"""

from __future__ import annotations

from repro.core.actions import DeleteEdge, ModifyBounds
from repro.core.blender import Boomer
from repro.core.query import Bounds
from repro.datasets.registry import DatasetBundle, get_dataset
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    register_experiment,
    scale_settings,
)
from repro.gui.latency import LatencyModel
from repro.gui.simulator import SimulatedUser
from repro.workload.generator import QueryInstance, instantiate

__all__ = ["Exp6Modification", "formulate_without_run"]

_MOD_EDGES = (3, 4, 5, 6)  # e3..e6, "if any"


def exp6_instance(dataset: str, template_name: str, graph, seed: int = 31) -> QueryInstance:
    """Instance with every edge at the experiment's base bounds [1, 2]."""
    base = instantiate(template_name, graph, seed=seed, dataset=dataset)
    bounds = {i: Bounds(1, 2) for i in range(1, base.template.num_edges + 1)}
    return base.with_bounds(bounds, tag="mod")


def formulate_without_run(
    bundle: DatasetBundle, instance: QueryInstance, strategy: str = "DI"
) -> Boomer:
    """Formulate the full query (no Run) and return the live blender.

    Uses the standalone auto-idle path: each action's leftover latency is
    its simulated ``latency_after``, so DI's probe behaves as in a session.
    """
    user = SimulatedUser(LatencyModel(bundle.latency, jitter=0.0))
    actions = user.formulate(instance)
    boomer = Boomer(bundle.make_context(), strategy=strategy, auto_idle=True)
    for action in actions[:-1]:  # everything except Run
        boomer.apply(action)
    return boomer


@register_experiment
class Exp6Modification(Experiment):
    """Query modification cost (Table 1)."""

    id = "exp6"
    title = "Query modification cost (delete / tighten / loosen), DI"
    artifacts = ("Table 1",)
    datasets = ("wordnet", "flickr")
    templates = ("Q4", "Q5", "Q6")

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        scale_settings(scale)  # validates the scale name
        rows: list[list[object]] = []
        for dataset in self.datasets:
            bundle = get_dataset(dataset, scale)
            for name in self.templates:
                instance = exp6_instance(dataset, name, bundle.graph)
                row: list[object] = [dataset, name]
                row.append(self._measure_delete(bundle, instance))
                for index in _MOD_EDGES:
                    row.append(self._measure_bounds(bundle, instance, index, Bounds(1, 1)))
                for index in _MOD_EDGES:
                    row.append(self._measure_bounds(bundle, instance, index, Bounds(1, 3)))
                rows.append(row)
        headers = (
            ["dataset", "query", "delete e1 (ms)"]
            + [f"tighten e{i} (ms)" for i in _MOD_EDGES]
            + [f"loosen e{i} (ms)" for i in _MOD_EDGES]
        )
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="Table 1",
                title=self.title,
                headers=headers,
                rows=rows,
                notes=[
                    "'-' marks edges the template lacks (matching Table 1)",
                    "paper shape: tighten ~ negligible; loosen ~ delete; "
                    "wordnet costlier than flickr",
                ],
            )
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _repair_cost_ms(boomer, report) -> float:
        """Modification work + draining everything the rollback re-pooled."""
        from repro.obs.clock import now

        start = now()
        boomer.engine.drain_pool()
        drain = now() - start
        return (report.modification.elapsed_seconds + drain) * 1e3

    def _measure_delete(self, bundle: DatasetBundle, instance: QueryInstance) -> object:
        boomer = formulate_without_run(bundle, instance)
        edge = instance.template.edges[0]
        report = boomer.apply(DeleteEdge(u=edge[0], v=edge[1]))
        assert report.modification is not None
        return round(self._repair_cost_ms(boomer, report), 3)

    def _measure_bounds(
        self,
        bundle: DatasetBundle,
        instance: QueryInstance,
        edge_index: int,
        bounds: Bounds,
    ) -> object:
        if edge_index > instance.template.num_edges:
            return "-"
        boomer = formulate_without_run(bundle, instance)
        u, v = instance.template.edges[edge_index - 1]
        report = boomer.apply(
            ModifyBounds(u=u, v=v, lower=bounds.lower, upper=bounds.upper)
        )
        assert report.modification is not None
        return round(self._repair_cost_ms(boomer, report), 3)
