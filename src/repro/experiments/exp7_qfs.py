"""Exp 7 — Figures 15/16/17: impact of the query formulation sequence (QFS).

Paper setup (Appendix D): Q1 under three edge orders and Q6 under four
(Table 2), on WordNet and Flickr, for IC/DR/DI.  Bounds use the Exp-3
per-dataset settings so that expensive edges exist where the paper had
them.  Metrics: CAP construction time (Fig. 15), SRT (Fig. 16), peak CAP
size (Fig. 17).

Expected shape: on the WordNet analog, IC degrades (~2x) when expensive
edges are drawn early (Q1 S1 — e1 carries the big bound and is first; Q6
S1/S2) while DR/DI are insensitive to the order; on the Flickr analog
nothing is expensive, so all strategies are flat across sequences.
"""

from __future__ import annotations

from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    average_sessions,
    register_experiment,
    scale_settings,
)
from repro.workload.qfs import QFS_SEQUENCES

__all__ = ["Exp7QFS"]


@register_experiment
class Exp7QFS(Experiment):
    """QFS sensitivity (Figures 15, 16, 17)."""

    id = "exp7"
    title = "Impact of query formulation sequence"
    artifacts = ("Figure 15", "Figure 16", "Figure 17")
    datasets = ("wordnet", "flickr")

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        templates = ("Q1", "Q6") if scale == "small" else ("Q1",)
        cap_time_rows: list[list[object]] = []
        srt_rows: list[list[object]] = []
        size_rows: list[list[object]] = []
        for dataset in self.datasets:
            bundle = get_dataset(dataset, scale)
            for name in templates:
                instance = exp3_instance(dataset, name, bundle.graph)
                for sequence, order in QFS_SEQUENCES[name].items():
                    per_strategy = {
                        s: average_sessions(
                            bundle, instance, s, settings, edge_order=order
                        )
                        for s in ("IC", "DR", "DI")
                    }
                    tag = [dataset, f"{name}{sequence}"]
                    cap_time_rows.append(
                        tag
                        + [
                            round(per_strategy[s]["cap_time"] * 1e3, 3)
                            for s in ("IC", "DR", "DI")
                        ]
                    )
                    srt_rows.append(
                        tag
                        + [
                            round(per_strategy[s]["srt"] * 1e3, 3)
                            for s in ("IC", "DR", "DI")
                        ]
                    )
                    size_rows.append(
                        tag
                        + [
                            int(per_strategy[s]["cap_peak_size"])
                            for s in ("IC", "DR", "DI")
                        ]
                    )
        headers = ["dataset", "query+QFS", "IC", "DR", "DI"]
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 15",
                title="CAP construction time per QFS (ms)",
                headers=headers,
                rows=cap_time_rows,
                notes=["paper shape: IC varies ~2x across QFS on wordnet; DR/DI flat"],
            ),
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 16",
                title="SRT per QFS (ms)",
                headers=headers,
                rows=srt_rows,
                notes=["paper shape: IC worst when expensive edges drawn early"],
            ),
            ExperimentTable(
                experiment=self.id,
                artifact="Figure 17",
                title="Peak CAP size per QFS",
                headers=headers,
                rows=size_rows,
                notes=["paper shape: IC peak inflated when expensive edges early"],
            ),
        ]
