"""Exp 8 (reproduction extra) — ablations of DESIGN.md's design choices.

Not a paper figure: these benches quantify the individual design decisions
the paper motivates qualitatively.

A. **Scan choice** (Lemma 5.3/5.4): cost-model choice vs forced in-scan vs
   forced out-scan, on CAP construction time.
B. **Enumeration reorder** (Algorithm 11): matching order sorted by |V_q|
   vs user drawing order, on enumeration time.
C. **Distance oracle** (footnote 5): PML vs memoized plain BFS, on CAP
   construction time of a large-upper query.
D. **Post-formulation evaluators** (Sec. 8): BU (nested loop) vs distance
   join (materialize + multi-way join) vs blended DI, on SRT — the same
   answers three ways.
"""

from __future__ import annotations

from repro.core.blender import Boomer
from repro.core.enumerate import partial_vertex_sets
from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    register_experiment,
    scale_settings,
)
from repro.gui.session import VisualSession
from repro.indexing.oracle import BFSOracle
from repro.obs.clock import now
from repro.workload.generator import instantiate

__all__ = ["Exp8Ablations"]


@register_experiment
class Exp8Ablations(Experiment):
    """Design-choice ablations (reproduction extra)."""

    id = "exp8"
    title = "Ablations: scan choice, reorder, oracle, evaluator"
    artifacts = ("Ablation A", "Ablation B", "Ablation C", "Ablation D")

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        return [
            self._scan_choice(scale, settings),
            self._reorder(scale, settings),
            self._oracle(scale, settings),
            self._evaluators(scale, settings),
        ]

    # ------------------------------------------------------------------
    def _scan_choice(self, scale: str, settings) -> ExperimentTable:
        bundle = get_dataset("dblp", scale)
        rows: list[list[object]] = []
        for name in ("Q1", "Q2", "Q5"):
            instance = instantiate(name, bundle.graph, dataset="dblp")
            row: list[object] = [name]
            for mode in (None, "in", "out"):
                ctx = bundle.make_context()
                ctx.scan_override = mode
                session = VisualSession(ctx, bundle.latency, jitter=0.0)
                result = session.run(
                    instance, strategy="IC", max_results=settings.max_results
                )
                row.append(round(result.cap_construction_seconds * 1e3, 3))
            rows.append(row)
        return ExperimentTable(
            experiment=self.id,
            artifact="Ablation A",
            title="PVS scan choice: cost model vs forced in/out (CAP time, ms)",
            headers=["query", "cost-model", "forced in-scan", "forced out-scan"],
            rows=rows,
            notes=["expected: cost-model <= min(forced arms) up to noise"],
        )

    def _reorder(self, scale: str, settings) -> ExperimentTable:
        bundle = get_dataset("wordnet", scale)
        rows: list[list[object]] = []
        for name in ("Q1", "Q2"):
            instance = exp3_instance("wordnet", name, bundle.graph)
            session = VisualSession(bundle.make_context(), bundle.latency, jitter=0.0)
            result = session.run(
                instance, strategy="DI", max_results=settings.max_results
            )
            boomer: Boomer = result.boomer
            timings: list[float] = []
            counts: list[int] = []
            for reorder in (True, False):
                start = now()
                matches = partial_vertex_sets(
                    boomer.query,
                    boomer.cap,
                    matching_order=boomer.query.matching_order,
                    max_results=settings.max_results,
                    reorder=reorder,
                )
                timings.append(now() - start)
                counts.append(len(matches))
            rows.append(
                [
                    name,
                    round(timings[0] * 1e3, 3),
                    round(timings[1] * 1e3, 3),
                    counts[0],
                    counts[1],
                ]
            )
        return ExperimentTable(
            experiment=self.id,
            artifact="Ablation B",
            title="Enumeration matching-order reorder (time, ms)",
            headers=["query", "reordered", "drawing order", "matches (re)", "matches (draw)"],
            rows=rows,
            notes=["same match sets; reorder should not be slower"],
        )

    def _evaluators(self, scale: str, settings) -> ExperimentTable:
        """BU vs distance join vs blended DI on the same queries (SRT)."""
        from repro.baseline.bu import BoomerUnaware
        from repro.baseline.distance_join import DistanceJoin
        from repro.workload.generator import instantiate as plain_instantiate

        bundle = get_dataset("dblp", scale)
        rows: list[list[object]] = []
        for name in ("Q1", "Q3", "Q6"):
            instance = plain_instantiate(name, bundle.graph, seed=17, dataset="dblp")
            query = instance.build_query()
            bu = BoomerUnaware(
                bundle.make_context(),
                timeout_seconds=settings.bu_timeout_seconds,
                max_results=settings.max_results,
            ).evaluate(query)
            dj = DistanceJoin(
                bundle.make_context(),
                timeout_seconds=settings.bu_timeout_seconds,
                max_results=settings.max_results,
            ).evaluate(query.copy())
            session = VisualSession(bundle.make_context(), bundle.latency, jitter=0.0)
            blended = session.run(
                instance, strategy="DI", max_results=settings.max_results
            )
            rows.append(
                [
                    name,
                    "DNF" if bu.timed_out else round(bu.srt_seconds * 1e3, 3),
                    "DNF" if dj.timed_out else round(dj.srt_seconds * 1e3, 3),
                    round(blended.srt_seconds * 1e3, 3),
                    blended.num_matches,
                ]
            )
        return ExperimentTable(
            experiment=self.id,
            artifact="Ablation D",
            title="Post-formulation evaluators vs blended DI (SRT, ms, dblp)",
            headers=["query", "BU", "distance join", "blended DI", "matches"],
            rows=rows,
            notes=[
                "same V_delta three ways; the blended engine amortized its "
                "work into formulation latency, the others pay at Run"
            ],
        )

    def _oracle(self, scale: str, settings) -> ExperimentTable:
        bundle = get_dataset("dblp", scale)
        instance = exp3_instance("dblp", "Q2", bundle.graph)
        rows: list[list[object]] = []
        for label, oracle in (
            ("PML", None),
            ("BFS (memoized)", BFSOracle(bundle.graph)),
        ):
            ctx = bundle.make_context(oracle=oracle)
            session = VisualSession(ctx, bundle.latency, jitter=0.0)
            result = session.run(
                instance, strategy="DR", max_results=settings.max_results
            )
            rows.append(
                [
                    label,
                    round(result.cap_construction_seconds * 1e3, 3),
                    result.num_matches,
                ]
            )
        return ExperimentTable(
            experiment=self.id,
            artifact="Ablation C",
            title="Distance oracle: PML vs plain BFS (Q2/dblp, CAP time)",
            headers=["oracle", "CAP time (ms)", "matches"],
            rows=rows,
            notes=["identical matches required; PML expected faster per query"],
        )
