"""Exp 9 (reproduction extra) — robustness across simulated users.

The paper's numbers average four human formulations per query (Sec. 7.1),
with participants of different speeds ("the faster a user formulates a
query, the lesser time BOOMER has for CAP construction").  This experiment
makes that sensitivity explicit: the same query is formulated by a panel
of simulated users spanning speed multipliers and per-step jitter, and the
SRT spread per strategy is reported.

Expected shape: deferment strategies are robust — their SRT barely moves
with user speed (the pool drains at Run regardless) — while Immediate
construction degrades for *fast* users, who give the engine less latency
to hide expensive edges in (its backlog grows as speed drops below 1).
"""

from __future__ import annotations

import statistics

from repro.datasets.registry import get_dataset
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.harness import (
    Experiment,
    ExperimentTable,
    register_experiment,
    scale_settings,
)
from repro.gui.session import VisualSession

__all__ = ["Exp9Users"]

#: speed multiplier > 1 = slower user = more latency for the engine.
SPEEDS = (0.5, 1.0, 2.0)
JITTER = 0.15
USERS_PER_SPEED = 2  # paper: 4 users per query across all speeds


@register_experiment
class Exp9Users(Experiment):
    """SRT across simulated user speeds (reproduction extra)."""

    id = "exp9"
    title = "SRT robustness across simulated user speeds"
    artifacts = ("User panel",)
    dataset = "wordnet"
    template = "Q1"

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        settings = scale_settings(scale)
        bundle = get_dataset(self.dataset, scale)
        instance = exp3_instance(self.dataset, self.template, bundle.graph)
        rows: list[list[object]] = []
        for strategy in ("IC", "DR", "DI"):
            for speed in SPEEDS:
                srts: list[float] = []
                for user in range(USERS_PER_SPEED):
                    session = VisualSession(
                        bundle.make_context(),
                        bundle.latency,
                        jitter=JITTER,
                        speed=speed,
                        seed=100 + user,
                    )
                    result = session.run(
                        instance,
                        strategy=strategy,
                        max_results=settings.max_results,
                    )
                    srts.append(result.srt_seconds)
                rows.append(
                    [
                        strategy,
                        speed,
                        round(statistics.fmean(srts) * 1e3, 3),
                        round(min(srts) * 1e3, 3),
                        round(max(srts) * 1e3, 3),
                    ]
                )
        return [
            ExperimentTable(
                experiment=self.id,
                artifact="User panel",
                title=(
                    f"SRT vs user speed ({self.template}@{self.dataset}, "
                    f"{USERS_PER_SPEED} users/speed, jitter {JITTER})"
                ),
                headers=["strategy", "speed", "mean SRT (ms)", "min (ms)", "max (ms)"],
                rows=rows,
                notes=[
                    "speed < 1 = faster user = less GUI latency available",
                    "expected: IC degrades for fast users; DR/DI stay flat",
                ],
            )
        ]
