"""Shared experiment harness.

Every experiment module produces :class:`ExperimentTable` objects — the
rows/series the paper's corresponding figure or table plots — from the same
measured primitives: simulated visual sessions (:class:`VisualSession`) and
BU baseline runs.  The harness also fixes the scale-dependent knobs in one
place (BU timeout = the analog of the paper's 2-hour cap, enumeration cap).
"""

from __future__ import annotations

import statistics
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.baseline.bu import BoomerUnaware, BUResult
from repro.datasets.registry import DatasetBundle, get_dataset
from repro.errors import ExperimentError
from repro.gui.session import SessionResult, VisualSession
from repro.utils.fmt import ascii_table
from repro.workload.generator import QueryInstance

__all__ = [
    "ExperimentTable",
    "Experiment",
    "ScaleSettings",
    "scale_settings",
    "session_for",
    "average_sessions",
    "run_bu",
    "EXPERIMENT_REGISTRY",
    "register_experiment",
    "get_experiment",
]


@dataclass(frozen=True)
class ScaleSettings:
    """Scale-dependent harness knobs."""

    scale: str
    bu_timeout_seconds: float  # analog of the paper's 2-hour SRT cap
    max_results: int  # enumeration cap (reported when hit)
    repeats: int  # sessions averaged per measurement


def scale_settings(scale: str) -> ScaleSettings:
    """Harness knobs for ``tiny`` (tests) and ``small`` (benchmarks)."""
    if scale == "tiny":
        return ScaleSettings(scale="tiny", bu_timeout_seconds=5.0, max_results=5_000, repeats=1)
    if scale == "small":
        return ScaleSettings(scale="small", bu_timeout_seconds=30.0, max_results=20_000, repeats=1)
    raise ExperimentError(f"unknown scale {scale!r}")


@dataclass
class ExperimentTable:
    """One regenerated paper artifact (a figure's series or a table)."""

    experiment: str  # e.g. "exp3"
    artifact: str  # e.g. "Figure 7 (WordNet)"
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """ASCII rendering (what the bench harness prints)."""
        body = ascii_table(self.headers, self.rows, title=f"{self.artifact} — {self.title}")
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def to_markdown(self) -> str:
        """Markdown rendering (what EXPERIMENTS.md embeds)."""
        lines = [f"#### {self.artifact} — {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join(["---"] * len(self.headers)) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_md_cell(c) for c in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*Note: {note}*")
        lines.append("")
        return "\n".join(lines)


def _md_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Experiment:
    """Base class; subclasses set the metadata and implement :meth:`run`."""

    #: registry id, e.g. "exp3"
    id: str = ""
    #: human title
    title: str = ""
    #: paper artifacts regenerated, e.g. ("Figure 7", "Figure 8")
    artifacts: tuple[str, ...] = ()

    def run(self, scale: str = "small") -> list[ExperimentTable]:
        """Execute the experiment; returns one table per artifact/series."""
        raise NotImplementedError


EXPERIMENT_REGISTRY: dict[str, type[Experiment]] = {}


def register_experiment(cls: type[Experiment]) -> type[Experiment]:
    """Class decorator adding an experiment to the registry."""
    if not cls.id:
        raise ExperimentError(f"{cls.__name__} lacks an id")
    EXPERIMENT_REGISTRY[cls.id] = cls
    return cls


def get_experiment(exp_id: str) -> Experiment:
    """Instantiate a registered experiment by id."""
    try:
        return EXPERIMENT_REGISTRY[exp_id]()
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENT_REGISTRY)}"
        ) from None


# ---------------------------------------------------------------------------
# Measurement primitives
# ---------------------------------------------------------------------------
def session_for(bundle: DatasetBundle, seed: int = 0) -> VisualSession:
    """A fresh deterministic (jitter-free) session runner for ``bundle``."""
    return VisualSession(
        bundle.make_context(), bundle.latency, jitter=0.0, seed=seed
    )


def average_sessions(
    bundle: DatasetBundle,
    instance: QueryInstance,
    strategy: str,
    settings: ScaleSettings,
    edge_order: Sequence[int] | None = None,
    pruning: bool = True,
    force_large_upper: bool = False,
    repeats: int | None = None,
) -> dict[str, float]:
    """Run ``repeats`` sessions and average the headline metrics.

    Returned keys: ``srt``, ``cap_time``, ``cap_size``, ``matches``,
    ``backlog``, ``deferred``, ``truncated`` (0/1).
    """
    runs: list[SessionResult] = []
    count = repeats if repeats is not None else settings.repeats
    session = session_for(bundle)
    for _ in range(count):
        runs.append(
            session.run(
                instance,
                strategy=strategy,
                edge_order=edge_order,
                pruning=pruning,
                force_large_upper=force_large_upper,
                max_results=settings.max_results,
            )
        )
    return {
        "srt": statistics.fmean(r.srt_seconds for r in runs),
        "cap_time": statistics.fmean(r.cap_construction_seconds for r in runs),
        "cap_size": statistics.fmean(r.cap_size for r in runs),
        "cap_peak_size": statistics.fmean(r.cap_peak_size for r in runs),
        "matches": statistics.fmean(r.num_matches for r in runs),
        "backlog": statistics.fmean(r.backlog_seconds for r in runs),
        "deferred": statistics.fmean(
            r.run.counters["edges_deferred"] for r in runs
        ),
        "truncated": float(any(r.run.matches.truncated for r in runs)),
    }


def run_bu(
    bundle: DatasetBundle,
    instance: QueryInstance,
    settings: ScaleSettings,
) -> BUResult:
    """One BU baseline evaluation under the scale's timeout."""
    bu = BoomerUnaware(
        bundle.make_context(),
        timeout_seconds=settings.bu_timeout_seconds,
        max_results=settings.max_results,
    )
    return bu.evaluate(instance.build_query())


def load_bundles(names: Iterable[str], scale: str) -> dict[str, DatasetBundle]:
    """Fetch several dataset bundles (cached)."""
    return {name: get_dataset(name, scale) for name in names}


def fmt_seconds(x: float) -> str:
    """Seconds -> milliseconds string, the unit most figures use."""
    return f"{x * 1e3:.2f}ms"


def apply_if_exists(
    instance: QueryInstance,
    overrides: dict[int, int],
    tag: str,
    setter: Callable[[QueryInstance, dict[int, int], str], QueryInstance] | None = None,
) -> QueryInstance:
    """Apply upper-bound overrides, silently skipping absent edge indices.

    The paper's per-experiment override lists mention e.g. ``e5``/``e6``
    which only some templates have; this mirrors that ("if any").
    """
    valid = {
        i: u for i, u in overrides.items() if 1 <= i <= instance.template.num_edges
    }
    if setter is not None:
        return setter(instance, valid, tag)
    return instance.with_upper(valid, tag=tag)
