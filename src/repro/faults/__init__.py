"""Seeded fault injection for the oracle, GUI latency, and CAP storage.

The attack side of the resilience story: a :class:`FaultPlan` is one
deterministic, serializable description of what breaks when, shared by
tests, experiments, and the CLI's ``--fault-plan`` flag, so a failure
scenario observed anywhere can be replayed everywhere.

* :class:`FaultPlan` / the ``*Spec`` dataclasses — configuration;
* :class:`FaultyOracle` — transient/permanent oracle failures + latency
  spikes;
* :class:`FaultyLatencyModel` — dropped or spiked GUI idle windows;
* :class:`CAPCorruptor` — bit-rot-style damage to the CAP index;
* :class:`InjectedFaultError` — the (non-``ReproError``) exception every
  injector raises, modeling an external component crash.

The defense side lives in :mod:`repro.resilience`; production code never
imports this package.
"""

from repro.faults.injectors import (
    CAPCorruptor,
    CorruptionReport,
    FaultyLatencyModel,
    FaultyOracle,
    InjectedFaultError,
)
from repro.faults.plan import (
    CAPCorruptionSpec,
    FaultPlan,
    GUIFaultSpec,
    OracleFaultSpec,
)

__all__ = [
    "CAPCorruptionSpec",
    "CAPCorruptor",
    "CorruptionReport",
    "FaultPlan",
    "FaultyLatencyModel",
    "FaultyOracle",
    "GUIFaultSpec",
    "InjectedFaultError",
    "OracleFaultSpec",
]
