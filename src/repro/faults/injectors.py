"""Deterministic fault injectors for the oracle, GUI latency, and CAP store.

Every injector draws from its own seeded generator (via
:func:`repro.utils.rng.seeded_rng` — boomerlint rule R1 keeps raw
``random`` out of this module), so a given :class:`~repro.faults.FaultPlan`
produces the *same* fault schedule on every run — failures are
reproducible test inputs, not flakes.

:class:`InjectedFaultError` deliberately derives from :class:`RuntimeError`
and **not** from :class:`~repro.errors.ReproError`: an injected fault
models an *external* component blowing up (a remote oracle, a disk), which
is exactly the class of error the resilience layer's
:class:`~repro.resilience.RetryPolicy` treats as transient and retries.
Library-logic errors (``ReproError``) are never retried.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.cap import CAPIndex
from repro.faults.plan import CAPCorruptionSpec, GUIFaultSpec, OracleFaultSpec
from repro.gui.latency import LatencyModel
from repro.indexing.oracle import DistanceOracle
from repro.utils.rng import seeded_rng

__all__ = [
    "InjectedFaultError",
    "FaultyOracle",
    "FaultyLatencyModel",
    "CAPCorruptor",
    "CorruptionReport",
]


class InjectedFaultError(RuntimeError):
    """A seeded, injected component failure (not a library-logic error)."""

    def __init__(self, component: str, detail: str) -> None:
        super().__init__(f"injected {component} fault: {detail}")
        self.component = component
        self.detail = detail


class FaultyOracle:
    """Distance-oracle wrapper that fails and stalls per its spec.

    Implements the :class:`~repro.indexing.oracle.DistanceOracle` protocol.
    Three failure modes, all seeded:

    * *transient*: each call independently fails with probability
      ``spec.transient_rate`` (in bursts of ``spec.transient_burst``
      consecutive calls) — a retry after the burst succeeds;
    * *permanent*: after ``spec.fail_after`` successful calls every later
      call fails — the component is dead for the rest of the session;
    * *latency spikes*: with probability ``spec.latency_spike_rate`` a call
      additionally sleeps ``spec.latency_spike_seconds`` — slow is a fault
      mode too, and it is what deadlines exist for.
    """

    #: Scalar-only on purpose (R3): batch dispatch must reach the fault
    #: schedule one ``distance``/``within`` call at a time, or injected
    #: failures would stop lining up with the scalar replay.
    batch_via_shim = True

    def __init__(self, inner: DistanceOracle, spec: OracleFaultSpec, seed: int = 0) -> None:
        self.inner = inner
        self.spec = spec
        self._rng = seeded_rng(seed)
        self.calls = 0
        self.faults_injected = 0
        self.spikes_injected = 0
        self._burst_remaining = 0

    def _tick(self) -> None:
        self.calls += 1
        spec = self.spec
        if spec.fail_after is not None and self.calls > spec.fail_after:
            self.faults_injected += 1
            raise InjectedFaultError(
                "oracle", f"permanently down after {spec.fail_after} calls"
            )
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            self.faults_injected += 1
            raise InjectedFaultError("oracle", "transient failure (burst)")
        if spec.transient_rate > 0 and self._rng.random() < spec.transient_rate:
            self._burst_remaining = max(spec.transient_burst - 1, 0)
            self.faults_injected += 1
            raise InjectedFaultError("oracle", "transient failure")
        if (
            spec.latency_spike_rate > 0
            and spec.latency_spike_seconds > 0
            and self._rng.random() < spec.latency_spike_rate
        ):
            self.spikes_injected += 1
            time.sleep(spec.latency_spike_seconds)

    def distance(self, u: int, v: int) -> int:
        """Counted, possibly-faulty ``dist(u, v)``."""
        self._tick()
        return self.inner.distance(u, v)

    def within(self, u: int, v: int, upper: int) -> bool:
        """Counted, possibly-faulty bounded-distance check."""
        self._tick()
        return self.inner.within(u, v, upper)


class FaultyLatencyModel:
    """Latency-model wrapper that perturbs the GUI timing envelope.

    Two perturbations, sampled per visual step:

    * *drop*: with probability ``spec.drop_rate`` a step's latency becomes
      0 — the engine gets **no** idle window (the user acted instantly, or
      the GUI event never carried its timing);
    * *spike*: with probability ``spec.spike_rate`` the latency is
      multiplied by ``spec.spike_factor`` — a frozen UI thread gives the
      engine a huge window, which must not break the timeline accounting.
    """

    def __init__(self, inner: LatencyModel, spec: GUIFaultSpec, seed: int = 0) -> None:
        self.inner = inner
        self.spec = spec
        self._rng = seeded_rng(seed)
        self.drops_injected = 0
        self.spikes_injected = 0

    def _perturb(self, value: float) -> float:
        spec = self.spec
        if spec.drop_rate > 0 and self._rng.random() < spec.drop_rate:
            self.drops_injected += 1
            return 0.0
        if spec.spike_rate > 0 and self._rng.random() < spec.spike_rate:
            self.spikes_injected += 1
            return value * spec.spike_factor
        return value

    def action_time(self, action) -> float:
        """Perturbed duration of performing ``action`` visually."""
        return self._perturb(self.inner.action_time(action))

    def vertex_time(self) -> float:
        """Perturbed ``T_node``."""
        return self._perturb(self.inner.vertex_time())

    def edge_time(self, default_bounds: bool) -> float:
        """Perturbed ``T_edge``."""
        return self._perturb(self.inner.edge_time(default_bounds))

    def modify_time(self) -> float:
        """Perturbed modification-step duration."""
        return self._perturb(self.inner.modify_time())

    def run_click_time(self) -> float:
        """Perturbed Run-click duration."""
        return self._perturb(self.inner.run_click_time())


@dataclass
class CorruptionReport:
    """What a :class:`CAPCorruptor` pass actually damaged."""

    dropped_pairs: list[tuple[tuple[int, int], int, int]] = field(default_factory=list)
    bogus_pairs: list[tuple[tuple[int, int], int, int]] = field(default_factory=list)
    dropped_candidates: list[tuple[int, int]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of individual corruptions applied."""
        return (
            len(self.dropped_pairs)
            + len(self.bogus_pairs)
            + len(self.dropped_candidates)
        )


class CAPCorruptor:
    """Applies seeded bit-rot-style damage to a live CAP index.

    Reaches into the index's internals on purpose — real corruption does
    not use the public API either.  All three damage modes are *detectable*
    by the resilience layer's audit:

    * *drop-pair*: remove one direction of an AIVS pair (breaks symmetry);
    * *bogus-pair*: insert a symmetric pair between arbitrary candidates
      (caught by the sampled upper-bound spot check, or by liveness when an
      endpoint is not a candidate);
    * *drop-candidate*: delete a candidate from its level while neighbors
      still reference it (breaks AIVS liveness).
    """

    def __init__(self, spec: CAPCorruptionSpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = seeded_rng(seed)

    def corrupt(self, cap: CAPIndex) -> CorruptionReport:
        """Damage ``cap`` in place; returns what was done (for assertions)."""
        report = CorruptionReport()
        rng = self._rng
        directed = sorted(cap._aivs)  # noqa: SLF001 - deliberate internal access

        if self.spec.drop_pair_count > 0 and directed:
            candidates = [
                (key, vi, vj)
                for key in directed
                for vi, targets in sorted(cap._aivs[key].items())
                for vj in sorted(targets)
            ]
            for key, vi, vj in self._pick(candidates, self.spec.drop_pair_count):
                cap._aivs[key][vi].discard(vj)  # one direction only
                report.dropped_pairs.append((key, vi, vj))

        if self.spec.bogus_pair_count > 0 and directed:
            for _ in range(self.spec.bogus_pair_count):
                qi, qj = rng.choice(directed)
                if not cap._candidates.get(qi):
                    continue
                vi = rng.choice(sorted(cap._candidates[qi]))
                # A data vertex that is (very likely) not a live candidate
                # of qj: max id + offset — liveness check must flag it.
                all_known = {v for c in cap._candidates.values() for v in c}
                vj = (max(all_known) if all_known else 0) + 1 + rng.randrange(1000)
                cap._aivs[(qi, qj)].setdefault(vi, set()).add(vj)
                cap._aivs.setdefault((qj, qi), {}).setdefault(vj, set()).add(vi)
                report.bogus_pairs.append(((qi, qj), vi, vj))

        if self.spec.drop_candidate_count > 0:
            referenced = [
                (key[0], vi)
                for key in directed
                for vi, targets in sorted(cap._aivs[key].items())
                if targets and vi in cap._candidates.get(key[0], set())
            ]
            for q, v in self._pick(sorted(set(referenced)), self.spec.drop_candidate_count):
                cap._candidates[q].discard(v)  # level lies; AIVS still points at v
                report.dropped_candidates.append((q, v))

        return report

    def _pick(self, population: list, count: int) -> list:
        """Sample without replacement, tolerating small populations."""
        if not population:
            return []
        return self._rng.sample(population, min(count, len(population)))
