"""FaultPlan: one seeded, serializable description of what breaks when.

Experiments, property tests, and the CLI all need to inject the *same*
faults; a :class:`FaultPlan` is the single mechanism they share.  It is a
plain frozen dataclass (JSON round-trippable for the CLI's ``--fault-plan``
flag) naming up to three fault domains:

* :class:`OracleFaultSpec` — the distance oracle misbehaves (transient or
  permanent failures, latency spikes);
* :class:`GUIFaultSpec` — the latency envelope misbehaves (dropped or
  spiked idle windows);
* :class:`CAPCorruptionSpec` — the CAP store rots (dropped/bogus pairs,
  vanished candidates).

The plan's ``seed`` derives per-component seeds, so the oracle's fault
schedule does not shift when, say, GUI faults are toggled on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cap import CAPIndex
    from repro.core.context import EngineContext
    from repro.faults.injectors import CorruptionReport, FaultyLatencyModel, FaultyOracle
    from repro.gui.latency import LatencyModel

__all__ = ["OracleFaultSpec", "GUIFaultSpec", "CAPCorruptionSpec", "FaultPlan"]


@dataclass(frozen=True)
class OracleFaultSpec:
    """How the distance oracle fails."""

    #: Per-call probability of a transient failure.
    transient_rate: float = 0.0
    #: Consecutive failing calls per transient fault (a retryable burst).
    transient_burst: int = 1
    #: Successful calls before the oracle dies permanently (None = never).
    fail_after: int | None = None
    #: Per-call probability of an added latency spike.
    latency_spike_rate: float = 0.0
    #: Duration of each injected spike.
    latency_spike_seconds: float = 0.0


@dataclass(frozen=True)
class GUIFaultSpec:
    """How the GUI latency envelope fails."""

    #: Probability a step's latency collapses to zero (no idle window).
    drop_rate: float = 0.0
    #: Probability a step's latency is multiplied by ``spike_factor``.
    spike_rate: float = 0.0
    spike_factor: float = 10.0


@dataclass(frozen=True)
class CAPCorruptionSpec:
    """How the CAP store rots (counts, not rates — corruption is discrete)."""

    #: AIVS pairs to delete in one direction only (symmetry violation).
    drop_pair_count: int = 0
    #: Symmetric-but-invalid pairs to insert (bound/liveness violation).
    bogus_pair_count: int = 0
    #: Candidates to delete while AIVS entries still reference them.
    drop_candidate_count: int = 0


_SPEC_FIELDS = {
    "oracle": OracleFaultSpec,
    "gui": GUIFaultSpec,
    "cap": CAPCorruptionSpec,
}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    ``FaultPlan()`` (all specs None) is the null plan: applying it is a
    no-op, so harness code can thread a plan unconditionally.
    """

    seed: int = 0
    oracle: OracleFaultSpec | None = None
    gui: GUIFaultSpec | None = None
    cap: CAPCorruptionSpec | None = None

    # -- derived seeds (stable per component) ---------------------------
    def _component_seed(self, component: str) -> int:
        offsets = {"oracle": 1, "gui": 2, "cap": 3}
        return self.seed * 1_000_003 + offsets[component]

    # -- application ----------------------------------------------------
    def wrap_oracle(self, oracle) -> "FaultyOracle":
        """Wrap a distance oracle per this plan (identity if no oracle spec)."""
        if self.oracle is None:
            return oracle
        from repro.faults.injectors import FaultyOracle

        return FaultyOracle(oracle, self.oracle, seed=self._component_seed("oracle"))

    def wrap_context(self, ctx: "EngineContext") -> "EngineContext":
        """A context whose oracle is wrapped per this plan (shares the rest)."""
        if self.oracle is None:
            return ctx
        from dataclasses import replace

        return replace(ctx, oracle=self.wrap_oracle(ctx.oracle))

    def wrap_latency_model(self, model: "LatencyModel") -> "FaultyLatencyModel | LatencyModel":
        """Wrap a GUI latency model per this plan (identity if no GUI spec)."""
        if self.gui is None:
            return model
        from repro.faults.injectors import FaultyLatencyModel

        return FaultyLatencyModel(model, self.gui, seed=self._component_seed("gui"))

    def corrupt_cap(self, cap: "CAPIndex") -> "CorruptionReport | None":
        """Apply this plan's CAP corruption in place (None if no CAP spec)."""
        if self.cap is None:
            return None
        from repro.faults.injectors import CAPCorruptor

        return CAPCorruptor(self.cap, seed=self._component_seed("cap")).corrupt(cap)

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing."""
        return self.oracle is None and self.gui is None and self.cap is None

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        out: dict = {"seed": self.seed}
        for name in _SPEC_FIELDS:
            spec = getattr(self, name)
            if spec is not None:
                out[name] = asdict(spec)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are rejected loudly."""
        if not isinstance(data, dict):
            raise ReproError(f"fault plan must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - set(_SPEC_FIELDS) - {"seed"}
        if unknown:
            raise ReproError(f"unknown fault-plan keys: {sorted(unknown)}")
        kwargs: dict = {"seed": int(data.get("seed", 0))}
        for name, spec_cls in _SPEC_FIELDS.items():
            if name in data and data[name] is not None:
                spec_data = data[name]
                valid = {f for f in spec_cls.__dataclass_fields__}
                bad = set(spec_data) - valid
                if bad:
                    raise ReproError(
                        f"unknown {name} fault-spec keys: {sorted(bad)}"
                    )
                kwargs[name] = spec_cls(**spec_data)
        return cls(**kwargs)

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize (and optionally write) the plan as JSON."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file path or a JSON string."""
        text = str(source)
        candidate = Path(text)
        try:
            is_file = candidate.is_file()
        except OSError:  # e.g. name too long to be a path
            is_file = False
        if is_file:
            text = candidate.read_text(encoding="utf-8")
        elif not text.lstrip().startswith(("{", "[")):
            # Not inline JSON either: almost certainly a mistyped path.
            raise ReproError(f"fault-plan file not found: {text!r}")
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid fault-plan JSON: {exc}") from exc
        return cls.from_dict(data)
