"""Graph substrate: labeled undirected simple graphs in CSR form.

This package is the data-graph layer everything else sits on.  The paper
assumes "an undirected, simple graph G = (V, E, L)" (Section 2); here that is
:class:`repro.graph.Graph`, an immutable CSR (compressed sparse row)
structure with sorted adjacency (for O(log deg) edge tests, as assumed by
the in-scan cost model of Lemma 5.3) and a label -> vertices inverted index
(for O(1) retrieval of the candidate set V_q of a query vertex).
"""

from repro.graph.graph import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.io import (
    load_edge_list,
    save_edge_list,
    load_json,
    save_json,
)
from repro.graph.generators import (
    erdos_renyi,
    barabasi_albert,
    watts_strogatz,
    assign_labels_uniform,
    assign_labels_zipf,
    wordnet_like,
    dblp_like,
    flickr_like,
)
from repro.graph.algorithms import (
    bfs_distances,
    distance,
    k_hop_neighborhood,
    connected_components,
    largest_component,
    shortest_path,
    has_path_within,
    region_around,
)
from repro.graph.paths import bounded_paths, iter_bounded_paths
from repro.graph.stats import GraphStats, compute_stats

__all__ = [
    "Graph",
    "GraphBuilder",
    "load_edge_list",
    "save_edge_list",
    "load_json",
    "save_json",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "assign_labels_uniform",
    "assign_labels_zipf",
    "wordnet_like",
    "dblp_like",
    "flickr_like",
    "bfs_distances",
    "distance",
    "k_hop_neighborhood",
    "connected_components",
    "largest_component",
    "shortest_path",
    "has_path_within",
    "region_around",
    "bounded_paths",
    "iter_bounded_paths",
    "GraphStats",
    "compute_stats",
]
