"""Classic graph algorithms over :class:`repro.graph.Graph`.

These are the unindexed primitives: breadth-first distances (the ground
truth the PML index is tested against, and the fallback distance oracle),
k-hop neighborhoods (the two-hop search of Lemma 5.4), connected components
(used when extracting the largest component of generated datasets and when
rolling back CAP regions), and path reconstruction for result visualization.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "bfs_distances",
    "distance",
    "k_hop_neighborhood",
    "connected_components",
    "largest_component",
    "shortest_path",
    "has_path_within",
    "region_around",
]

UNREACHABLE = -1


def bfs_distances(graph: Graph, source: int, cutoff: int | None = None) -> np.ndarray:
    """Single-source BFS distances.

    Returns an ``int32`` array of length ``|V|`` where unreachable vertices
    (and vertices beyond ``cutoff`` hops, when given) hold ``-1``.
    """
    graph._check_vertex(source)
    offsets, neighbors = graph.raw_csr()
    dist = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = int(dist[u])
        if cutoff is not None and du >= cutoff:
            continue
        for idx in range(int(offsets[u]), int(offsets[u + 1])):
            w = int(neighbors[idx])
            if dist[w] == UNREACHABLE:
                dist[w] = du + 1
                frontier.append(w)
    return dist


def distance(graph: Graph, u: int, v: int, cutoff: int | None = None) -> int:
    """Exact shortest-path distance ``dist(u, v)``; ``-1`` if unreachable.

    A bidirectional-ish early-exit BFS is unnecessary at our scales; a plain
    BFS from ``u`` with an early exit at ``v`` keeps this simple and is used
    only where no PML index is available.
    """
    graph._check_vertex(u)
    graph._check_vertex(v)
    if u == v:
        return 0
    offsets, neighbors = graph.raw_csr()
    dist = {u: 0}
    frontier = deque([u])
    while frontier:
        x = frontier.popleft()
        dx = dist[x]
        if cutoff is not None and dx >= cutoff:
            continue
        for idx in range(int(offsets[x]), int(offsets[x + 1])):
            w = int(neighbors[idx])
            if w == v:
                return dx + 1
            if w not in dist:
                dist[w] = dx + 1
                frontier.append(w)
    return UNREACHABLE


def k_hop_neighborhood(graph: Graph, source: int, k: int) -> set[int]:
    """All vertices within ``k`` hops of ``source`` (excluding ``source``)."""
    if k <= 0:
        return set()
    result: set[int] = set()
    dist = bfs_distances(graph, source, cutoff=k)
    for v in np.nonzero((dist > 0))[0]:
        result.add(int(v))
    return result


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components as vertex-id lists, largest first."""
    offsets, neighbors = graph.raw_csr()
    seen = np.zeros(graph.num_vertices, dtype=bool)
    components: list[list[int]] = []
    for start in range(graph.num_vertices):
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        frontier = deque([start])
        while frontier:
            u = frontier.popleft()
            for idx in range(int(offsets[u]), int(offsets[u + 1])):
                w = int(neighbors[idx])
                if not seen[w]:
                    seen[w] = True
                    component.append(w)
                    frontier.append(w)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> Graph:
    """The induced subgraph on the largest connected component.

    Dataset generators call this so that distance queries are meaningful
    (the paper's real datasets are dominated by one giant component).
    """
    components = connected_components(graph)
    if not components:
        return graph
    return graph.induced_subgraph(sorted(components[0]))


def shortest_path(graph: Graph, u: int, v: int) -> list[int] | None:
    """One shortest path from ``u`` to ``v`` as a vertex list; None if none.

    Used by the just-in-time lower-bound checker when materializing the
    matching path of a query edge for visualization.
    """
    graph._check_vertex(u)
    graph._check_vertex(v)
    if u == v:
        return [u]
    offsets, neighbors = graph.raw_csr()
    parent = {u: u}
    frontier = deque([u])
    while frontier:
        x = frontier.popleft()
        for idx in range(int(offsets[x]), int(offsets[x + 1])):
            w = int(neighbors[idx])
            if w in parent:
                continue
            parent[w] = x
            if w == v:
                path = [v]
                while path[-1] != u:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            frontier.append(w)
    return None


def has_path_within(graph: Graph, u: int, v: int, lower: int, upper: int) -> bool:
    """True iff a *simple* path of length in ``[lower, upper]`` joins u and v.

    This is the semantic ground truth of the edge-bound constraint
    (Definition 3.1), implemented as bounded DFS.  Exponential in the worst
    case — it exists for tests and small visual regions, not for the query
    engine (which uses the CAP index + DetectPath).
    """
    if lower > upper:
        return False
    if u == v:
        return False  # matching paths are non-empty (Definition in Sec. 2)
    offsets, neighbors = graph.raw_csr()
    on_path = {u}

    def dfs(x: int, steps: int) -> bool:
        if steps > upper:
            return False
        if x == v:
            return steps >= lower
        if steps == upper:
            return False
        for idx in range(int(offsets[x]), int(offsets[x + 1])):
            w = int(neighbors[idx])
            if w in on_path:
                continue
            on_path.add(w)
            if dfs(w, steps + 1):
                on_path.discard(w)
                return True
            on_path.discard(w)
        return False

    return dfs(u, 0)


def region_around(
    graph: Graph, vertices: Iterable[int], radius: int = 1
) -> tuple[Graph, dict[int, int]]:
    """Small subgraph containing ``vertices`` and their ``radius``-hop halo.

    BOOMER visualizes each result match on a *small region* of the network
    rather than on the full hairball (Section 5.4).  Returns the induced
    subgraph and a mapping from original vertex id -> region vertex id.
    """
    core = list(dict.fromkeys(int(v) for v in vertices))
    halo: set[int] = set(core)
    frontier = list(core)
    for _ in range(max(radius, 0)):
        next_frontier: list[int] = []
        for v in frontier:
            for w in graph.neighbors(v):
                w = int(w)
                if w not in halo:
                    halo.add(w)
                    next_frontier.append(w)
        frontier = next_frontier
    ordered = core + sorted(halo - set(core))
    region = graph.induced_subgraph(ordered)
    mapping = {orig: new for new, orig in enumerate(ordered)}
    return region, mapping


def path_length_ok(path: Sequence[int], lower: int, upper: int) -> bool:
    """Convenience: does ``path`` (vertex list) satisfy ``[lower, upper]``?"""
    length = len(path) - 1
    return lower <= length <= upper
