"""Mutable builder producing immutable :class:`repro.graph.Graph` instances.

The builder enforces the paper's data-graph invariants at construction time:
undirected, *simple* (no self loops, no parallel edges), every vertex
labeled.  Violations raise :class:`repro.errors.GraphBuildError` immediately
rather than corrupting the CSR arrays.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.errors import GraphBuildError, VertexNotFoundError
from repro.graph.graph import Graph

__all__ = ["GraphBuilder"]

Label = Hashable


class GraphBuilder:
    """Incrementally assemble a labeled undirected simple graph.

    >>> b = GraphBuilder()
    >>> a = b.add_vertex("A"); c = b.add_vertex("C")
    >>> b.add_edge(a, c)
    >>> g = b.build()
    >>> g.num_vertices, g.num_edges
    (2, 1)
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._labels: list[Label] = []
        self._adjacency: list[set[int]] = []

    # -- construction -----------------------------------------------------
    def add_vertex(self, label: Label) -> int:
        """Add a vertex with ``label``; returns its dense id."""
        if label is None:
            raise GraphBuildError("vertex label must not be None")
        self._labels.append(label)
        self._adjacency.append(set())
        return len(self._labels) - 1

    def add_vertices(self, labels: Iterable[Label]) -> list[int]:
        """Add several vertices; returns their ids in input order."""
        return [self.add_vertex(label) for label in labels]

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``.

        Raises :class:`GraphBuildError` on self loops or duplicate edges
        (the data graph is simple) and :class:`VertexNotFoundError` when an
        endpoint has not been added.
        """
        self._check(u)
        self._check(v)
        if u == v:
            raise GraphBuildError(f"self loop on vertex {u} is not allowed")
        if v in self._adjacency[u]:
            raise GraphBuildError(f"duplicate edge ({u}, {v})")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def add_edge_if_absent(self, u: int, v: int) -> bool:
        """Add ``(u, v)`` unless it already exists or is a self loop.

        Returns True iff an edge was added.  Random generators use this to
        tolerate duplicate draws without rejection-sampling noise in the
        caller.
        """
        self._check(u)
        self._check(v)
        if u == v or v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        return True

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``(u, v)`` has been added."""
        self._check(u)
        self._check(v)
        return v in self._adjacency[u]

    @property
    def num_vertices(self) -> int:
        """Vertices added so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Edges added so far."""
        return sum(len(nbrs) for nbrs in self._adjacency) // 2

    # -- finalization ------------------------------------------------------
    def build(self) -> Graph:
        """Freeze into an immutable :class:`Graph` (CSR, sorted adjacency)."""
        n = len(self._labels)
        degrees = np.fromiter(
            (len(nbrs) for nbrs in self._adjacency), dtype=np.int64, count=n
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        neighbors = np.empty(int(offsets[-1]), dtype=np.int32)
        for v, nbrs in enumerate(self._adjacency):
            start, end = int(offsets[v]), int(offsets[v + 1])
            neighbors[start:end] = sorted(nbrs)
        return Graph(offsets, neighbors, self._labels, name=self.name)

    # -- internal ------------------------------------------------------------
    def _check(self, v: int) -> None:
        if not 0 <= v < len(self._labels):
            raise VertexNotFoundError(v)

    def __repr__(self) -> str:
        return (
            f"GraphBuilder(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )
