"""Synthetic graph generators and dataset emulators.

The paper evaluates on WordNet (82K vertices / 125K edges / 5 labels),
DBLP (317K / 1.1M / 100 random labels) and Flickr (1.8M / 23M / 3000 random
labels).  A pure-Python path-indexing stack cannot hold those scales in an
interactive loop (reproduction band repro=3), so this module provides:

* generic random-graph generators (Erdős–Rényi, Barabási–Albert,
  Watts–Strogatz), and
* dataset *emulators* (:func:`wordnet_like`, :func:`dblp_like`,
  :func:`flickr_like`) that reproduce, at a configurable reduced scale, the
  properties the BOOMER algorithms are actually sensitive to:

  - the edge/vertex density ratio of each dataset (1.5 / 3.5 / ~13),
  - the label-alphabet size (5 / 100 / 3000) and, for WordNet, the skewed
    label frequencies (nouns dominate) that create the huge candidate sets
    |V_q| which make edges "expensive",
  - heavy-tailed degrees and ultra-small-world distances (preferential
    attachment), which drive both PML label sizes and path-search costs.

All generators take an explicit seed and return the largest connected
component so that distance queries are meaningful.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.errors import GraphBuildError
from repro.graph.algorithms import largest_component
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.utils.rng import seeded_rng

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "assign_labels_uniform",
    "assign_labels_zipf",
    "wordnet_like",
    "dblp_like",
    "flickr_like",
]

Label = Hashable

#: Share of WordNet synsets per part-of-speech (nouns dominate), taken from
#: the published WordNet 3.0 statistics; the paper labels vertices with the
#: part-of-speech character codes n/v/a/s/r.
WORDNET_LABELS: tuple[str, ...] = ("n", "v", "a", "s", "r")
WORDNET_LABEL_WEIGHTS: tuple[float, ...] = (0.70, 0.12, 0.06, 0.09, 0.03)


def _unlabeled_placeholder(n: int) -> list[str]:
    return ["_"] * n


def erdos_renyi(
    n: int,
    num_edges: int,
    seed: int = 0,
    labels: Sequence[Label] | None = None,
) -> Graph:
    """G(n, m) random graph with exactly ``num_edges`` distinct edges.

    ``labels`` (length ``n``) assigns vertex labels; defaults to ``"_"``.
    """
    if n < 0 or num_edges < 0:
        raise GraphBuildError("n and num_edges must be non-negative")
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise GraphBuildError(
            f"cannot place {num_edges} edges in a simple graph on {n} vertices"
        )
    rng = seeded_rng(seed)
    builder = GraphBuilder(name=f"er-{n}-{num_edges}")
    builder.add_vertices(labels if labels is not None else _unlabeled_placeholder(n))
    placed = 0
    while placed < num_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if builder.add_edge_if_absent(u, v):
            placed += 1
    return builder.build()


def barabasi_albert(
    n: int,
    m_attach: int,
    seed: int = 0,
    labels: Sequence[Label] | None = None,
    name: str | None = None,
) -> Graph:
    """Barabási–Albert preferential attachment graph.

    Each new vertex attaches to ``m_attach`` distinct existing vertices with
    probability proportional to degree (implemented via the standard
    repeated-endpoint trick: sampling uniformly from the list of all edge
    endpoints is equivalent to degree-proportional sampling).
    """
    if m_attach < 1:
        raise GraphBuildError("m_attach must be >= 1")
    if n <= m_attach:
        raise GraphBuildError("n must exceed m_attach")
    rng = seeded_rng(seed)
    builder = GraphBuilder(name=name or f"ba-{n}-{m_attach}")
    builder.add_vertices(labels if labels is not None else _unlabeled_placeholder(n))

    # Seed clique-ish core: a path over the first m_attach + 1 vertices.
    endpoints: list[int] = []
    for v in range(1, m_attach + 1):
        builder.add_edge(v - 1, v)
        endpoints.extend((v - 1, v))

    for v in range(m_attach + 1, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for t in targets:
            builder.add_edge(v, t)
            endpoints.extend((v, t))
    return builder.build()


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    seed: int = 0,
    labels: Sequence[Label] | None = None,
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice + rewiring).

    ``k`` must be even; each vertex starts connected to its ``k`` nearest
    ring neighbors and each lattice edge is rewired with probability
    ``beta``.
    """
    if k % 2 != 0 or k < 2:
        raise GraphBuildError("k must be even and >= 2")
    if not 0.0 <= beta <= 1.0:
        raise GraphBuildError("beta must be in [0, 1]")
    if n <= k:
        raise GraphBuildError("n must exceed k")
    rng = seeded_rng(seed)
    builder = GraphBuilder(name=f"ws-{n}-{k}-{beta}")
    builder.add_vertices(labels if labels is not None else _unlabeled_placeholder(n))
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            if rng.random() < beta:
                # Rewire to a uniform random non-neighbor; skip on failure
                # after a few tries to avoid pathological loops on dense k.
                for _ in range(8):
                    w = rng.randrange(n)
                    if builder.add_edge_if_absent(u, w):
                        break
                else:
                    builder.add_edge_if_absent(u, v)
            else:
                builder.add_edge_if_absent(u, v)
    return builder.build()


# ---------------------------------------------------------------------------
# Label assignment
# ---------------------------------------------------------------------------
def assign_labels_uniform(n: int, num_labels: int, seed: int = 0) -> list[int]:
    """``n`` labels drawn uniformly from ``0..num_labels-1``.

    This is exactly how the paper labels DBLP (100 labels) and Flickr
    (3000 labels): "randomly assign each vertex to a label".
    """
    rng = seeded_rng(seed)
    return [rng.randrange(num_labels) for _ in range(n)]


def assign_labels_zipf(
    n: int,
    labels: Sequence[Label],
    weights: Sequence[float],
    seed: int = 0,
) -> list[Label]:
    """``n`` labels drawn from ``labels`` with the given relative weights."""
    if len(labels) != len(weights):
        raise GraphBuildError("labels and weights must align")
    rng = seeded_rng(seed)
    return rng.choices(list(labels), weights=list(weights), k=n)


# ---------------------------------------------------------------------------
# Dataset emulators
# ---------------------------------------------------------------------------
def wordnet_like(n: int = 4000, seed: int = 7) -> Graph:
    """WordNet-analog: sparse (|E| ≈ 1.5|V|), 5 part-of-speech labels, skewed.

    The dominant ``"n"`` label creates very large candidate sets, which is
    what makes WordNet the dataset where deferment pays off most in the
    paper (Exp 3).
    """
    labels = assign_labels_zipf(n, WORDNET_LABELS, WORDNET_LABEL_WEIGHTS, seed=seed)
    # |E|/|V| = 1.5: attach alternately with m=1 and m=2.  A BA process with
    # mixed attachment keeps the heavy tail while hitting the target density.
    graph = _mixed_attachment(n, ratio=1.5, seed=seed, labels=labels, name="wordnet-like")
    graph = largest_component(graph)
    graph.name = "wordnet-like"
    return graph


def dblp_like(n: int = 8000, seed: int = 11, num_labels: int = 100) -> Graph:
    """DBLP-analog: |E| ≈ 3.5|V|, uniformly random integer labels.

    ``num_labels`` defaults to the paper's 100; the dataset registry scales
    it down with ``n`` so the *per-label candidate-set size* — the quantity
    the expensive-edge predicate (Def. 5.8) actually depends on — keeps its
    paper-relative magnitude at reduced graph scale.
    """
    labels = assign_labels_uniform(n, num_labels, seed=seed)
    graph = _mixed_attachment(n, ratio=3.5, seed=seed, labels=labels, name="dblp-like")
    graph = largest_component(graph)
    graph.name = "dblp-like"
    return graph


def flickr_like(
    n: int = 15000,
    seed: int = 13,
    num_labels: int = 3000,
    edge_ratio: float | None = None,
) -> Graph:
    """Flickr-analog: dense (|E| ≈ 8|V| at our scale), many random labels.

    The full Flickr ratio is ~12.8; the default caps the emulated density
    at 8 to keep pure-Python PML construction interactive, which preserves
    the property the experiments rely on: tiny per-label candidate sets,
    so *no* edge is expensive and IC ≈ DR ≈ DI (Fig. 8, Flickr panel).
    The registry's ``paper`` preset overrides ``edge_ratio`` to the full
    ~12.8 (those builds go through the mmap storage backend, not an
    interactive loop).  ``num_labels`` is registry-scaled like in
    :func:`dblp_like`.
    """
    labels = assign_labels_uniform(n, num_labels, seed=seed)
    ratio = 8.0 if edge_ratio is None else float(edge_ratio)
    graph = _mixed_attachment(n, ratio=ratio, seed=seed, labels=labels, name="flickr-like")
    graph = largest_component(graph)
    graph.name = "flickr-like"
    return graph


def _mixed_attachment(
    n: int,
    ratio: float,
    seed: int,
    labels: Sequence[Label],
    name: str,
) -> Graph:
    """BA-style growth hitting an average edge density of ``ratio`` edges/vertex.

    Each arriving vertex attaches to ``floor(ratio)`` or ``ceil(ratio)``
    existing vertices, chosen stochastically so the expectation is ``ratio``.
    """
    if n < 4:
        raise GraphBuildError("dataset emulators need n >= 4")
    lo = max(1, int(ratio))
    hi = lo + 1
    frac = ratio - lo
    rng = seeded_rng(seed ^ 0x5EED)
    builder = GraphBuilder(name=name)
    builder.add_vertices(labels)

    endpoints: list[int] = []
    core = min(max(lo + 1, 3), n)
    for v in range(1, core):
        builder.add_edge(v - 1, v)
        endpoints.extend((v - 1, v))

    for v in range(core, n):
        m_attach = hi if rng.random() < frac else lo
        m_attach = min(m_attach, v)  # cannot attach to more vertices than exist
        targets: set[int] = set()
        attempts = 0
        while len(targets) < m_attach and attempts < 50 * m_attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
            attempts += 1
        for t in targets:
            builder.add_edge(v, t)
            endpoints.extend((v, t))
    return builder.build()
