"""Immutable labeled undirected simple graph in CSR form.

Why CSR rather than dict-of-sets: BOOMER's hot loops (neighbor scans during
PopulateVertexSet, pruned BFS during PML construction) iterate adjacency
lists millions of times.  A pair of numpy arrays (``offsets``/``neighbors``)
keeps those scans allocation-free and cache-friendly while still being pure
Python at the algorithm level.  Adjacency is sorted per vertex, which gives:

* O(log deg(v)) membership tests via binary search — the exact primitive the
  in-scan cost model of Lemma 5.3 charges ``log(deg(v_i))`` for, and
* merge-join style common-neighbor intersection for the two-hop search of
  Lemma 5.4.

Instances are constructed through :class:`repro.graph.builder.GraphBuilder`
or the loaders/generators; direct construction expects already-validated
arrays and is considered an internal API.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence

import numpy as np

from repro.errors import VertexNotFoundError

__all__ = ["Graph"]

Label = Hashable


class Graph:
    """Undirected, simple, vertex-labeled graph ``G = (V, E, L)``.

    Vertices are dense integers ``0..n-1``.  Labels are arbitrary hashable
    objects (the paper uses character codes for WordNet and synthetic
    integers for DBLP/Flickr).

    The class is immutable through its public API: all construction-time
    mutation happens in :class:`~repro.graph.builder.GraphBuilder` before
    :meth:`~repro.graph.builder.GraphBuilder.build`.  Post-build edge
    updates exist, but only through :mod:`repro.updates`, which swaps the
    CSR arrays in place and bumps :attr:`epoch` — the monotonic version
    counter every derived structure (PML labels, distance caches, stored
    bases) validates against before serving an answer.  boomerlint rule
    R8 flags any other module touching the CSR internals.
    """

    __slots__ = (
        "_offsets",
        "_neighbors",
        "_labels",
        "_label_index",
        "_num_edges",
        "_epoch",
        "name",
    )

    def __init__(
        self,
        offsets: np.ndarray,
        neighbors: np.ndarray,
        labels: Sequence[Label],
        name: str = "graph",
        epoch: int = 0,
    ) -> None:
        self._offsets = offsets
        self._neighbors = neighbors
        self._labels = list(labels)
        self._num_edges = int(len(neighbors) // 2)
        self._epoch = int(epoch)
        self.name = name

        # Inverted index label -> sorted numpy array of vertex ids.  This is
        # what makes retrieving the candidate set V_q of a freshly drawn
        # query vertex (Algorithm 2, line 3) an O(1) lookup.
        buckets: dict[Label, list[int]] = {}
        for v, lab in enumerate(self._labels):
            buckets.setdefault(lab, []).append(v)
        self._label_index: dict[Label, np.ndarray] = {
            lab: np.asarray(vs, dtype=np.int32) for lab, vs in buckets.items()
        }

    # -- versioning ---------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; bumped by :mod:`repro.updates`.

        Every structure derived from the CSR (PML labels, memoized BFS
        vectors, stored bases) records the epoch it was computed at and
        checks it before answering — a mismatch means the graph moved
        underneath it.  ``getattr`` default covers graphs unpickled from
        disk caches written before the counter existed (epoch 0 by
        definition: nothing can have mutated them).
        """
        return getattr(self, "_epoch", 0)

    # -- size ---------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return self.num_vertices

    # -- vertex-level accessors ----------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexNotFoundError(v)

    def degree(self, v: int) -> int:
        """Degree ``deg(v)``."""
        self._check_vertex(v)
        return int(self._offsets[v + 1] - self._offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` as a read-only numpy view."""
        self._check_vertex(v)
        return self._neighbors[self._offsets[v] : self._offsets[v + 1]]

    def label(self, v: int) -> Label:
        """Label ``L(v)``."""
        self._check_vertex(v)
        return self._labels[v]

    def labels(self) -> list[Label]:
        """Per-vertex label list (index = vertex id); a defensive copy."""
        return list(self._labels)

    def distinct_labels(self) -> set[Label]:
        """The set of labels occurring in the graph."""
        return set(self._label_index)

    def vertices_with_label(self, label: Label) -> np.ndarray:
        """Sorted vertex ids carrying ``label`` (empty array if none do).

        This is the candidate set ``V_q`` for a query vertex ``q`` with
        ``L(q) == label``.  The returned array is shared — do not mutate.
        """
        hits = self._label_index.get(label)
        if hits is None:
            return np.empty(0, dtype=np.int32)
        return hits

    def label_frequency(self, label: Label) -> float:
        """``p_L`` — the probability that a uniform random vertex has ``label``.

        Used by the out-scan cost model of Lemma 5.3.
        """
        if self.num_vertices == 0:
            return 0.0
        return len(self.vertices_with_label(label)) / self.num_vertices

    # -- edge-level accessors --------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``(u, v)`` is an edge.  O(log deg(u)) binary search."""
        self._check_vertex(u)
        self._check_vertex(v)
        nbrs = self._neighbors[self._offsets[u] : self._offsets[u + 1]]
        pos = int(np.searchsorted(nbrs, v))
        return pos < len(nbrs) and int(nbrs[pos]) == v

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        offsets, neighbors = self._offsets, self._neighbors
        for u in range(self.num_vertices):
            for idx in range(int(offsets[u]), int(offsets[u + 1])):
                v = int(neighbors[idx])
                if u < v:
                    yield (u, v)

    def iter_vertices(self) -> Iterator[int]:
        """Yield vertex ids ``0..n-1``."""
        return iter(range(self.num_vertices))

    # -- derived structures -----------------------------------------------------
    def degree_array(self) -> np.ndarray:
        """All degrees as an ``int64`` array (index = vertex id)."""
        return np.diff(self._offsets)

    def raw_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The underlying ``(offsets, neighbors)`` arrays (shared, read-only).

        Exposed for the index builders (PML's pruned BFS) which need the
        tightest possible inner loop.
        """
        return self._offsets, self._neighbors

    def induced_subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Return the subgraph induced by ``vertices``.

        Vertex ids are re-densified to ``0..k-1`` following the order of
        ``vertices`` (duplicates are collapsed, order of first occurrence
        kept).  Used by the result-visualization region extraction.
        """
        seen: dict[int, int] = {}
        for v in vertices:
            self._check_vertex(v)
            if v not in seen:
                seen[v] = len(seen)
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(name=f"{self.name}[induced]")
        for v in seen:
            builder.add_vertex(self._labels[v])
        members = set(seen)
        for v, new_v in seen.items():
            for w in self.neighbors(v):
                w = int(w)
                if w in members and v < w:
                    builder.add_edge(new_v, seen[w])
        return builder.build()

    # -- dunder -------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, |V|={self.num_vertices:,}, "
            f"|E|={self.num_edges:,}, labels={len(self._label_index)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._labels == other._labels
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._neighbors, other._neighbors)
        )

    def __hash__(self) -> int:  # structural identity is expensive; use id
        return id(self)
