"""Serialization of data graphs.

Two formats are supported:

* a plain-text *edge list* format compatible with how SNAP-style datasets
  (the paper's WordNet/DBLP/Flickr sources) ship::

      # comment lines start with '#'
      v <id> <label>
      e <u> <v>

  Vertex ids must be dense ``0..n-1``; every vertex line must precede the
  edge lines that use it (conventionally all ``v`` lines come first).

* a JSON format carrying ``{"name", "labels", "edges"}`` for interop with
  notebook tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphIOError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

__all__ = ["save_edge_list", "load_edge_list", "save_json", "load_json"]


def save_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in the text edge-list format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}\n")
        handle.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for v in graph.iter_vertices():
            handle.write(f"v {v} {graph.label(v)}\n")
        for u, v in graph.iter_edges():
            handle.write(f"e {u} {v}\n")


def load_edge_list(path: str | Path, name: str | None = None) -> Graph:
    """Parse the text edge-list format at ``path`` into a :class:`Graph`.

    Labels are read back as strings (the format is untyped); callers that
    need integer labels should map them after loading.
    """
    path = Path(path)
    builder = GraphBuilder(name=name or path.stem)
    expected_vertex = 0
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            kind = parts[0]
            try:
                if kind == "v":
                    vid = int(parts[1])
                    if vid != expected_vertex:
                        raise GraphIOError(
                            f"{path}:{lineno}: vertex ids must be dense and "
                            f"ordered; expected {expected_vertex}, got {vid}"
                        )
                    label = " ".join(parts[2:])
                    if not label:
                        raise GraphIOError(f"{path}:{lineno}: vertex missing label")
                    builder.add_vertex(label)
                    expected_vertex += 1
                elif kind == "e":
                    builder.add_edge(int(parts[1]), int(parts[2]))
                else:
                    raise GraphIOError(
                        f"{path}:{lineno}: unknown record kind {kind!r}"
                    )
            except GraphIOError:
                raise
            except (ValueError, IndexError) as exc:
                raise GraphIOError(f"{path}:{lineno}: malformed line {line!r}") from exc
            except Exception as exc:  # GraphBuildError / VertexNotFoundError
                raise GraphIOError(f"{path}:{lineno}: {exc}") from exc
    return builder.build()


def save_json(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    payload = {
        "name": graph.name,
        "labels": [str(graph.label(v)) for v in graph.iter_vertices()],
        "edges": [[u, v] for u, v in graph.iter_edges()],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_json(path: str | Path) -> Graph:
    """Read a graph previously written by :func:`save_json`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        builder = GraphBuilder(name=payload.get("name", Path(path).stem))
        builder.add_vertices(payload["labels"])
        for u, v in payload["edges"]:
            builder.add_edge(int(u), int(v))
        return builder.build()
    except GraphIOError:
        raise
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise GraphIOError(f"cannot parse graph JSON at {path}: {exc}") from exc
    except Exception as exc:  # GraphBuildError and friends
        raise GraphIOError(f"invalid graph described by {path}: {exc}") from exc
