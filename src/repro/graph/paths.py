"""Bounded simple-path enumeration.

Section 8 of the paper distinguishes BOOMER from distance-join systems by
noting it "enumerates all path embeddings of the results": beyond the one
display path DetectPath picks, a user inspecting a match can ask for every
simple path realizing a query edge within its bounds.

The enumerator is a plain bounded DFS (exponential in the worst case, like
any all-simple-paths enumeration); callers bound it with ``limit`` and the
lengths are already capped by ``upper``.  An optional distance oracle adds
the same ``steps + dist(current, target) > upper`` pruning DetectPath uses,
which makes enumeration on small bounds cheap in practice.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.graph import Graph

__all__ = ["iter_bounded_paths", "bounded_paths"]


def iter_bounded_paths(
    graph: Graph,
    source: int,
    target: int,
    lower: int,
    upper: int,
    oracle=None,
) -> Iterator[list[int]]:
    """Yield every simple path ``source -> target`` with length in bounds.

    Paths are vertex lists including both endpoints, emitted in DFS order
    with neighbors visited in sorted order (deterministic).  ``oracle``
    (anything with ``distance(u, v)``) enables reachability pruning.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target or lower > upper:
        return

    path = [source]
    on_path = {source}

    def dfs(current: int, steps: int) -> Iterator[list[int]]:
        if current == target:
            if lower <= steps <= upper:
                yield list(path)
            return
        if steps >= upper:
            return
        for w in graph.neighbors(current):
            w = int(w)
            if w in on_path:
                continue
            if oracle is not None:
                d = oracle.distance(w, target)
                if d < 0 or steps + 1 + d > upper:
                    continue
            on_path.add(w)
            path.append(w)
            yield from dfs(w, steps + 1)
            path.pop()
            on_path.discard(w)

    yield from dfs(source, 0)


def bounded_paths(
    graph: Graph,
    source: int,
    target: int,
    lower: int,
    upper: int,
    limit: int | None = None,
    oracle=None,
) -> list[list[int]]:
    """Collect bounded simple paths eagerly, optionally capped at ``limit``."""
    out: list[list[int]] = []
    for found in iter_bounded_paths(graph, source, target, lower, upper, oracle):
        out.append(found)
        if limit is not None and len(out) >= limit:
            break
    return out
