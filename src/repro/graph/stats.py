"""Descriptive statistics over data graphs.

Used by the dataset registry to report what was generated (so EXPERIMENTS.md
can show paper-vs-emulated dataset properties) and by tests asserting that
the emulators hit their density/label targets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.graph.graph import Graph

__all__ = ["GraphStats", "compute_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a data graph."""

    name: str
    num_vertices: int
    num_edges: int
    density_ratio: float  # |E| / |V|
    min_degree: int
    max_degree: int
    mean_degree: float
    num_labels: int
    top_label_share: float  # frequency of the most common label
    label_histogram: dict[object, int] = field(hash=False, default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: |V|={self.num_vertices:,} |E|={self.num_edges:,} "
            f"(|E|/|V|={self.density_ratio:.2f}) deg∈[{self.min_degree},"
            f"{self.max_degree}] mean={self.mean_degree:.2f} "
            f"labels={self.num_labels} top-share={self.top_label_share:.2f}"
        )


def compute_stats(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    degrees = graph.degree_array()
    histogram = Counter(graph.label(v) for v in graph.iter_vertices())
    n = graph.num_vertices
    top_share = (max(histogram.values()) / n) if histogram and n else 0.0
    return GraphStats(
        name=graph.name,
        num_vertices=n,
        num_edges=graph.num_edges,
        density_ratio=(graph.num_edges / n) if n else 0.0,
        min_degree=int(degrees.min()) if n else 0,
        max_degree=int(degrees.max()) if n else 0,
        mean_degree=float(np.mean(degrees)) if n else 0.0,
        num_labels=len(histogram),
        top_label_share=top_share,
        label_histogram=dict(histogram),
    )
