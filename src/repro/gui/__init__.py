"""Simulated visual query interface.

The paper's user study had 20 volunteers formulating queries on a real GUI;
what the *engine* observes is only the stream of semantic actions and the
time gaps between them.  This package substitutes the humans with a
deterministic simulator (per DESIGN.md's substitution table): a latency
model of the visual steps (Section 3.2 / 5.3) drives a
:class:`SimulatedUser` that turns a query specification into a timed
:class:`~repro.core.actions.ActionStream`, and :class:`VisualSession` runs
it against a :class:`~repro.core.blender.Boomer` instance end-to-end.
"""

from repro.gui.latency import LatencyModel
from repro.gui.panels import InterfaceSession
from repro.gui.recording import (
    action_from_dict,
    action_to_dict,
    load_actions,
    save_actions,
)
from repro.gui.render import to_dot, to_text
from repro.gui.simulator import SimulatedUser
from repro.gui.session import VisualSession, SessionResult

__all__ = [
    "LatencyModel",
    "InterfaceSession",
    "SimulatedUser",
    "VisualSession",
    "SessionResult",
    "to_dot",
    "to_text",
    "action_from_dict",
    "action_to_dict",
    "load_actions",
    "save_actions",
]
