"""GUI latency model.

Section 3.2 decomposes visual query formulation into steps, and Section 5.3
assigns each a duration:

* drawing a **vertex** = move cursor (t_m) + scan & select a label (t_s) +
  drag-and-drop (t_d)  →  ``T_node = t_m + t_s + t_d``;
* drawing an **edge** = click endpoints (t_e) + optionally fill the bounds
  combo box (t_b)  →  ``T_edge = t_e [+ t_b]``.

The paper measured ``t_e ≈ 2 s`` across participants and derived
``t_lat = min(T_node, T_edge) = t_e``.  The model reproduces those means
(scaled with the dataset, see :class:`GUILatencyConstants`) plus a small
seeded log-normal jitter so different simulated users formulate at
different speeds, like the study's participants did.
"""

from __future__ import annotations

import math

from repro.core.actions import Action, DeleteEdge, ModifyBounds, NewEdge, NewVertex, Run
from repro.core.cost import GUILatencyConstants
from repro.errors import LatencyConfigError
from repro.utils.rng import seeded_rng

__all__ = ["LatencyModel"]


class LatencyModel:
    """Samples the duration of each visual formulation step.

    Parameters
    ----------
    constants:
        Mean step durations (possibly scaled).
    jitter:
        Relative log-normal spread; 0 disables randomness entirely (every
        step takes exactly its mean — used by deterministic tests).
    speed:
        Per-user multiplier (>1 = slower user = more GUI latency for the
        engine; <1 = faster user = tighter deadlines).
    """

    def __init__(
        self,
        constants: GUILatencyConstants | None = None,
        jitter: float = 0.15,
        speed: float = 1.0,
        seed: int = 0,
    ) -> None:
        if jitter < 0:
            raise LatencyConfigError("jitter must be >= 0")
        if speed <= 0:
            raise LatencyConfigError("speed must be > 0")
        self.constants = constants or GUILatencyConstants()
        self.jitter = jitter
        self.speed = speed
        self._rng = seeded_rng(seed)

    def _sample(self, mean: float) -> float:
        if mean <= 0:
            return 0.0
        value = mean * self.speed
        if self.jitter > 0:
            sigma = math.sqrt(math.log(1.0 + self.jitter**2))
            value *= self._rng.lognormvariate(-0.5 * sigma * sigma, sigma)
        return value

    # ------------------------------------------------------------------
    def vertex_time(self) -> float:
        """Duration of drawing one vertex (``T_node``)."""
        return self._sample(self.constants.t_vertex)

    def edge_time(self, default_bounds: bool) -> float:
        """Duration of drawing one edge (``T_edge``); bounds entry included
        only when the bounds differ from the default ``[1, 1]``."""
        mean = self.constants.t_edge
        if not default_bounds:
            mean += self.constants.t_bounds
        return self._sample(mean)

    def modify_time(self) -> float:
        """Duration of a bound-modification or edge-deletion interaction."""
        return self._sample(self.constants.t_bounds + self.constants.t_move)

    def run_click_time(self) -> float:
        """Time to move to and click the Run icon."""
        return self._sample(self.constants.t_move)

    def action_time(self, action: Action) -> float:
        """Duration of performing ``action`` visually."""
        if isinstance(action, NewVertex):
            return self.vertex_time()
        if isinstance(action, NewEdge):
            return self.edge_time(action.lower == 1 and action.upper == 1)
        if isinstance(action, (ModifyBounds, DeleteEdge)):
            return self.modify_time()
        if isinstance(action, Run):
            return self.run_click_time()
        raise TypeError(f"unknown action {action!r}")
