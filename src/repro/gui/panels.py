"""The four-panel visual interface of Section 3.2, as a state machine.

The paper's GUI consists of a **Data Panel** (networks available for
querying), an **Attribute Panel** (vertex labels of the selected network),
a **Query Panel** (the BPH query under construction) and a **Results
Panel** (one small-region match at a time).  A query is built by the seven
steps of Section 3.2: move to the Attribute Panel, scan/select a label,
drag-drop it as a vertex, connect vertex pairs, fill the bounds combo box,
and finally press Run.

:class:`InterfaceSession` models exactly that protocol.  It is the
fine-grained layer *above* the semantic actions: each panel interaction
both advances the interface state and — when a semantic action completes —
feeds the blender, charging the step times of the latency model along the
way.  The engine stays GUI-agnostic (Section 4: BOOMER "is independent of
these steps"); this module exists so the reproduction also covers the
interface protocol itself, not only its action stream.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.core.actions import DeleteEdge, ModifyBounds, NewEdge, NewVertex, Run
from repro.core.blender import Boomer, RunResult
from repro.core.context import EngineContext
from repro.core.lowerbound import ResultSubgraph
from repro.errors import ActionError, SessionError
from repro.gui.latency import LatencyModel

__all__ = ["InterfaceSession"]

Label = Hashable


class InterfaceSession:
    """Panel-level interaction protocol driving a :class:`Boomer` blender.

    The session accumulates the *virtual* user time spent on panel steps
    (``user_time_seconds``) and exposes the standard blender results.  A
    vertex requires ``select_label`` followed by ``drop_vertex`` (Steps
    1-3); an edge is ``connect`` (Step 5) optionally followed by
    ``set_bounds`` (Step 6) — matching the combo-box default of ``[1, 1]``.
    """

    def __init__(
        self,
        ctx: EngineContext,
        latency: LatencyModel | None = None,
        strategy: str = "DI",
        max_results: int | None = None,
    ) -> None:
        self.boomer = Boomer(ctx, strategy=strategy, max_results=max_results)
        self.latency = latency or LatencyModel(jitter=0.0)
        self.user_time_seconds = 0.0
        self._selected_label: Label | None = None
        self._next_vertex_id = 0
        self._result_cursor = 0
        self._available_labels = sorted(
            ctx.graph.distinct_labels(), key=repr
        )

    # ------------------------------------------------------------------
    # Attribute Panel (Steps 1-2)
    # ------------------------------------------------------------------
    @property
    def attribute_panel(self) -> list[Label]:
        """Labels displayed on the Attribute Panel."""
        return list(self._available_labels)

    def select_label(self, label: Label) -> None:
        """Steps 1-2: move to the Attribute Panel, scan and select a label."""
        if label not in self._available_labels:
            raise ActionError(f"label {label!r} is not on the Attribute Panel")
        self.user_time_seconds += (
            self.latency.constants.t_move + self.latency.constants.t_select
        )
        self._selected_label = label

    # ------------------------------------------------------------------
    # Query Panel (Steps 3-6)
    # ------------------------------------------------------------------
    def drop_vertex(self) -> int:
        """Step 3: drag the selected label onto the Query Panel."""
        if self._selected_label is None:
            raise ActionError("select a label before dropping a vertex")
        self.user_time_seconds += self.latency.constants.t_drag
        vertex_id = self._next_vertex_id
        self._next_vertex_id += 1
        self.boomer.apply(NewVertex(vertex_id, self._selected_label))
        self._selected_label = None
        return vertex_id

    def connect(self, u: int, v: int) -> None:
        """Step 5: click two query vertices to draw an edge (bounds [1,1])."""
        self.user_time_seconds += self.latency.constants.t_edge
        self.boomer.apply(NewEdge(u, v, 1, 1))

    def set_bounds(self, u: int, v: int, lower: int, upper: int) -> None:
        """Step 6: fill the bounds combo box of an existing edge."""
        self.user_time_seconds += self.latency.constants.t_bounds
        self.boomer.apply(ModifyBounds(u, v, lower, upper))

    def delete_edge(self, u: int, v: int) -> None:
        """Modification: remove an edge from the Query Panel.

        Routes through the engine's action dispatch into
        :func:`repro.core.modification.delete_edge`, which removes the
        query edge and re-syncs the deferred-edge pool from the query in
        one step — the GUI never touches pool or CAP state directly, so
        query-side and engine-side edge state cannot diverge.
        """
        self.user_time_seconds += (
            self.latency.constants.t_move + self.latency.constants.t_bounds
        )
        self.boomer.apply(DeleteEdge(u, v))

    # ------------------------------------------------------------------
    # Run + Results Panel
    # ------------------------------------------------------------------
    def press_run(self) -> RunResult:
        """Click the Run icon; returns the run result."""
        self.user_time_seconds += self.latency.constants.t_move
        self.boomer.apply(Run())
        result = self.boomer.run_result
        assert result is not None
        return result

    def next_result(self) -> ResultSubgraph | None:
        """Iterate the Results Panel: next validated match, or None at end.

        Matches failing the just-in-time lower-bound check are skipped
        transparently, exactly as the paper's Results Panel would.
        """
        run = self.boomer.run_result
        if run is None:
            raise SessionError("press Run before browsing results")
        matches = run.matches.matches
        while self._result_cursor < len(matches):
            match = matches[self._result_cursor]
            self._result_cursor += 1
            subgraph = self.boomer.visualize(match)
            if subgraph is not None:
                return subgraph
        return None

    def reset_results(self) -> None:
        """Rewind the Results Panel iteration."""
        self._result_cursor = 0
