"""Recording and replaying formulation sessions.

The paper's performance methodology leans on simulated formulation
sequences (it cites VISUAL [3], a simulator built exactly to replay visual
query formulation for benchmarking).  This module gives the reproduction
the same capability: any timed action stream — simulated or captured from
a real interface — can be serialized to JSON and replayed later against
any engine configuration, making session traces portable benchmark
artifacts.

Format (one JSON object)::

    {"version": 1,
     "actions": [
        {"kind": "NewVertex", "vertex_id": 0, "label": "A", "latency_after": 2.1},
        {"kind": "NewEdge", "u": 0, "v": 1, "lower": 1, "upper": 2, ...},
        {"kind": "ModifyBounds", ...}, {"kind": "DeleteEdge", ...},
        {"kind": "Run"}]}

Labels are serialized as-is when JSON-native (str/int/float/bool) — other
label types are rejected rather than silently stringified.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from repro.core.actions import (
    Action,
    DeleteEdge,
    ModifyBounds,
    NewEdge,
    NewVertex,
    Run,
)
from repro.errors import ActionError

__all__ = ["action_to_dict", "action_from_dict", "save_actions", "load_actions"]

_FORMAT_VERSION = 1
_JSON_LABEL_TYPES = (str, int, float, bool)


def action_to_dict(action: Action) -> dict:
    """Serialize one action to a JSON-compatible dict."""
    base: dict = {"kind": action.kind}
    if action.latency_after is not None:
        base["latency_after"] = action.latency_after
    if isinstance(action, NewVertex):
        if not isinstance(action.label, _JSON_LABEL_TYPES):
            raise ActionError(
                f"label {action.label!r} is not JSON-serializable; "
                "recordings support str/int/float/bool labels"
            )
        base.update(vertex_id=action.vertex_id, label=action.label)
    elif isinstance(action, NewEdge):
        base.update(u=action.u, v=action.v, lower=action.lower, upper=action.upper)
    elif isinstance(action, ModifyBounds):
        base.update(u=action.u, v=action.v, lower=action.lower, upper=action.upper)
    elif isinstance(action, DeleteEdge):
        base.update(u=action.u, v=action.v)
    elif isinstance(action, Run):
        pass
    else:
        raise ActionError(f"cannot serialize action {action!r}")
    return base


def action_from_dict(payload: dict) -> Action:
    """Deserialize one action dict."""
    try:
        kind = payload["kind"]
        latency = payload.get("latency_after")
        if kind == "NewVertex":
            return NewVertex(
                vertex_id=int(payload["vertex_id"]),
                label=payload["label"],
                latency_after=latency,
            )
        if kind == "NewEdge":
            return NewEdge(
                u=int(payload["u"]),
                v=int(payload["v"]),
                lower=int(payload.get("lower", 1)),
                upper=int(payload.get("upper", 1)),
                latency_after=latency,
            )
        if kind == "ModifyBounds":
            return ModifyBounds(
                u=int(payload["u"]),
                v=int(payload["v"]),
                lower=int(payload["lower"]),
                upper=int(payload["upper"]),
                latency_after=latency,
            )
        if kind == "DeleteEdge":
            return DeleteEdge(
                u=int(payload["u"]), v=int(payload["v"]), latency_after=latency
            )
        if kind == "Run":
            return Run(latency_after=latency)
    except (KeyError, TypeError, ValueError) as exc:
        raise ActionError(f"malformed action payload {payload!r}: {exc}") from exc
    raise ActionError(f"unknown action kind {kind!r}")


def save_actions(actions: Sequence[Action], path: str | Path) -> None:
    """Write a session recording to ``path``."""
    payload = {
        "version": _FORMAT_VERSION,
        "actions": [action_to_dict(a) for a in actions],
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_actions(path: str | Path) -> list[Action]:
    """Read a session recording from ``path``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ActionError(f"cannot read recording at {path}: {exc}") from exc
    if not isinstance(payload, dict) or "actions" not in payload:
        raise ActionError(f"{path} is not a session recording")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ActionError(
            f"unsupported recording version {version!r} (expected {_FORMAT_VERSION})"
        )
    return [action_from_dict(item) for item in payload["actions"]]
