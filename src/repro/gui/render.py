"""Rendering result subgraphs for the Results Panel.

BOOMER displays each match on a *small region* of the network (Section 5.4)
rather than overlaying the full hairball.  This module renders a validated
:class:`ResultSubgraph` (plus its halo region) as:

* Graphviz DOT (``to_dot``) — matched vertices highlighted, matching paths
  drawn bold, halo context dimmed; paste into any DOT viewer;
* a plain-text adjacency sketch (``to_text``) for terminals and logs.
"""

from __future__ import annotations

from repro.core.lowerbound import ResultSubgraph
from repro.core.query import BPHQuery
from repro.graph.graph import Graph

__all__ = ["to_dot", "to_text"]


def _path_edges(result: ResultSubgraph) -> set[tuple[int, int]]:
    edges: set[tuple[int, int]] = set()
    for path in result.paths.values():
        for a, b in zip(path, path[1:]):
            edges.add((a, b) if a <= b else (b, a))
    return edges


def to_dot(
    result: ResultSubgraph,
    graph: Graph,
    query: BPHQuery | None = None,
    radius: int = 1,
) -> str:
    """Graphviz DOT for one match and its ``radius``-hop halo.

    Matched vertices are filled and labeled ``q<i>: <label>``; vertices on
    matching paths are outlined; halo vertices are dimmed; matching-path
    edges are bold.
    """
    region, mapping = result.region(graph, radius=radius)
    matched = {v: q for q, v in result.assignment.items()}
    on_path = result.vertices
    path_edges = _path_edges(result)

    lines = ["graph match {", "  node [shape=circle fontsize=10];"]
    for orig, new in mapping.items():
        label = graph.label(orig)
        if orig in matched:
            q = matched[orig]
            qlabel = f"q{q}: {label}" if query is None else f"q{q}: {query.label(q)}"
            lines.append(
                f'  n{new} [label="{qlabel}\\n v{orig}" style=filled '
                f"fillcolor=lightblue];"
            )
        elif orig in on_path:
            lines.append(
                f'  n{new} [label="{label}\\n v{orig}" style=bold];'
            )
        else:
            lines.append(
                f'  n{new} [label="{label}\\n v{orig}" color=gray fontcolor=gray];'
            )
    reverse = {new: orig for orig, new in mapping.items()}
    for u, v in region.iter_edges():
        orig_u, orig_v = reverse[u], reverse[v]
        key = (orig_u, orig_v) if orig_u <= orig_v else (orig_v, orig_u)
        if key in path_edges:
            lines.append(f"  n{u} -- n{v} [penwidth=2.5];")
        else:
            lines.append(f"  n{u} -- n{v} [color=gray];")
    lines.append("}")
    return "\n".join(lines)


def to_text(result: ResultSubgraph, graph: Graph, query: BPHQuery | None = None) -> str:
    """Terminal-friendly description of one match."""
    lines = ["match:"]
    for q, v in sorted(result.assignment.items()):
        qlabel = query.label(q) if query is not None else graph.label(v)
        lines.append(f"  q{q} ({qlabel}) -> v{v} ({graph.label(v)})")
    for (u, v), path in sorted(result.paths.items()):
        chain = " - ".join(f"v{x}" for x in path)
        lines.append(f"  edge (q{u}, q{v}): {chain}  [length {len(path) - 1}]")
    return "\n".join(lines)
