"""End-to-end visual sessions: simulator + blender on a virtual timeline.

:class:`VisualSession` is the harness equivalent of one participant
formulating one query on one dataset with one strategy.  It runs a *hybrid
clock* (DESIGN.md substitution table):

* user think-time is **virtual** — each visual step's duration comes from
  the latency model, so no wall-clock is wasted waiting for a simulated
  human;
* engine compute is **real** — each ``apply`` is measured with
  ``perf_counter`` exactly as the Java system measured its own work.

The two interleave on one timeline: action *i* arrives at virtual time
``T_i`` (cumulative step durations); the engine starts it no earlier than
``max(T_i, busy_until)`` and advances ``busy_until`` by its real compute
time.  Defer-to-Idle's probe budget is the true idle window
``T_{i+1} - busy_until``.  If CAP work is still outstanding when Run is
clicked (engine overloaded by expensive edges — the Exp 1/7 failure mode of
Immediate construction), the leftover *backlog* is charged to the SRT, just
as the user would experience it.

Resilience & fault injection
----------------------------
A session optionally carries a :class:`~repro.resilience.ResilienceConfig`
(handed to every :class:`Boomer` it creates) and a
:class:`~repro.faults.FaultPlan` (the context's oracle and the latency
model are wrapped once at construction; CAP corruption, if any, is applied
right before the Run click — the worst possible moment).  With both set, a
mid-stream component failure no longer kills the session: the affected
action is reported ``failed-deferred`` and the Run either completes on the
CAP path or degrades to the BU baseline, flagged on the result.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.actions import Action, Run
from repro.core.blender import ActionReport, Boomer, RunResult
from repro.core.context import EngineContext
from repro.core.cost import GUILatencyConstants
from repro.errors import SessionError
from repro.gui.latency import LatencyModel
from repro.gui.simulator import SimulatedUser
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.resilience import ResilienceConfig
from repro.workload.generator import QueryInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan

__all__ = ["VisualSession", "SessionResult", "TimelineState"]


@dataclass
class TimelineState:
    """The hybrid virtual clock of one formulation session.

    Factored out of :meth:`VisualSession.run_actions` so both batch replay
    (whole action list at once) and the incremental service layer
    (:mod:`repro.service`, one wire request per action) advance the *same*
    timeline arithmetic: action *i* arrives at virtual ``T_i``; the engine
    starts it no earlier than ``max(T_i, busy_until)``; leftover GUI
    latency is the idle window handed to Defer-to-Idle (or, in the
    service, donated to the cross-session :class:`IdleScheduler`).
    """

    arrival: float = 0.0  # virtual time the next action is handed over
    busy_until: float = 0.0  # engine busy horizon (virtual)
    formulation_busy: float = 0.0  # engine compute during formulation
    simulated_qft: float = 0.0  # total virtual formulation time

    def step(
        self,
        boomer: Boomer,
        action: Action,
        idle_sink: Callable[[float], float] | None = None,
    ) -> ActionReport:
        """Apply one non-Run action on the timeline; returns its report.

        ``idle_sink`` receives the idle window (seconds) and returns the
        compute time actually spent in it; defaults to the session's own
        pool probe (:meth:`Boomer.probe_idle`).
        """
        report = boomer.apply(action)
        start = max(self.arrival, self.busy_until)
        self.busy_until = start + report.compute_seconds
        self.formulation_busy += report.compute_seconds
        latency = (
            action.latency_after
            if action.latency_after is not None
            else boomer.engine.t_lat
        )
        if action.latency_after is not None:
            self.simulated_qft += action.latency_after
        next_arrival = self.arrival + latency
        idle = next_arrival - self.busy_until
        if idle > 0.0:
            sink = idle_sink if idle_sink is not None else boomer.probe_idle
            spent = sink(idle)
            self.busy_until += spent
            self.formulation_busy += spent
        self.arrival = next_arrival
        return report

    @property
    def backlog_seconds(self) -> float:
        """CAP work still pending were Run clicked now (charged to SRT)."""
        return max(self.busy_until - self.arrival, 0.0)


@dataclass
class SessionResult:
    """Everything one simulated session produced."""

    instance_name: str
    strategy: str
    run: RunResult
    boomer: Boomer
    actions: list[Action]
    simulated_qft_seconds: float  # total virtual formulation time
    backlog_seconds: float  # CAP work still pending at the Run click
    formulation_busy_seconds: float  # engine compute during formulation

    # -- the paper's headline metrics ------------------------------------
    @property
    def srt_seconds(self) -> float:
        """System response time: Run click -> V_Δ available.

        Backlogged CAP work + pool drain + enumeration — what the user
        actually waits for (Figures 5, 6a, 7, 11, 16).
        """
        return self.backlog_seconds + self.run.srt_seconds

    @property
    def cap_construction_seconds(self) -> float:
        """Total CAP construction time wherever it happened (Figs. 8/10/15)."""
        return self.run.cap_construction_seconds

    @property
    def cap_size(self) -> int:
        """Final CAP index size per Lemma 5.2 accounting."""
        return self.run.cap_size.total

    @property
    def cap_peak_size(self) -> int:
        """Largest transient CAP size — what Figures 9/13/17 compare.

        The final index is a strategy-independent fixpoint; the *peak*
        differs because Immediate construction materializes expensive
        edges' pairs before pruning could shrink the candidate sets.
        """
        return self.run.cap_peak_size

    @property
    def num_matches(self) -> int:
        """``|V_Δ|``."""
        return self.run.num_matches

    # -- resilience outcome ----------------------------------------------
    @property
    def degraded(self) -> bool:
        """True when the matches came from the BU degradation ladder."""
        return self.run.degraded

    @property
    def fallback(self) -> str | None:
        """Ladder rung that produced the matches ("bu-oracle"/"bu-bfs")."""
        return self.run.fallback

    @property
    def absorbed_failures(self) -> list[str]:
        """Failures the resilience layer absorbed during this session."""
        return self.boomer.absorbed_failures


class VisualSession:
    """Runs simulated formulation sessions against one engine context.

    One ``VisualSession`` may run many sessions (fresh ``Boomer`` each
    time); context counters are reset per run, so sessions are independent
    measurements.
    """

    def __init__(
        self,
        ctx: EngineContext,
        latency_constants: GUILatencyConstants | None = None,
        jitter: float = 0.0,
        speed: float = 1.0,
        seed: int = 0,
        resilience: ResilienceConfig | None = None,
        fault_plan: "FaultPlan | None" = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if (
            fault_plan is not None
            and fault_plan.cap is not None
            and resilience is not None
            and not resilience.verify_cap_on_run
        ):
            # The plan will rot the CAP store; enumerating it unaudited
            # could return silently wrong matches — the one failure mode
            # the resilience layer must never allow.  Storage is known
            # untrusted here, so verification is not optional.
            from dataclasses import replace

            resilience = replace(resilience, verify_cap_on_run=True)
        self.resilience = resilience
        self.fault_plan = fault_plan
        #: Shared across every session this harness runs; pass a fresh
        #: :class:`~repro.obs.trace.Tracer` per run for isolated timelines.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if fault_plan is not None:
            # Oracle faults apply to every engine built from this context.
            ctx = fault_plan.wrap_context(ctx)
        self.ctx = ctx
        constants = latency_constants or GUILatencyConstants()
        model: LatencyModel = LatencyModel(
            constants, jitter=jitter, speed=speed, seed=seed
        )
        if fault_plan is not None:
            model = fault_plan.wrap_latency_model(model)
        self.latency_model = model
        self.user = SimulatedUser(self.latency_model)

    def run(
        self,
        instance: QueryInstance,
        strategy: str = "DI",
        edge_order: Sequence[int] | None = None,
        pruning: bool = True,
        force_large_upper: bool = False,
        max_results: int | None = None,
    ) -> SessionResult:
        """Formulate and execute ``instance``; returns the session metrics."""
        actions = self.user.formulate(instance, edge_order=edge_order)
        return self.run_actions(
            actions,
            instance_name=instance.name,
            strategy=strategy,
            pruning=pruning,
            force_large_upper=force_large_upper,
            max_results=max_results,
        )

    def run_actions(
        self,
        actions: Sequence[Action],
        instance_name: str = "adhoc",
        strategy: str = "DI",
        pruning: bool = True,
        force_large_upper: bool = False,
        max_results: int | None = None,
    ) -> SessionResult:
        """Drive a prepared action list through the hybrid timeline."""
        if not actions or not isinstance(actions[-1], Run):
            raise SessionError("action list must end with Run")
        self.ctx.counters.reset()
        boomer = Boomer(
            self.ctx,
            strategy=strategy,
            pruning=pruning,
            force_large_upper=force_large_upper,
            max_results=max_results,
            auto_idle=False,
            resilience=self.resilience,
            tracer=self.tracer,
        )

        # Virtual timeline.  Action i is *performed* by the user during
        # [T_{i-1}, T_i] (duration = previous action's latency_after) and
        # handed to the engine at T_i.  latency_after of action i is, by
        # simulator construction, the duration of action i+1.
        timeline = TimelineState()
        for action in actions[:-1]:
            timeline.step(boomer, action)

        backlog = timeline.backlog_seconds  # CAP work pending at the Run click
        if self.fault_plan is not None:
            # Storage rot lands at the worst possible moment: after the
            # last formulation action, before the Run click reads the CAP.
            self.fault_plan.corrupt_cap(boomer.cap)
        run_result = _apply_run(boomer, actions[-1])

        qft = sum(
            a.latency_after for a in actions if a.latency_after is not None
        )
        return SessionResult(
            instance_name=instance_name,
            strategy=boomer.strategy_name,
            run=run_result,
            boomer=boomer,
            actions=list(actions),
            simulated_qft_seconds=qft,
            backlog_seconds=backlog,
            formulation_busy_seconds=timeline.formulation_busy,
        )


def _apply_run(boomer: Boomer, run_action: Action) -> RunResult:
    boomer.apply(run_action)
    result = boomer.run_result
    if result is None:  # pragma: no cover - defensive
        raise SessionError("Run action did not produce a result")
    return result
