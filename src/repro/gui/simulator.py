"""Simulated user: query instance -> timed action stream.

Replaces the study participants: given a :class:`QueryInstance` and an edge
construction order (default Figure-4 order or a Table-2 QFS), emit the
``NewVertex``/``NewEdge`` actions a human would produce, annotated with the
GUI latency the *next* visual step will provide (paper Sec. 5.3: the
fragment drawn at step *i* is processed inside the latency of step *i+1*).

Vertex ordering rule: a vertex is drawn immediately before the first edge
that needs it, matching how people formulate connected patterns; the
resulting vertex order is the matching order ``M``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.core.actions import Action, NewEdge, NewVertex, Run
from repro.errors import ExperimentError
from repro.gui.latency import LatencyModel
from repro.workload.generator import QueryInstance

__all__ = ["SimulatedUser"]


class SimulatedUser:
    """Deterministic (seeded) stand-in for a study participant."""

    def __init__(self, latency_model: LatencyModel) -> None:
        self.latency = latency_model

    def formulate(
        self,
        instance: QueryInstance,
        edge_order: Sequence[int] | None = None,
    ) -> list[Action]:
        """Produce the action list (ending with ``Run``) for ``instance``.

        ``edge_order`` is a permutation of 1-based edge indices (a QFS);
        defaults to the template's Figure-4 construction order.
        """
        template = instance.template
        order = tuple(edge_order) if edge_order is not None else tuple(
            range(1, template.num_edges + 1)
        )
        if sorted(order) != list(range(1, template.num_edges + 1)):
            raise ExperimentError(
                f"edge order {order} is not a permutation of "
                f"e1..e{template.num_edges}"
            )

        actions: list[Action] = []
        drawn: set[int] = set()
        for index in order:
            u, v = template.edges[index - 1]
            for q in (u, v):
                if q not in drawn:
                    drawn.add(q)
                    actions.append(
                        NewVertex(vertex_id=q, label=instance.labels[q - 1])
                    )
            bounds = instance.bounds[index - 1]
            actions.append(NewEdge(u=u, v=v, lower=bounds.lower, upper=bounds.upper))
        # A template is connected, so every vertex is drawn by now; guard
        # against malformed templates anyway.
        if len(drawn) != template.num_vertices:
            raise ExperimentError(
                f"{template.name}: vertices {set(range(1, template.num_vertices + 1)) - drawn} "
                "never referenced by an edge"
            )
        actions.append(Run())
        return self._attach_latencies(actions)

    def _attach_latencies(self, actions: list[Action]) -> list[Action]:
        """Set each action's ``latency_after`` to the next step's duration."""
        durations = [self.latency.action_time(a) for a in actions]
        timed: list[Action] = []
        for i, action in enumerate(actions):
            if isinstance(action, Run):
                timed.append(action)
            else:
                timed.append(replace(action, latency_after=durations[i + 1]))
        return timed

    def formulation_time(self, actions: Sequence[Action]) -> float:
        """Total simulated QFT of an action list (sum of step durations).

        Note this re-samples durations when jitter > 0; use jitter=0 models
        for exact accounting.
        """
        return sum(self.latency.action_time(a) for a in actions)
