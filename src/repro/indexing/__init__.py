"""Distance-index substrate.

The BOOMER preprocessor builds a **Pruned Landmark Labeling** (PML) index
(Akiba, Iwata, Yoshida — SIGMOD'13) over the data graph: a distance-aware
2-hop cover enabling exact shortest-path distance queries via a merge join
over per-vertex label lists.  BOOMER is orthogonal to the specific oracle
(paper, footnote 5), so the package also ships a plain-BFS oracle used for
testing and for the PML-vs-BFS ablation bench.

Beside the scalar ``distance``/``within`` contract, oracles may implement
the batch contract (``distances_from``/``within_many``); the
:mod:`repro.indexing.batch` module dispatches to it — with a per-pair
fallback shim for scalar-only oracles — and hosts the process-wide
distance-vector cache shared across service sessions.
"""

from repro.indexing.batch import DistanceVectorCache, shared_distance_cache
from repro.indexing.kneighborhood import KNeighborhoodIndex
from repro.indexing.order import degree_order, random_order
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.oracle import (
    BatchDistanceOracle,
    BFSOracle,
    CountingOracle,
    DistanceOracle,
)
from repro.indexing.twohop import two_hop_counts, two_hop_neighbors

__all__ = [
    "KNeighborhoodIndex",
    "degree_order",
    "random_order",
    "PrunedLandmarkLabeling",
    "DistanceOracle",
    "BatchDistanceOracle",
    "BFSOracle",
    "CountingOracle",
    "DistanceVectorCache",
    "shared_distance_cache",
    "two_hop_counts",
    "two_hop_neighbors",
]
