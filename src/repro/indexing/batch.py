"""Batched distance kernels and the shared distance-vector cache.

AIVS materialization (PVS / Algorithm 8) and the BU baseline are dominated
by interpreter-level ``oracle.within(u, v, upper)`` loops over candidate
pairs.  This module is the batch side of the oracle contract:

* :func:`distances_from` / :func:`within_many` — dispatchers that route a
  one-source-vs-many query to an oracle's native vectorized kernel
  (:class:`~repro.indexing.pml.PrunedLandmarkLabeling` answers it with one
  merge over CSR label arrays, :class:`~repro.indexing.oracle.BFSOracle`
  with one cached BFS vector slice) and otherwise fall back to the
  per-pair scalar loop.  The fallback is what keeps
  :class:`~repro.indexing.oracle.CountingOracle` and the fault injectors
  working unchanged: every logical query still reaches ``distance``/
  ``within`` one call at a time, so counts and fault schedules are
  preserved.
* :class:`DistanceVectorCache` — a process-wide bounded LRU of full
  distance vectors, shared across service sessions that query the same
  oracle.  Entries are keyed by ``(id(oracle), epoch, source)`` — the
  epoch is the oracle's (ultimately the graph's) mutation counter, so a
  vector computed before an edge update can never be served after it —
  and carry a weak reference to the oracle that is identity-checked on
  every hit, so a recycled ``id()`` can never serve another oracle's
  distances and a dead oracle is not pinned in memory by its own cache
  entries.  Hits/misses are exported through :mod:`repro.obs.metrics`
  (``repro_distcache_hits_total`` / ``repro_distcache_misses_total``).

Batch answers are bit-identical to the scalar path by construction: the
kernels compute the same min-over-landmarks (or BFS) integers, and every
consumer that batches preserves its scalar iteration order.
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Sequence

import numpy as np

from repro.obs.metrics import metrics

__all__ = [
    "supports_batch",
    "distances_from",
    "within_many",
    "scalar_distances",
    "scalar_within_many",
    "DistanceVectorCache",
    "shared_distance_cache",
]

#: Below this many targets a full-vector cache fill costs more than it
#: saves; the query goes straight to the oracle's native kernel.
FULL_VECTOR_MIN_TARGETS = 32

#: The cache detour computes dist(source, *) for ALL n vertices.  That is
#: only close to free when the requested targets already cover a good
#: fraction of the graph — for a narrow target set the full fill costs
#: n/|targets| times the direct kernel, and a source that never repeats
#: (the common case inside one Run) would pay it for nothing.  Require
#: ``|targets| * FULL_VECTOR_MAX_OVERFILL >= n`` before detouring.
FULL_VECTOR_MAX_OVERFILL = 4


def supports_batch(oracle: object) -> bool:
    """True iff ``oracle`` implements the native batch contract."""
    return hasattr(oracle, "distances_from") and hasattr(oracle, "within_many")


def _as_targets(targets: Sequence[int] | np.ndarray) -> np.ndarray:
    return np.asarray(targets, dtype=np.int64)


# ----------------------------------------------------------------------
# Dispatchers
# ----------------------------------------------------------------------
def distances_from(
    oracle: object, source: int, targets: Sequence[int] | np.ndarray
) -> np.ndarray:
    """``dist(source, t)`` for every ``t`` in ``targets`` (int32, -1 = unreachable).

    Uses the oracle's native vectorized kernel when it has one (routing
    large target sets through :data:`shared_distance_cache` for oracles
    that advertise ``cacheable_vectors``), else falls back to one scalar
    ``distance`` call per target.
    """
    t = _as_targets(targets)
    if not supports_batch(oracle):
        return scalar_distances(oracle, source, t)
    if (
        t.size >= FULL_VECTOR_MIN_TARGETS
        and getattr(oracle, "cacheable_vectors", False)
    ):
        graph = getattr(oracle, "graph", None)
        if (
            graph is not None
            and t.size * FULL_VECTOR_MAX_OVERFILL >= graph.num_vertices
        ):
            vec = shared_distance_cache.lookup(oracle, source)
            if vec is None:
                vec = oracle.distances_from(
                    source, np.arange(graph.num_vertices, dtype=np.int64)
                )
                shared_distance_cache.store(oracle, source, vec)
            # The cached vector skipped the oracle's own target validation.
            n = vec.shape[0]
            bad = (t < 0) | (t >= n)
            if bad.any():
                from repro.errors import VertexNotFoundError

                raise VertexNotFoundError(int(t[np.argmax(bad)]))
            return vec[t]
    return oracle.distances_from(source, t)


def within_many(
    oracle: object,
    sources: Sequence[int],
    targets: Sequence[int] | np.ndarray,
    upper: int,
    skip_equal: bool = False,
) -> list[tuple[int, int]]:
    """All ``(u, v)`` with ``0 <= dist(u, v) <= upper``, source-major.

    Pairs are emitted in source order, each source's targets in target
    order — the same order a per-pair double loop produces.  With
    ``skip_equal=True`` diagonal pairs ``u == v`` are not evaluated (the
    AIVS never uses them: the 1-1 mapping forbids a candidate matching
    two query vertices).
    """
    t = _as_targets(targets)
    if not supports_batch(oracle):
        return scalar_within_many(oracle, sources, t, upper, skip_equal)
    pairs: list[tuple[int, int]] = []
    for u in sources:
        u = int(u)
        dists = distances_from(oracle, u, t)
        ok = (dists >= 0) & (dists <= upper)
        if skip_equal:
            ok &= t != u
        pairs.extend((u, int(v)) for v in t[ok])
    return pairs


# ----------------------------------------------------------------------
# Per-pair fallback shim
# ----------------------------------------------------------------------
def scalar_distances(
    oracle: object, source: int, targets: Sequence[int] | np.ndarray
) -> np.ndarray:
    """The per-pair shim: one ``oracle.distance`` call per target.

    This is both the fallback for batch-incapable oracles (counting
    wrappers, fault injectors) and the reference arm batch kernels are
    verified against.
    """
    t = _as_targets(targets)
    out = np.empty(t.size, dtype=np.int32)
    for i, v in enumerate(t):
        out[i] = oracle.distance(int(source), int(v))
    return out


def scalar_within_many(
    oracle: object,
    sources: Sequence[int],
    targets: Sequence[int] | np.ndarray,
    upper: int,
    skip_equal: bool = False,
) -> list[tuple[int, int]]:
    """Per-pair ``within`` double loop, same emission order as the kernel."""
    t = _as_targets(targets)
    pairs: list[tuple[int, int]] = []
    for u in sources:
        u = int(u)
        for v in t:
            v = int(v)
            if skip_equal and u == v:
                continue
            if oracle.within(u, v, upper):
                pairs.append((u, v))
    return pairs


# ----------------------------------------------------------------------
# Shared full-vector cache
# ----------------------------------------------------------------------
def _oracle_epoch(oracle: object) -> int:
    """The mutation counter a cached vector must match to be served.

    Prefers the oracle's own ``epoch`` (PML tracks the epoch its labels
    were maintained to; BFS mirrors its graph's), falling back to the
    graph's counter, then to 0 for epoch-unaware test doubles — which
    thereby keep the pre-epoch behavior of identity-only keys.
    """
    epoch = getattr(oracle, "epoch", None)
    if epoch is None:
        epoch = getattr(getattr(oracle, "graph", None), "epoch", 0)
    return int(epoch)


class DistanceVectorCache:
    """Bounded LRU of full single-source distance vectors.

    One instance (:data:`shared_distance_cache`) is shared process-wide:
    the service layer hosts many sessions over one PML oracle, and hot
    sources (high-degree candidates re-probed across sessions) hit the
    same vectors.  Thread-safe; eviction is least-recently-*used* (hits
    refresh recency, unlike a FIFO).

    Keys are ``(id(oracle), epoch, source)``.  The epoch dimension makes
    graph mutation a cache flush for free: after :mod:`repro.updates`
    bumps the counter, every pre-mutation vector sits under a key no
    lookup will ever form again (and ages out of the LRU).  Because
    ``id()`` values can be recycled after an oracle is garbage
    collected, each entry also stores a *weak* reference to its oracle
    and a hit requires ``entry.ref() is oracle`` — a stale entry for a
    dead oracle is evicted on sight instead of pinning the oracle (and
    its graph) in memory, which the old strong-reference design did.
    Oracles that don't support weak references are held strongly as a
    fallback (plain test doubles; every real oracle here is weakrefable).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        #: (id(oracle), epoch, source) -> (ref-or-oracle, vector);
        #: dict order is LRU order.
        self._entries: dict[
            tuple[int, int, int], tuple[object, np.ndarray]
        ] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _deref(holder: object) -> object:
        """The held oracle (None once a weakly-held one is collected)."""
        return holder() if isinstance(holder, weakref.ref) else holder

    def lookup(self, oracle: object, source: int) -> np.ndarray | None:
        """The cached full vector for ``(oracle, source)``, or None."""
        key = (id(oracle), _oracle_epoch(oracle), int(source))
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None and self._deref(entry[0]) is oracle:
                self._entries[key] = entry  # re-insert: most recently used
                self.hits += 1
                hit = True
            else:
                # The holder dereferences to a different object (or to
                # None): id() was recycled after the original oracle
                # died; the popped stale entry stays evicted.
                self.misses += 1
                hit = False
        self._record(hit)
        return entry[1] if hit else None

    def store(self, oracle: object, source: int, vector: np.ndarray) -> None:
        """Insert (or refresh) the full vector for ``(oracle, source)``."""
        key = (id(oracle), _oracle_epoch(oracle), int(source))
        try:
            holder: object = weakref.ref(oracle)
        except TypeError:  # slotted without __weakref__, or builtins
            holder = oracle
        with self._lock:
            self._entries.pop(key, None)
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = (holder, vector)
            size = len(self._entries)
        metrics.gauge(
            "repro_distcache_entries", "distance vectors currently cached"
        ).set(size)

    def invalidate(self, oracle: object) -> int:
        """Proactively drop every entry held for ``oracle`` (any epoch).

        The epoch key already makes stale vectors unreachable; this
        frees their memory immediately instead of waiting for LRU churn.
        :mod:`repro.updates` calls it after every mutation.  Returns the
        number of entries dropped.
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if key[0] == id(oracle) and self._deref(entry[0]) is oracle
            ]
            for key in doomed:
                del self._entries[key]
            size = len(self._entries)
        metrics.gauge(
            "repro_distcache_entries", "distance vectors currently cached"
        ).set(size)
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (tests / memory pressure)."""
        with self._lock:
            self._entries.clear()
        metrics.gauge(
            "repro_distcache_entries", "distance vectors currently cached"
        ).set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _record(hit: bool) -> None:
        # Instruments are fetched per update (not cached) so a registry
        # reset between runs cannot strand increments on forgotten series.
        if hit:
            metrics.counter(
                "repro_distcache_hits_total", "shared distance-vector cache hits"
            ).inc()
        else:
            metrics.counter(
                "repro_distcache_misses_total", "shared distance-vector cache misses"
            ).inc()

    def __repr__(self) -> str:
        return (
            f"DistanceVectorCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: The process-wide cache shared by every session (see class docstring).
shared_distance_cache = DistanceVectorCache()
