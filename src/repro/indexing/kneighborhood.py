"""SPath-style k-neighborhood signatures (the paper's §5.2 Remark).

SPath [Zhao & Han, VLDB'10] maintains, per data vertex, the labels of all
vertices within distance ``k`` — a *static*, query-independent structure.
The paper's Remark argues this is unsuitable for the blended paradigm: for
larger ``k`` "it may store a large portion of the entire data graph",
whereas the CAP index is built on the fly only for the current query's
candidates.

This module implements the signature index faithfully enough to quantify
that argument (the ``bench_index_memory`` benchmark compares its footprint
against the CAP index) and to serve as an alternative candidate-filtering
primitive:

* ``signature(v)`` — ``{label: min distance <= k}`` around ``v``;
* ``vertices_with_label_within(label, b)`` — all vertices having some
  ``label``-vertex within ``b <= k`` hops, i.e. the static equivalent of
  one AIVS side before pair verification.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import IndexError_
from repro.graph.algorithms import bfs_distances
from repro.graph.graph import Graph

__all__ = ["KNeighborhoodIndex"]

Label = Hashable


class KNeighborhoodIndex:
    """Per-vertex label signatures up to radius ``k``."""

    def __init__(self, graph: Graph, k: int) -> None:
        if k < 1:
            raise IndexError_("k must be >= 1")
        self.graph = graph
        self.k = k
        #: vertex -> {label: min distance in 1..k}
        self._signatures: list[dict[Label, int]] = []
        self._build()

    def _build(self) -> None:
        """Batched build: one cutoff BFS vector + label-bucket minima.

        Per source, the per-label minimum is a vectorized reduction over
        the label's vertex bucket instead of a Python frontier walk.
        ``d > 0`` excludes both the source itself (distance 0 — SPath
        signatures describe the *neighborhood*) and vertices unreachable
        or beyond the cutoff (``-1``) — the exact semantics of the old
        per-vertex BFS.
        """
        graph = self.graph
        k = self.k
        buckets = list(graph._label_index.items())
        for source in range(graph.num_vertices):
            dist = bfs_distances(graph, source, cutoff=k)
            signature: dict[Label, int] = {}
            for label, verts in buckets:
                d = dist[verts]
                d = d[d > 0]
                if d.size:
                    signature[label] = int(d.min())
            self._signatures.append(signature)

    # ------------------------------------------------------------------
    def signature(self, v: int) -> dict[Label, int]:
        """``{label: min distance}`` of vertices within k hops of ``v``."""
        self.graph._check_vertex(v)
        return dict(self._signatures[v])

    def has_label_within(self, v: int, label: Label, bound: int) -> bool:
        """Is some ``label``-vertex within ``bound`` hops of ``v``?

        ``bound`` must not exceed ``k`` (the index holds no information
        beyond its radius).
        """
        if bound > self.k:
            raise IndexError_(
                f"bound {bound} exceeds the index radius k={self.k}"
            )
        d = self._signatures[v].get(label)
        return d is not None and d <= bound

    def vertices_with_label_within(self, label: Label, bound: int) -> list[int]:
        """All vertices having a ``label``-vertex within ``bound`` hops."""
        return [
            v
            for v in range(self.graph.num_vertices)
            if self.has_label_within(v, label, bound)
        ]

    # ------------------------------------------------------------------
    def total_entries(self) -> int:
        """Stored (vertex, label, distance) triples — the memory figure."""
        return sum(len(sig) for sig in self._signatures)

    def average_signature_size(self) -> float:
        """Mean labels per signature."""
        n = self.graph.num_vertices
        return self.total_entries() / n if n else 0.0

    def __repr__(self) -> str:
        return (
            f"KNeighborhoodIndex(k={self.k}, |V|={self.graph.num_vertices}, "
            f"entries={self.total_entries()})"
        )
