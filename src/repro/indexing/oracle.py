"""Distance-oracle abstraction.

The BOOMER framework "is orthogonal to the choice of exact shortest-path
distance computation technique" (paper, footnote 5): any oracle exposing
``distance``/``within`` can be plugged into the CAP machinery.  This module
defines that protocol plus two implementations used beside PML:

* :class:`BFSOracle` — plain per-source BFS with memoization; the reference
  oracle for correctness tests and the "no index" arm of the PML ablation.
* :class:`CountingOracle` — a wrapper counting/delegating queries, used by
  experiments to report how many distance queries each strategy issues.

Batch contract
--------------
Oracles may additionally implement :class:`BatchDistanceOracle` —
``distances_from(source, targets)`` and ``within_many(sources, targets,
upper)`` — answering one-source-vs-many queries in a single
interpreter-level call.  PML and :class:`BFSOracle` do; consumers reach
the methods through :mod:`repro.indexing.batch`, whose per-pair fallback
shim keeps scalar-only oracles (:class:`CountingOracle`, the fault
injectors) working unchanged.  Batch answers must be bit-identical to the
equivalent loop of scalar calls, including validation errors.

Thread safety
-------------
One oracle instance may back many concurrent sessions (the
:mod:`repro.service` layer shares a single PML index across every hosted
session).  PML queries are pure reads over frozen label arrays and need no
synchronization; the two *stateful* oracles here take a lock around their
mutable bits — :class:`BFSOracle`'s memo cache and both classes' query
counters — so shared use never produces racy stats or a torn cache.

:func:`shared_bfs_oracle` memoizes one :class:`BFSOracle` per data graph.
The degradation ladder (PR 1) builds a BFS fallback whenever the session
oracle dies; caching it means N failed Runs in one process pay for one
fallback's BFS frontier instead of N cold caches.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import VertexNotFoundError
from repro.graph.algorithms import bfs_distances
from repro.graph.graph import Graph

__all__ = [
    "DistanceOracle",
    "BatchDistanceOracle",
    "BFSOracle",
    "CountingOracle",
    "shared_bfs_oracle",
]


@runtime_checkable
class DistanceOracle(Protocol):
    """Anything that answers exact shortest-path distance queries."""

    def distance(self, u: int, v: int) -> int:
        """Exact ``dist(u, v)``; ``-1`` when disconnected."""
        ...

    def within(self, u: int, v: int, upper: int) -> bool:
        """True iff ``0 <= dist(u, v) <= upper``."""
        ...


@runtime_checkable
class BatchDistanceOracle(DistanceOracle, Protocol):
    """A distance oracle with native one-source-vs-many kernels.

    Implementations must be answer- and error-identical to the scalar
    loop: same int32 distances (``-1`` unreachable), same
    ``VertexNotFoundError`` for the first invalid id in iteration order,
    and ``within_many`` emits pairs source-major with each source's
    targets in the given target order.
    """

    def distances_from(self, source: int, targets) -> "np.ndarray":
        """``dist(source, t)`` for every ``t`` (int32; -1 unreachable)."""
        ...

    def within_many(self, sources, targets, upper: int) -> list[tuple[int, int]]:
        """All ``(u, v)`` pairs with ``0 <= dist(u, v) <= upper``."""
        ...


class BFSOracle:
    """Exact distances via memoized single-source BFS.

    Each distinct source triggers one full BFS whose distance vector is
    cached (bounded LRU by insertion order).  Suitable for tests and small
    graphs; the ablation bench uses it to quantify what PML buys.

    Safe to share across threads: the memo cache and query counter are
    guarded by a lock (the BFS itself runs outside the lock so concurrent
    misses on *different* sources still parallelize).

    Graph mutation safe: every memoized vector records the graph epoch it
    was computed at (see :attr:`repro.graph.graph.Graph.epoch`); a hit
    whose stored epoch trails the graph's is treated as a miss and
    recomputed.  BFS has no build step, so unlike PML the oracle
    self-heals instead of raising
    :class:`~repro.errors.StaleIndexError`.
    """

    def __init__(self, graph: Graph, cache_size: int = 1024) -> None:
        self._graph = graph
        #: source -> (graph epoch at compute time, distance vector).
        self._cache: dict[int, tuple[int, np.ndarray]] = {}
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self.query_count = 0

    @property
    def graph(self) -> Graph:
        """The underlying data graph."""
        return self._graph

    @property
    def epoch(self) -> int:
        """The graph epoch this oracle currently answers for.

        BFS recomputes on demand, so the oracle is never behind its
        graph — the shared distance-vector cache keys on this to drop
        pre-mutation vectors.
        """
        return self._graph.epoch

    def _cached_fresh(self, source: int) -> bool:
        """Caller holds the lock: is there a current-epoch vector for source?"""
        entry = self._cache.get(source)
        return entry is not None and entry[0] == self._graph.epoch

    def _vector(self, source: int) -> np.ndarray:
        epoch = self._graph.epoch
        vec = None
        with self._lock:
            entry = self._cache.pop(source, None)
            if entry is not None and entry[0] == epoch:
                # Re-insert at the end: a hit must refresh recency, or the
                # "LRU" degenerates to FIFO and hot sources get evicted.
                self._cache[source] = entry
                vec = entry[1]
            # An epoch-mismatched entry stays popped: the graph moved and
            # the vector describes distances that no longer exist.
        if vec is None:
            vec = bfs_distances(self._graph, source)
            with self._lock:
                current = self._cache.get(source)
                if current is None or current[0] != epoch:
                    if source not in self._cache and (
                        len(self._cache) >= self._cache_size
                    ):
                        # Evict the least recently used (front of the dict).
                        self._cache.pop(next(iter(self._cache)))
                    self._cache[source] = (epoch, vec)
                else:  # another thread raced us; keep its identical vector
                    vec = current[1]
        return vec

    def distance(self, u: int, v: int) -> int:
        # Validate both endpoints up front (like PML): a negative id would
        # otherwise wrap the numpy indexing below and return a *wrong*
        # distance instead of raising.
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        with self._lock:
            self.query_count += 1
            # Run BFS from whichever endpoint already has a fresh vector,
            # else from u.  Stale entries do not count as cached — picking
            # one would just recompute from the other endpoint anyway.
            source, target = (
                (v, u)
                if self._cached_fresh(v) and not self._cached_fresh(u)
                else (u, v)
            )
        if u == v:
            return 0
        return int(self._vector(source)[target])

    def within(self, u: int, v: int, upper: int) -> bool:
        d = self.distance(u, v)
        return 0 <= d <= upper

    # -- batch contract (see repro.indexing.batch) ---------------------
    def distances_from(self, source: int, targets) -> np.ndarray:
        """One cached BFS vector sliced against the whole target set."""
        self._graph._check_vertex(int(source))
        t = np.asarray(targets, dtype=np.int64)
        n = self._graph.num_vertices
        bad = (t < 0) | (t >= n)
        if bad.any():
            raise VertexNotFoundError(int(t[np.argmax(bad)]))
        with self._lock:
            self.query_count += int(t.size)
        if t.size == 0:
            return np.empty(0, dtype=np.int32)
        return self._vector(int(source))[t]

    def within_many(self, sources, targets, upper: int) -> list[tuple[int, int]]:
        """All qualifying pairs, source-major, targets in given order."""
        t = np.asarray(targets, dtype=np.int64)
        pairs: list[tuple[int, int]] = []
        for u in sources:
            u = int(u)
            dists = self.distances_from(u, t)
            ok = (dists >= 0) & (dists <= upper)
            pairs.extend((u, int(v)) for v in t[ok])
        return pairs


class CountingOracle:
    """Delegating oracle that counts queries (experiment instrumentation).

    The counter increment is lock-guarded so one instance can wrap the
    shared oracle of many concurrent sessions without losing counts
    (``+=`` on an int is not atomic across bytecode boundaries).
    """

    #: Scalar-only on purpose (R3): batch dispatch must fall back to the
    #: per-pair shim so every logical query still increments the counter.
    batch_via_shim = True

    def __init__(self, inner: DistanceOracle) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self.query_count = 0

    def distance(self, u: int, v: int) -> int:
        with self._lock:
            self.query_count += 1
        return self._inner.distance(u, v)

    def within(self, u: int, v: int, upper: int) -> bool:
        with self._lock:
            self.query_count += 1
        return self._inner.within(u, v, upper)

    def reset(self) -> None:
        """Zero the counter."""
        with self._lock:
            self.query_count = 0


#: One shared BFS fallback per data graph, identity-keyed.  ``Graph`` is
#: slotted without ``__weakref__``, so entries pin their graph; the cache is
#: bounded (oldest-out) to keep that pinning harmless in long processes
#: that churn through many graphs.  Guarded by a lock because fallback
#: construction can race when several sessions degrade at once.
_shared_bfs: dict[int, tuple[Graph, BFSOracle]] = {}
_shared_bfs_lock = threading.Lock()
_SHARED_BFS_MAX = 8


def shared_bfs_oracle(graph: Graph) -> BFSOracle:
    """The process-wide BFS fallback oracle for ``graph`` (built once).

    The degradation ladder and post-Run result generation both reach for
    an index-free BFS oracle when the session oracle is unusable; within
    one process every such fallback on the same graph shares one instance
    (and therefore one warm BFS cache).
    """
    key = id(graph)
    with _shared_bfs_lock:
        entry = _shared_bfs.get(key)
        if entry is None or entry[0] is not graph:
            if len(_shared_bfs) >= _SHARED_BFS_MAX:
                _shared_bfs.pop(next(iter(_shared_bfs)))
            entry = (graph, BFSOracle(graph))
            _shared_bfs[key] = entry
        return entry[1]
