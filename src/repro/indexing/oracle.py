"""Distance-oracle abstraction.

The BOOMER framework "is orthogonal to the choice of exact shortest-path
distance computation technique" (paper, footnote 5): any oracle exposing
``distance``/``within`` can be plugged into the CAP machinery.  This module
defines that protocol plus two implementations used beside PML:

* :class:`BFSOracle` — plain per-source BFS with memoization; the reference
  oracle for correctness tests and the "no index" arm of the PML ablation.
* :class:`CountingOracle` — a wrapper counting/delegating queries, used by
  experiments to report how many distance queries each strategy issues.

Thread safety
-------------
One oracle instance may back many concurrent sessions (the
:mod:`repro.service` layer shares a single PML index across every hosted
session).  PML queries are pure reads over frozen label arrays and need no
synchronization; the two *stateful* oracles here take a lock around their
mutable bits — :class:`BFSOracle`'s memo cache and both classes' query
counters — so shared use never produces racy stats or a torn cache.

:func:`shared_bfs_oracle` memoizes one :class:`BFSOracle` per data graph.
The degradation ladder (PR 1) builds a BFS fallback whenever the session
oracle dies; caching it means N failed Runs in one process pay for one
fallback's BFS frontier instead of N cold caches.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

import numpy as np

from repro.graph.algorithms import bfs_distances
from repro.graph.graph import Graph

__all__ = [
    "DistanceOracle",
    "BFSOracle",
    "CountingOracle",
    "shared_bfs_oracle",
]


@runtime_checkable
class DistanceOracle(Protocol):
    """Anything that answers exact shortest-path distance queries."""

    def distance(self, u: int, v: int) -> int:
        """Exact ``dist(u, v)``; ``-1`` when disconnected."""
        ...

    def within(self, u: int, v: int, upper: int) -> bool:
        """True iff ``0 <= dist(u, v) <= upper``."""
        ...


class BFSOracle:
    """Exact distances via memoized single-source BFS.

    Each distinct source triggers one full BFS whose distance vector is
    cached (bounded LRU by insertion order).  Suitable for tests and small
    graphs; the ablation bench uses it to quantify what PML buys.

    Safe to share across threads: the memo cache and query counter are
    guarded by a lock (the BFS itself runs outside the lock so concurrent
    misses on *different* sources still parallelize).
    """

    def __init__(self, graph: Graph, cache_size: int = 1024) -> None:
        self._graph = graph
        self._cache: dict[int, np.ndarray] = {}
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self.query_count = 0

    def _vector(self, source: int) -> np.ndarray:
        with self._lock:
            vec = self._cache.get(source)
        if vec is None:
            vec = bfs_distances(self._graph, source)
            with self._lock:
                if source not in self._cache:
                    if len(self._cache) >= self._cache_size:
                        # Drop the oldest entry (dict preserves insertion order).
                        self._cache.pop(next(iter(self._cache)))
                    self._cache[source] = vec
                else:  # another thread raced us; keep its identical vector
                    vec = self._cache[source]
        return vec

    def distance(self, u: int, v: int) -> int:
        with self._lock:
            self.query_count += 1
            # Run BFS from whichever endpoint is already cached, else from u.
            source, target = (
                (v, u) if v in self._cache and u not in self._cache else (u, v)
            )
        if u == v:
            self._graph._check_vertex(u)
            return 0
        return int(self._vector(source)[target])

    def within(self, u: int, v: int, upper: int) -> bool:
        d = self.distance(u, v)
        return 0 <= d <= upper


class CountingOracle:
    """Delegating oracle that counts queries (experiment instrumentation).

    The counter increment is lock-guarded so one instance can wrap the
    shared oracle of many concurrent sessions without losing counts
    (``+=`` on an int is not atomic across bytecode boundaries).
    """

    def __init__(self, inner: DistanceOracle) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self.query_count = 0

    def distance(self, u: int, v: int) -> int:
        with self._lock:
            self.query_count += 1
        return self._inner.distance(u, v)

    def within(self, u: int, v: int, upper: int) -> bool:
        with self._lock:
            self.query_count += 1
        return self._inner.within(u, v, upper)

    def reset(self) -> None:
        """Zero the counter."""
        with self._lock:
            self.query_count = 0


#: One shared BFS fallback per data graph, identity-keyed.  ``Graph`` is
#: slotted without ``__weakref__``, so entries pin their graph; the cache is
#: bounded (oldest-out) to keep that pinning harmless in long processes
#: that churn through many graphs.  Guarded by a lock because fallback
#: construction can race when several sessions degrade at once.
_shared_bfs: dict[int, tuple[Graph, BFSOracle]] = {}
_shared_bfs_lock = threading.Lock()
_SHARED_BFS_MAX = 8


def shared_bfs_oracle(graph: Graph) -> BFSOracle:
    """The process-wide BFS fallback oracle for ``graph`` (built once).

    The degradation ladder and post-Run result generation both reach for
    an index-free BFS oracle when the session oracle is unusable; within
    one process every such fallback on the same graph shares one instance
    (and therefore one warm BFS cache).
    """
    key = id(graph)
    with _shared_bfs_lock:
        entry = _shared_bfs.get(key)
        if entry is None or entry[0] is not graph:
            if len(_shared_bfs) >= _SHARED_BFS_MAX:
                _shared_bfs.pop(next(iter(_shared_bfs)))
            entry = (graph, BFSOracle(graph))
            _shared_bfs[key] = entry
        return entry[1]
