"""Distance-oracle abstraction.

The BOOMER framework "is orthogonal to the choice of exact shortest-path
distance computation technique" (paper, footnote 5): any oracle exposing
``distance``/``within`` can be plugged into the CAP machinery.  This module
defines that protocol plus two implementations used beside PML:

* :class:`BFSOracle` — plain per-source BFS with memoization; the reference
  oracle for correctness tests and the "no index" arm of the PML ablation.
* :class:`CountingOracle` — a wrapper counting/delegating queries, used by
  experiments to report how many distance queries each strategy issues.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.graph.algorithms import bfs_distances
from repro.graph.graph import Graph

__all__ = ["DistanceOracle", "BFSOracle", "CountingOracle"]


@runtime_checkable
class DistanceOracle(Protocol):
    """Anything that answers exact shortest-path distance queries."""

    def distance(self, u: int, v: int) -> int:
        """Exact ``dist(u, v)``; ``-1`` when disconnected."""
        ...

    def within(self, u: int, v: int, upper: int) -> bool:
        """True iff ``0 <= dist(u, v) <= upper``."""
        ...


class BFSOracle:
    """Exact distances via memoized single-source BFS.

    Each distinct source triggers one full BFS whose distance vector is
    cached (bounded LRU by insertion order).  Suitable for tests and small
    graphs; the ablation bench uses it to quantify what PML buys.
    """

    def __init__(self, graph: Graph, cache_size: int = 1024) -> None:
        self._graph = graph
        self._cache: dict[int, np.ndarray] = {}
        self._cache_size = cache_size
        self.query_count = 0

    def _vector(self, source: int) -> np.ndarray:
        vec = self._cache.get(source)
        if vec is None:
            vec = bfs_distances(self._graph, source)
            if len(self._cache) >= self._cache_size:
                # Drop the oldest entry (dict preserves insertion order).
                self._cache.pop(next(iter(self._cache)))
            self._cache[source] = vec
        return vec

    def distance(self, u: int, v: int) -> int:
        self.query_count += 1
        if u == v:
            self._graph._check_vertex(u)
            return 0
        # Run BFS from whichever endpoint is already cached, else from u.
        source, target = (v, u) if v in self._cache and u not in self._cache else (u, v)
        return int(self._vector(source)[target])

    def within(self, u: int, v: int, upper: int) -> bool:
        d = self.distance(u, v)
        return 0 <= d <= upper


class CountingOracle:
    """Delegating oracle that counts queries (experiment instrumentation)."""

    def __init__(self, inner: DistanceOracle) -> None:
        self._inner = inner
        self.query_count = 0

    def distance(self, u: int, v: int) -> int:
        self.query_count += 1
        return self._inner.distance(u, v)

    def within(self, u: int, v: int, upper: int) -> bool:
        self.query_count += 1
        return self._inner.within(u, v, upper)

    def reset(self) -> None:
        """Zero the counter."""
        self.query_count = 0
