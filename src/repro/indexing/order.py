"""Vertex orderings for landmark selection.

PML's pruning power depends almost entirely on processing "central" vertices
first; degree order is the simple, robust choice recommended by Akiba et al.
and is the default everywhere in this reproduction.  A random order is kept
for the ordering ablation (it demonstrates how label sizes blow up without a
centrality-aware order).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import seeded_rng

__all__ = ["degree_order", "random_order"]


def degree_order(graph: Graph) -> np.ndarray:
    """Vertex ids sorted by decreasing degree (ties broken by id).

    Position in the returned array is the vertex's landmark *rank*: rank 0
    is the highest-degree hub, which prunes most subsequent BFS trees.
    """
    degrees = graph.degree_array()
    # argsort of (-degree, id): lexsort keys are applied last-key-major.
    ids = np.arange(graph.num_vertices, dtype=np.int64)
    return np.lexsort((ids, -degrees)).astype(np.int32)


def random_order(graph: Graph, seed: int = 0) -> np.ndarray:
    """A uniformly random landmark order (ablation baseline)."""
    rng = seeded_rng(seed)
    order = list(range(graph.num_vertices))
    rng.shuffle(order)
    return np.asarray(order, dtype=np.int32)
