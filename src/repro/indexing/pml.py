"""Pruned Landmark Labeling — exact shortest-path distance index.

Reimplementation (from the paper's description) of Akiba, Iwata, Yoshida,
"Fast exact shortest-path distance queries on large networks by pruned
landmark labeling", SIGMOD 2013 — the index the BOOMER preprocessor builds
once per data graph (Section 4) and that the large-upper search (Lemma 5.5),
the expensive-edge deferment machinery, and the just-in-time lower-bound
checker all query.

How it works
------------
Vertices are ranked (by decreasing degree).  For each vertex ``v_k`` in rank
order, a BFS is run from ``v_k``; when the BFS reaches ``w`` at distance
``d``, the current (partial) index is first consulted: if some
earlier-ranked landmark already certifies ``dist(v_k, w) <= d``, the visit
is *pruned* (no label stored, no expansion).  Otherwise the pair
``(rank_k, d)`` is appended to ``w``'s label and the BFS continues through
``w``.  The resulting per-vertex labels form a distance-aware 2-hop cover:

    dist(u, v) = min over common landmarks r of  d_u(r) + d_v(r)

and a query is a merge join over the two (rank-sorted) label lists —
exactly the ``O(|C(u)| + |C(v)|)`` cost that Lemma 5.5 charges.

Batch queries
-------------
At construction the per-vertex label lists are also finalized into CSR
numpy arrays (``offsets`` + concatenated rank/distance columns), which is
what :meth:`PrunedLandmarkLabeling.distances_from` vectorizes over: the
source's label is spread into a dense rank-indexed array once, every
target's label slice is gathered in one fancy-index, and a segmented
``np.minimum.reduceat`` yields all distances — one interpreter-level call
answering what the scalar path needs ``len(targets)`` merge joins for.
The scalar lists are kept beside the arrays: single-pair queries stay on
the tight Python merge, which beats numpy on the typically short labels.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque

import numpy as np

from repro.errors import IndexNotBuiltError, StaleIndexError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.indexing.order import degree_order

__all__ = ["PrunedLandmarkLabeling"]

UNREACHABLE = -1
_INF = float("inf")


class PrunedLandmarkLabeling:
    """Distance-aware 2-hop cover index over a :class:`Graph`.

    Usage::

        pml = PrunedLandmarkLabeling.build(graph)
        d = pml.distance(u, v)          # exact; -1 if disconnected
        pml.within(u, v, upper=3)       # d <= 3 ?

    Labels are stored per vertex as two parallel Python lists (landmark
    ranks ascending, distances), which keeps the merge join tight without
    numpy overhead on the typically short lists; a CSR copy of the same
    labels backs the vectorized batch queries (module docstring).
    """

    #: Full distance vectors from this oracle are pure functions of the
    #: frozen index — safe to keep in the process-wide
    #: :data:`repro.indexing.batch.shared_distance_cache` (whose keys
    #: carry :attr:`epoch`, so vectors from a superseded index are
    #: unreachable the moment the graph moves).
    cacheable_vectors = True

    #: Whether :meth:`apply_edge_insert` can patch this index in place.
    #: True for indexes holding mutable Python label lists; the storage
    #: layer's :class:`~repro.storage.basis.StoredPML` (read-only views
    #: over mmap/shm arrays) overrides it to False and must be rebuilt.
    supports_incremental = True

    def __init__(
        self,
        graph: Graph,
        label_ranks: list[list[int]],
        label_dists: list[list[int]],
        order: np.ndarray,
    ) -> None:
        self._graph = graph
        self._label_ranks = label_ranks
        self._label_dists = label_dists
        self._order = order
        self._epoch = graph.epoch
        self.query_count = 0  # instrumentation for t_avg / experiments
        self._finalize_labels()

    def _finalize_labels(self) -> None:
        """Freeze the label lists into CSR arrays for the batch kernels.

        Idempotent: once the CSR arrays exist they are frozen for the
        index's lifetime, and callers (the storage layer, the lazy
        post-unpickle path below) may invoke this unconditionally.  The
        ``_finalized`` flag also travels through pickle and the dataset
        disk cache, so an index restored from a cache written by this
        version skips the rebuild entirely — and storage backends that
        assemble an index over already-final on-disk arrays set the flag
        directly (see :mod:`repro.storage.basis`), where re-finalizing
        would walk label *views* to rebuild arrays that already exist.
        """
        if getattr(self, "_finalized", False):
            return
        if hasattr(self, "_label_offsets"):
            # Arrays exist but the flag predates them (an index unpickled
            # from an old cache): adopt them rather than rebuilding.
            self._finalized = True
            return
        counts = np.fromiter(
            (len(lst) for lst in self._label_ranks),
            dtype=np.int64,
            count=len(self._label_ranks),
        )
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._label_offsets = offsets
        total = int(offsets[-1])
        ranks_arr = np.empty(total, dtype=np.int32)
        dists_arr = np.empty(total, dtype=np.int32)
        for v, (ranks, dists) in enumerate(
            zip(self._label_ranks, self._label_dists)
        ):
            start, end = offsets[v], offsets[v + 1]
            ranks_arr[start:end] = ranks
            dists_arr[start:end] = dists
        self._label_ranks_arr = ranks_arr
        self._label_dists_arr = dists_arr
        # Mean label size, for the dense-vs-merge crossover heuristic.
        n = len(self._label_ranks)
        self._avg_label = (total / n) if n else 0.0
        self._finalized = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph: Graph, order: np.ndarray | None = None
    ) -> "PrunedLandmarkLabeling":
        """Build the index; ``order`` defaults to decreasing degree."""
        if order is None:
            order = degree_order(graph)
        n = graph.num_vertices
        offsets, neighbors = graph.raw_csr()

        label_ranks: list[list[int]] = [[] for _ in range(n)]
        label_dists: list[list[int]] = [[] for _ in range(n)]

        # Temporary dense arrays reused across landmarks; `tmp_dist` holds
        # the landmark's own label as rank -> landmark-to-landmark distance
        # is not needed — we index by *vertex*, holding d(landmark, x) for
        # every x in the landmark's current label support.
        tmp = np.full(n, _INF, dtype=np.float64)  # landmark label spread by rank
        bfs_dist = np.full(n, UNREACHABLE, dtype=np.int32)
        touched: list[int] = []

        for rank in range(n):
            root = int(order[rank])
            # Spread the *root's* current label into tmp (indexed by rank of
            # the landmark) so pruning queries are O(|label(w)|).
            r_ranks = label_ranks[root]
            r_dists = label_dists[root]
            for lr, ld in zip(r_ranks, r_dists):
                tmp[lr] = ld
            tmp[rank] = 0.0

            bfs_dist[root] = 0
            touched.append(root)
            frontier = deque([root])
            while frontier:
                u = frontier.popleft()
                du = int(bfs_dist[u])

                # Pruning test: query(root, u) via current labels.
                w_ranks = label_ranks[u]
                w_dists = label_dists[u]
                pruned = False
                for lr, ld in zip(w_ranks, w_dists):
                    if tmp[lr] + ld <= du:
                        pruned = True
                        break
                if pruned:
                    continue

                w_ranks.append(rank)
                w_dists.append(du)

                for idx in range(int(offsets[u]), int(offsets[u + 1])):
                    w = int(neighbors[idx])
                    if bfs_dist[w] == UNREACHABLE:
                        bfs_dist[w] = du + 1
                        touched.append(w)
                        frontier.append(w)

            # Reset temporaries touched this round.
            for lr in r_ranks:
                tmp[lr] = _INF
            tmp[rank] = _INF
            for v in touched:
                bfs_dist[v] = UNREACHABLE
            touched.clear()

        return cls(graph, label_ranks, label_dists, order)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Graph epoch the labels currently describe.

        ``getattr`` default covers indexes unpickled from disk caches
        written before epochs existed — those graphs were frozen at
        epoch 0, so 0 is exact, not a guess.
        """
        return getattr(self, "_epoch", 0)

    def _check_fresh(self) -> None:
        """Refuse to answer from labels the graph has moved past.

        A PML label set is a pure function of the CSR it was built (or
        incrementally maintained) over; once :mod:`repro.updates` bumps
        the graph epoch without maintaining this index, every answer it
        could give is suspect — raising beats silently serving
        pre-mutation distances.
        """
        expected = self._graph.epoch
        actual = self.epoch
        if actual != expected:
            raise StaleIndexError("PML index", expected=expected, actual=actual)

    def distance(self, u: int, v: int) -> int:
        """Exact ``dist(u, v)``; ``-1`` when ``u`` and ``v`` are disconnected."""
        self._check_fresh()
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        self.query_count += 1
        if u == v:
            return 0
        return self._merge(u, v)

    def _merge(self, u: int, v: int) -> int:
        """Merge join over the two rank-sorted label lists (Lemma 5.5)."""
        ranks_u = self._label_ranks[u]
        dists_u = self._label_dists[u]
        ranks_v = self._label_ranks[v]
        dists_v = self._label_dists[v]
        i = j = 0
        len_u, len_v = len(ranks_u), len(ranks_v)
        best = -1
        while i < len_u and j < len_v:
            ru, rv = ranks_u[i], ranks_v[j]
            if ru == rv:
                total = dists_u[i] + dists_v[j]
                if best < 0 or total < best:
                    best = total
                i += 1
                j += 1
            elif ru < rv:
                i += 1
            else:
                j += 1
        return best

    def within(self, u: int, v: int, upper: int) -> bool:
        """True iff ``dist(u, v) <= upper`` (and the pair is connected)."""
        d = self.distance(u, v)
        return 0 <= d <= upper

    # -- batch contract (see repro.indexing.batch) ---------------------
    #: Sentinel well above any finite distance; sums of two stay < 2^62.
    _UNREACHED = np.int64(1) << 40

    def distances_from(self, source: int, targets) -> np.ndarray:
        """``dist(source, t)`` for every target, as one vectorized merge.

        Returns int32 with ``-1`` for unreachable targets, exactly like
        ``len(targets)`` scalar :meth:`distance` calls (and counted as
        that many queries).  Validation matches the scalar path: the
        source, then each target in order, first offender raises.
        """
        self._check_fresh()
        if not getattr(self, "_finalized", False):
            # Indexes unpickled from a pre-flag disk cache skip __init__
            # and carry no arrays; freeze the CSR on first batch query.
            # (Caches written with the flag skip this entirely.)
            self._finalize_labels()
        self._graph._check_vertex(int(source))
        t = np.asarray(targets, dtype=np.int64)
        n = self._graph.num_vertices
        bad = (t < 0) | (t >= n)
        if bad.any():
            raise VertexNotFoundError(int(t[np.argmax(bad)]))
        self.query_count += int(t.size)
        if t.size == 0:
            return np.empty(0, dtype=np.int32)
        source = int(source)

        # Crossover: a dense pass costs ~O(n) regardless of |targets|; the
        # scalar merges cost ~|targets| * 2*avg_label interpreter steps.
        # Python steps are ~two orders slower than vectorized ones, hence
        # the 1/16 discount before preferring the per-target merges.
        if t.size * 2.0 * max(self._avg_label, 1.0) < n / 16.0:
            out = np.empty(t.size, dtype=np.int32)
            for i, v in enumerate(t):
                v = int(v)
                out[i] = 0 if v == source else self._merge(source, v)
            return out

        # Spread the source's label into a dense rank-indexed array ...
        dense = np.full(n, self._UNREACHED, dtype=np.int64)
        s_ranks = self._label_ranks[source]
        dense[s_ranks] = self._label_dists[source]
        # ... gather every target's label slice in one fancy-index ...
        offsets = self._label_offsets
        starts = offsets[t]
        counts = offsets[t + 1] - starts
        if int(counts.min()) == 0:
            # Only possible for hand-built indexes (pruned BFS always
            # labels a vertex with itself); reduceat needs non-empty
            # segments, so fall back to scalar merges.
            out = np.empty(t.size, dtype=np.int32)
            for i, v in enumerate(t):
                v = int(v)
                out[i] = 0 if v == source else self._merge(source, v)
            return out
        ends = np.cumsum(counts)
        total = int(ends[-1])
        gather = np.arange(total, dtype=np.int64) - np.repeat(
            ends - counts - starts, counts
        )
        sums = (
            dense[self._label_ranks_arr[gather]]
            + self._label_dists_arr[gather]
        )
        # ... and take the per-target minimum over common landmarks.
        best = np.minimum.reduceat(sums, ends - counts)
        out = np.where(best >= self._UNREACHED, -1, best).astype(np.int32)
        out[t == source] = 0  # same self-distance special case as distance()
        return out

    def within_many(self, sources, targets, upper: int) -> list[tuple[int, int]]:
        """All ``(u, v)`` with ``0 <= dist(u, v) <= upper``, source-major.

        Emission order equals the per-pair double loop's: sources in
        given order, each source's qualifying targets in target order.
        """
        t = np.asarray(targets, dtype=np.int64)
        pairs: list[tuple[int, int]] = []
        for u in sources:
            u = int(u)
            dists = self.distances_from(u, t)
            ok = (dists >= 0) & (dists <= upper)
            pairs.extend((u, int(v)) for v in t[ok])
        return pairs

    # ------------------------------------------------------------------
    # Incremental maintenance (driven by repro.updates)
    # ------------------------------------------------------------------
    def apply_edge_insert(self, u: int, v: int) -> tuple[int, int]:
        """Patch the labels for an already-applied edge insert ``{u, v}``.

        The dynamic-PLL insertion rule (Akiba, Iwata & Yoshida, WWW'14):
        the new edge can only *shorten* distances, and any newly optimal
        path root→…→u→v→… must pass through the edge, so for every label
        entry ``(r, d)`` of ``u`` it suffices to resume the pruned BFS of
        landmark ``order[r]`` from ``v`` at distance ``d + 1`` (and
        symmetrically from ``u``).  Resumed visits use the same
        query-based prune as the static build, so the patched label set
        stays a valid 2-hop cover — possibly a superset of what a fresh
        build would store, but answer-identical (the conformance suite
        asserts exactly that).

        Must be called *after* :mod:`repro.updates` mutated the graph;
        returns ``(entries_added, entries_updated)`` and syncs
        :attr:`epoch` to the graph's.
        """
        if not self.supports_incremental:
            raise StaleIndexError(
                f"{type(self).__name__} holds read-only label arrays and "
                "cannot be patched in place"
            )
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        # Snapshot both endpoints' labels first: the first pass may add
        # entries to u or v, and resuming from those would double-walk.
        # The R10 suppressions mark the one legitimate stale read in the
        # tree: this method *is* the repair path, invoked while the epoch
        # intentionally lags the graph, and it syncs self._epoch at exit.
        u_entries = list(
            zip(self._label_ranks[u], self._label_dists[u])  # boomerlint: disable=R10
        )
        v_entries = list(
            zip(self._label_ranks[v], self._label_dists[v])  # boomerlint: disable=R10
        )
        seeds = [(v, u_entries), (u, v_entries)]
        added = updated = 0
        for start, entries in seeds:
            for rank, dist in entries:
                a, b = self._resume_pruned_bfs(int(rank), start, int(dist) + 1)
                added += a
                updated += b
        if added or updated:
            self._refinalize()
        self._epoch = self._graph.epoch
        return added, updated

    def _resume_pruned_bfs(self, rank: int, start: int, dist: int) -> tuple[int, int]:
        """Resume landmark ``order[rank]``'s pruned BFS from one vertex."""
        root = int(self._order[rank])
        offsets, neighbors = self._graph.raw_csr()
        added = updated = 0
        best_seen = {start: dist}
        frontier = deque([(start, dist)])
        while frontier:
            w, dw = frontier.popleft()
            # Prune exactly like the static build: if the current labels
            # already certify dist(root, w) <= dw, neither w's label nor
            # anything beyond it can improve.  (root's own label holds
            # (rank, 0), so an existing entry (rank, d<=dw) at w prunes.)
            cur = self._merge(root, w) if w != root else 0
            if 0 <= cur <= dw:
                continue
            ranks_w = self._label_ranks[w]
            dists_w = self._label_dists[w]
            pos = bisect_left(ranks_w, rank)
            if pos < len(ranks_w) and ranks_w[pos] == rank:
                dists_w[pos] = dw  # shorter path via the new edge
                updated += 1
            else:
                ranks_w.insert(pos, rank)
                dists_w.insert(pos, dw)
                added += 1
            for idx in range(int(offsets[w]), int(offsets[w + 1])):
                x = int(neighbors[idx])
                dx = dw + 1
                if best_seen.get(x, dx + 1) > dx:
                    best_seen[x] = dx
                    frontier.append((x, dx))
        return added, updated

    def rebuild_inplace(self) -> None:
        """Conservative fallback: rebuild the labels over the current CSR.

        Edge deletes can *lengthen* distances, which would require
        retracting label entries whose shortest paths died — identifying
        those precisely costs about as much as rebuilding the affected
        landmarks, so the fallback rebuilds outright (fresh degree
        order, exactly what a cold build would produce) while keeping
        this object's identity: every context, session, and cache key
        holding the oracle sees the repaired index without re-plumbing.
        """
        fresh = PrunedLandmarkLabeling.build(self._graph)
        self._label_ranks = fresh._label_ranks
        self._label_dists = fresh._label_dists
        self._order = fresh._order
        self._label_offsets = fresh._label_offsets
        self._label_ranks_arr = fresh._label_ranks_arr
        self._label_dists_arr = fresh._label_dists_arr
        self._avg_label = fresh._avg_label
        self._finalized = True
        if hasattr(self, "_rank_of"):
            del self._rank_of  # landmark order may have changed
        self._epoch = self._graph.epoch

    def _refinalize(self) -> None:
        """Re-freeze the CSR arrays after the label lists changed."""
        self._finalized = False
        for attr in ("_label_offsets", "_label_ranks_arr", "_label_dists_arr"):
            if hasattr(self, attr):
                delattr(self, attr)
        self._finalize_labels()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The indexed data graph."""
        return self._graph

    def label_size(self, v: int) -> int:
        """``|C(v)|`` — size of the distance-aware 2-hop cover entry of v."""
        self._graph._check_vertex(v)
        # Introspection reads label *sizes*, never distances: a stale
        # epoch can only skew a statistic, so no freshness gate here.
        return len(self._label_ranks[v])  # boomerlint: disable=R10

    def total_label_entries(self) -> int:
        """Total number of (landmark, distance) pairs stored."""
        # Size statistic only — see label_size for why R10 is waived.
        return sum(len(lst) for lst in self._label_ranks)  # boomerlint: disable=R10

    def average_label_size(self) -> float:
        """Mean label size — the main space/speed figure of merit of PML."""
        n = self._graph.num_vertices
        return self.total_label_entries() / n if n else 0.0

    def landmark_rank(self, v: int) -> int:
        """Rank of vertex ``v`` in the landmark order used at build time."""
        # order[rank] = vertex  =>  invert lazily (only introspection needs it)
        if not hasattr(self, "_rank_of"):
            rank_of = np.empty(self._graph.num_vertices, dtype=np.int32)
            rank_of[self._order] = np.arange(self._graph.num_vertices)
            self._rank_of = rank_of
        return int(self._rank_of[v])

    def __repr__(self) -> str:
        return (
            f"PrunedLandmarkLabeling(|V|={self._graph.num_vertices:,}, "
            f"avg_label={self.average_label_size():.1f})"
        )


def require_built(index: PrunedLandmarkLabeling | None) -> PrunedLandmarkLabeling:
    """Raise :class:`IndexNotBuiltError` when ``index`` is missing."""
    if index is None:
        raise IndexNotBuiltError(
            "a PML index is required here; run the preprocessor first"
        )
    return index
