"""Pruned Landmark Labeling — exact shortest-path distance index.

Reimplementation (from the paper's description) of Akiba, Iwata, Yoshida,
"Fast exact shortest-path distance queries on large networks by pruned
landmark labeling", SIGMOD 2013 — the index the BOOMER preprocessor builds
once per data graph (Section 4) and that the large-upper search (Lemma 5.5),
the expensive-edge deferment machinery, and the just-in-time lower-bound
checker all query.

How it works
------------
Vertices are ranked (by decreasing degree).  For each vertex ``v_k`` in rank
order, a BFS is run from ``v_k``; when the BFS reaches ``w`` at distance
``d``, the current (partial) index is first consulted: if some
earlier-ranked landmark already certifies ``dist(v_k, w) <= d``, the visit
is *pruned* (no label stored, no expansion).  Otherwise the pair
``(rank_k, d)`` is appended to ``w``'s label and the BFS continues through
``w``.  The resulting per-vertex labels form a distance-aware 2-hop cover:

    dist(u, v) = min over common landmarks r of  d_u(r) + d_v(r)

and a query is a merge join over the two (rank-sorted) label lists —
exactly the ``O(|C(u)| + |C(v)|)`` cost that Lemma 5.5 charges.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import IndexNotBuiltError
from repro.graph.graph import Graph
from repro.indexing.order import degree_order

__all__ = ["PrunedLandmarkLabeling"]

UNREACHABLE = -1
_INF = float("inf")


class PrunedLandmarkLabeling:
    """Distance-aware 2-hop cover index over a :class:`Graph`.

    Usage::

        pml = PrunedLandmarkLabeling.build(graph)
        d = pml.distance(u, v)          # exact; -1 if disconnected
        pml.within(u, v, upper=3)       # d <= 3 ?

    Labels are stored per vertex as two parallel Python lists (landmark
    ranks ascending, distances), which keeps the merge join tight without
    numpy overhead on the typically short lists.
    """

    def __init__(
        self,
        graph: Graph,
        label_ranks: list[list[int]],
        label_dists: list[list[int]],
        order: np.ndarray,
    ) -> None:
        self._graph = graph
        self._label_ranks = label_ranks
        self._label_dists = label_dists
        self._order = order
        self.query_count = 0  # instrumentation for t_avg / experiments

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph: Graph, order: np.ndarray | None = None
    ) -> "PrunedLandmarkLabeling":
        """Build the index; ``order`` defaults to decreasing degree."""
        if order is None:
            order = degree_order(graph)
        n = graph.num_vertices
        offsets, neighbors = graph.raw_csr()

        label_ranks: list[list[int]] = [[] for _ in range(n)]
        label_dists: list[list[int]] = [[] for _ in range(n)]

        # Temporary dense arrays reused across landmarks; `tmp_dist` holds
        # the landmark's own label as rank -> landmark-to-landmark distance
        # is not needed — we index by *vertex*, holding d(landmark, x) for
        # every x in the landmark's current label support.
        tmp = np.full(n, _INF, dtype=np.float64)  # landmark label spread by rank
        bfs_dist = np.full(n, UNREACHABLE, dtype=np.int32)
        touched: list[int] = []

        for rank in range(n):
            root = int(order[rank])
            # Spread the *root's* current label into tmp (indexed by rank of
            # the landmark) so pruning queries are O(|label(w)|).
            r_ranks = label_ranks[root]
            r_dists = label_dists[root]
            for lr, ld in zip(r_ranks, r_dists):
                tmp[lr] = ld
            tmp[rank] = 0.0

            bfs_dist[root] = 0
            touched.append(root)
            frontier = deque([root])
            while frontier:
                u = frontier.popleft()
                du = int(bfs_dist[u])

                # Pruning test: query(root, u) via current labels.
                w_ranks = label_ranks[u]
                w_dists = label_dists[u]
                pruned = False
                for lr, ld in zip(w_ranks, w_dists):
                    if tmp[lr] + ld <= du:
                        pruned = True
                        break
                if pruned:
                    continue

                w_ranks.append(rank)
                w_dists.append(du)

                for idx in range(int(offsets[u]), int(offsets[u + 1])):
                    w = int(neighbors[idx])
                    if bfs_dist[w] == UNREACHABLE:
                        bfs_dist[w] = du + 1
                        touched.append(w)
                        frontier.append(w)

            # Reset temporaries touched this round.
            for lr in r_ranks:
                tmp[lr] = _INF
            tmp[rank] = _INF
            for v in touched:
                bfs_dist[v] = UNREACHABLE
            touched.clear()

        return cls(graph, label_ranks, label_dists, order)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> int:
        """Exact ``dist(u, v)``; ``-1`` when ``u`` and ``v`` are disconnected."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        self.query_count += 1
        if u == v:
            return 0
        ranks_u = self._label_ranks[u]
        dists_u = self._label_dists[u]
        ranks_v = self._label_ranks[v]
        dists_v = self._label_dists[v]
        i = j = 0
        len_u, len_v = len(ranks_u), len(ranks_v)
        best = -1
        while i < len_u and j < len_v:
            ru, rv = ranks_u[i], ranks_v[j]
            if ru == rv:
                total = dists_u[i] + dists_v[j]
                if best < 0 or total < best:
                    best = total
                i += 1
                j += 1
            elif ru < rv:
                i += 1
            else:
                j += 1
        return best

    def within(self, u: int, v: int, upper: int) -> bool:
        """True iff ``dist(u, v) <= upper`` (and the pair is connected)."""
        d = self.distance(u, v)
        return 0 <= d <= upper

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The indexed data graph."""
        return self._graph

    def label_size(self, v: int) -> int:
        """``|C(v)|`` — size of the distance-aware 2-hop cover entry of v."""
        self._graph._check_vertex(v)
        return len(self._label_ranks[v])

    def total_label_entries(self) -> int:
        """Total number of (landmark, distance) pairs stored."""
        return sum(len(lst) for lst in self._label_ranks)

    def average_label_size(self) -> float:
        """Mean label size — the main space/speed figure of merit of PML."""
        n = self._graph.num_vertices
        return self.total_label_entries() / n if n else 0.0

    def landmark_rank(self, v: int) -> int:
        """Rank of vertex ``v`` in the landmark order used at build time."""
        # order[rank] = vertex  =>  invert lazily (only introspection needs it)
        if not hasattr(self, "_rank_of"):
            rank_of = np.empty(self._graph.num_vertices, dtype=np.int32)
            rank_of[self._order] = np.arange(self._graph.num_vertices)
            self._rank_of = rank_of
        return int(self._rank_of[v])

    def __repr__(self) -> str:
        return (
            f"PrunedLandmarkLabeling(|V|={self._graph.num_vertices:,}, "
            f"avg_label={self.average_label_size():.1f})"
        )


def require_built(index: PrunedLandmarkLabeling | None) -> PrunedLandmarkLabeling:
    """Raise :class:`IndexNotBuiltError` when ``index`` is missing."""
    if index is None:
        raise IndexNotBuiltError(
            "a PML index is required here; run the preprocessor first"
        )
    return index
