"""Two-hop neighborhood utilities.

Section 5.2 of the paper: "we pre-compute the 2-hop neighbourhood of each
vertex in G.  Note that we only record the *count* and not the exact vertex
set" — the counts feed the out-scan/in-scan cost comparison of the two-hop
search (Lemma 5.4), while the actual 2-hop *sets* are enumerated on the fly
when an out-scan is chosen.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph

__all__ = ["two_hop_counts", "two_hop_neighbors", "patch_two_hop_counts"]


def two_hop_counts(graph: Graph) -> np.ndarray:
    """``TwoHop(v)`` for every vertex: |{u != v : dist(v, u) <= 2}|.

    One pass of neighbor-of-neighbor set unions per vertex; computed once
    per data graph by the preprocessor and cached with the dataset.
    """
    offsets, neighbors = graph.raw_csr()
    n = graph.num_vertices
    counts = np.zeros(n, dtype=np.int64)
    for v in range(n):
        reach: set[int] = set()
        for i in range(int(offsets[v]), int(offsets[v + 1])):
            u = int(neighbors[i])
            reach.add(u)
            for j in range(int(offsets[u]), int(offsets[u + 1])):
                reach.add(int(neighbors[j]))
        reach.discard(v)
        counts[v] = len(reach)
    return counts


def two_hop_neighbors(graph: Graph, v: int) -> set[int]:
    """The exact set of vertices within 2 hops of ``v`` (excluding ``v``).

    Enumerated lazily (not stored) — storing the sets "may store a large
    portion of the entire data graph" (paper Remark, Sec. 5.2).
    """
    graph._check_vertex(v)
    offsets, neighbors = graph.raw_csr()
    reach: set[int] = set()
    for i in range(int(offsets[v]), int(offsets[v + 1])):
        u = int(neighbors[i])
        reach.add(u)
        for j in range(int(offsets[u]), int(offsets[u + 1])):
            reach.add(int(neighbors[j]))
    reach.discard(v)
    return reach


def patch_two_hop_counts(
    graph: Graph, counts: np.ndarray, affected: set[int]
) -> int:
    """Recompute ``counts`` in place for the vertices an edge update touched.

    Inserting or deleting edge ``{u, v}`` can only change ``TwoHop(w)``
    for ``w ∈ {u, v} ∪ N(u) ∪ N(v)`` (with the neighborhoods read on the
    side of the update where the edge exists — after an insert, before a
    delete): any other vertex's 2-hop set never walked through the edge.
    :mod:`repro.updates` computes that affected set and passes it here;
    mutating the shared array in place keeps every context holding it
    current.  Returns the number of vertices recomputed.
    """
    for w in affected:
        counts[w] = len(two_hop_neighbors(graph, int(w)))
    return len(affected)
