"""repro.obs — zero-dependency tracing + metrics for the blended engine.

The observability layer has three parts, all stdlib-only so every other
subsystem can depend on it without cycles:

* :mod:`repro.obs.clock` — the single monotonic clock shared by spans,
  stopwatches, budgets, and deadlines;
* :mod:`repro.obs.trace` — per-session span tracing (:class:`Tracer`)
  with parent/child nesting and a bounded ring buffer, plus the no-op
  :data:`NULL_TRACER` that makes un-traced runs essentially free;
* :mod:`repro.obs.metrics` — the process-wide
  :class:`MetricsRegistry` (:data:`metrics`) of counters/gauges/
  histograms with snapshot/delta export and Prometheus-style text
  exposition.

:mod:`repro.obs.export` turns exported span records back into trees,
summaries, and the Figure-7 SRT decomposition.  See
``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

from repro.obs import clock, export
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    record_run_counters,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "clock",
    "export",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "record_run_counters",
]
