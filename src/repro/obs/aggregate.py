"""Cross-process metrics aggregation for the worker pool.

A :class:`~repro.obs.metrics.MetricsRegistry` is deliberately
process-wide — its lock-free hot paths are the whole point — so a
:mod:`repro.service.pool` deployment has N+1 of them: one per worker
process plus the dispatcher's own.  The wire ``metrics`` verb must keep
returning *one* coherent registry view, so the dispatcher pulls each
worker's :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` over the
control pipe and folds them here.

Merge semantics, by series shape:

* **counters / gauges** (plain numbers) — summed.  Counters sum by
  definition; the gauges this codebase exports (open sessions, cache
  residency) are extensive quantities, so their sum is the fleet value.
* **histograms** (``{count, sum, buckets}`` dicts) — element-wise sums:
  bucket-by-``le`` counts, total count, total sum.  Quantile estimates
  computed from the merged buckets are exactly as accurate as on a
  single process.

Series keys carry their labels (``name{k="v"}``), so identical
instruments from different workers land on the same key and sum, while
per-worker labels (if a caller adds any) stay distinct.

:func:`render_merged_text` re-emits a merged snapshot in the Prometheus
text exposition format.  Snapshots do not carry the instrument kind, so
it is inferred from the value shape and the repo's R4 naming convention
(histogram = dict value, counter = ``*_total``, gauge otherwise) —
exactly the convention boomerlint enforces on every instrument name.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping

__all__ = ["merge_snapshots", "render_merged_text"]

_KEY_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{.*\})?$")


def _series_name(key: str) -> str:
    """The bare metric name of a ``name{label="v"}`` series key."""
    match = _KEY_RE.match(key)
    return match.group("name") if match else key


def _merge_histogram(into: dict[str, Any], value: Mapping[str, Any]) -> None:
    into["count"] = into.get("count", 0) + value.get("count", 0)
    into["sum"] = into.get("sum", 0.0) + value.get("sum", 0.0)
    buckets = into.setdefault("buckets", {})
    for le, cum in value.get("buckets", {}).items():
        buckets[le] = buckets.get(le, 0) + cum


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Any]]
) -> dict[str, Any]:
    """Fold N registry snapshots into one (see module docstring)."""
    merged: dict[str, Any] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, Mapping):
                slot = merged.setdefault(key, {})
                if isinstance(slot, dict):
                    _merge_histogram(slot, value)
                # A kind collision (number vs histogram under one key)
                # cannot happen between registries built from this
                # codebase: the registry itself rejects it per process.
            else:
                prior = merged.get(key, 0)
                merged[key] = (prior if isinstance(prior, (int, float)) else 0) + value
    return {key: merged[key] for key in sorted(merged)}


def _fmt(value: float) -> str:
    if isinstance(value, (int, float)) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _with_label(key: str, extra: str) -> str:
    """Splice ``extra`` (``k="v"``) into a series key's label set."""
    if key.endswith("}"):
        return f"{key[:-1]},{extra}}}"
    return f"{key}{{{extra}}}"


def _suffixed(key: str, suffix: str) -> str:
    """``name{labels}`` -> ``name<suffix>{labels}``."""
    match = _KEY_RE.match(key)
    if match is None:
        return key + suffix
    name, labels = match.group("name"), match.group("labels") or ""
    return f"{name}{suffix}{labels}"


def render_merged_text(merged: Mapping[str, Any]) -> str:
    """Prometheus text exposition of a merged snapshot.

    Kind is inferred (module docstring); ``# TYPE`` is emitted once per
    metric name, series grouped under it like the single-process
    :meth:`~repro.obs.metrics.MetricsRegistry.render_text`.
    """
    by_name: dict[str, list[tuple[str, Any]]] = {}
    for key in sorted(merged):
        by_name.setdefault(_series_name(key), []).append((key, merged[key]))
    lines: list[str] = []
    for name, group in sorted(by_name.items()):
        value0 = group[0][1]
        if isinstance(value0, Mapping):
            kind = "histogram"
        elif name.endswith("_total"):
            kind = "counter"
        else:
            kind = "gauge"
        lines.append(f"# TYPE {name} {kind}")
        for key, value in group:
            if isinstance(value, Mapping):
                for le, cum in value.get("buckets", {}).items():
                    bucket_key = _with_label(
                        _suffixed(key, "_bucket"), f'le="{le}"'
                    )
                    lines.append(f"{bucket_key} {cum}")
                lines.append(f"{_suffixed(key, '_sum')} {_fmt(value.get('sum', 0.0))}")
                lines.append(f"{_suffixed(key, '_count')} {value.get('count', 0)}")
            else:
                lines.append(f"{key} {_fmt(value)}")
    return "\n".join(lines) + ("\n" if lines else "")
