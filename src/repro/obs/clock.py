"""The process-wide monotonic clock every timed component shares.

BOOMER's whole evaluation is an exercise in attributing milliseconds —
CAP work hidden inside GUI latency, Run-phase residue (SRT), per-edge
costs — so *every* timestamp in the system must come from one clock, or
span timelines, stopwatch accumulators, and deadline accounting drift
apart.  This module is that single source:

* :func:`now` — monotonic seconds (``time.perf_counter``);
* :data:`monotonic` — the underlying callable, exposed so tests can
  monkeypatch one symbol (``repro.obs.clock.monotonic``) and move time
  for spans, stopwatches, budgets, and deadlines *together*.

``repro.utils.timing`` (:class:`Stopwatch`, :class:`TimeBudget`) and
``repro.obs.trace`` (span timestamps) both read through this module at
call time, never caching the callable, so a monkeypatched clock takes
effect everywhere at once.  The legacy ``repro.utils.timing.now`` is a
deprecated alias of :func:`now`.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "now"]

#: The raw clock callable.  Monkeypatch this (and only this) in tests
#: that need deterministic time; everything timed reads through it.
monotonic = time.perf_counter


def now() -> float:
    """Current monotonic timestamp in seconds (shared clock source)."""
    return monotonic()
