"""Span post-processing: trees, summaries, and the SRT decomposition.

A tracer exports flat JSON records (:meth:`repro.obs.trace.Tracer.export`);
this module turns them into the shapes people actually read:

* :func:`spans_to_tree` — nest records into a forest by ``parent_id``;
* :func:`summarize` — per-name counts/totals plus balance diagnostics
  (open spans, errors, ring-buffer drops are visible to the caller);
* :func:`srt_decomposition` — recover the paper's Figure-7 quantities
  (formulation time, Run-phase SRT, CAP construction time, enumeration
  time) from span records *alone*, no engine object needed;
* :func:`render_tree` — an indented ASCII timeline for the
  ``repro obs`` CLI.

The canonical span names the engine emits are defined here (``SESSION``,
``PHASE_FORMULATION`` …) so the instrumentation in
:mod:`repro.core.blender` and the analysis in this module can never
drift apart.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "SESSION",
    "PHASE_FORMULATION",
    "PHASE_RUN",
    "ACTION_PREFIX",
    "CAP_ADD_LEVEL",
    "CAP_PROCESS_EDGE",
    "POOL_PROBE",
    "POOL_DRAIN",
    "RUN_DRAIN",
    "RUN_VERIFY_CAP",
    "RUN_ENUMERATE",
    "RUN_DEGRADE",
    "RESULT_VISUALIZE",
    "spans_to_tree",
    "summarize",
    "srt_decomposition",
    "render_tree",
]

# Canonical span names (the taxonomy — see docs/OBSERVABILITY.md).
SESSION = "session"
PHASE_FORMULATION = "phase.formulation"
PHASE_RUN = "phase.run"
ACTION_PREFIX = "action."
CAP_ADD_LEVEL = "cap.add_level"
CAP_PROCESS_EDGE = "cap.process_edge"
POOL_PROBE = "pool.probe"
#: Formulation-phase pool drain (IC catch-up); the Run-phase counterpart
#: is RUN_DRAIN.  Was emitted by the engine but missing from the taxonomy
#: until boomerlint R4 flagged the drift.
POOL_DRAIN = "pool.drain"
RUN_DRAIN = "run.drain"
RUN_VERIFY_CAP = "run.verify_cap"
RUN_ENUMERATE = "run.enumerate"
RUN_DEGRADE = "run.degrade"
RESULT_VISUALIZE = "result.visualize"


def _duration(record: Mapping[str, Any]) -> float:
    d = record.get("duration")
    return float(d) if d is not None else 0.0


def spans_to_tree(records: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Nest flat span records into a forest ordered by start time.

    Each node is a copy of its record plus a ``children`` list.  Records
    whose parent was dropped by the ring buffer become roots (their
    subtree survives even when ancestors did not).
    """
    nodes: dict[int, dict[str, Any]] = {}
    ordered: list[dict[str, Any]] = []
    for record in sorted(records, key=lambda r: (r["start"], r["span_id"])):
        node = dict(record)
        node["children"] = []
        nodes[node["span_id"]] = node
        ordered.append(node)
    roots: list[dict[str, Any]] = []
    for node in ordered:
        parent = nodes.get(node.get("parent_id"))
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


def summarize(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate span records into per-name totals plus health checks."""
    records = list(records)
    by_name: dict[str, dict[str, Any]] = {}
    open_spans = errors = 0
    t0, t1 = float("inf"), float("-inf")
    for r in records:
        entry = by_name.setdefault(
            r["name"], {"count": 0, "total_seconds": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["total_seconds"] += _duration(r)
        if r.get("error"):
            entry["errors"] += 1
            errors += 1
        if r.get("open"):
            open_spans += 1
        t0 = min(t0, r["start"])
        end = r.get("end")
        if end is not None:
            t1 = max(t1, end)
    return {
        "spans": len(records),
        "open": open_spans,
        "errors": errors,
        "balanced": open_spans == 0,
        "wall_seconds": (t1 - t0) if records and t1 > float("-inf") else 0.0,
        "by_name": dict(sorted(by_name.items())),
    }


def srt_decomposition(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Recover the Figure-7 time decomposition from span records alone.

    Returns totals in seconds:

    - ``session`` — root span duration (whole blended session);
    - ``formulation`` — time inside ``phase.formulation`` (CAP work
      hidden in GUI latency);
    - ``srt`` — time inside ``phase.run`` (the system response time the
      user actually waits for);
    - ``cap_construction`` — every ``cap.add_level`` and
      ``cap.process_edge`` span, whichever phase it ran in (the paper's
      total CAP build cost; pool-probe and drain spans are *parents* of
      these and are therefore reported separately, never summed in);
    - ``drain`` / ``verify`` / ``enumeration`` / ``degrade`` — the Run
      phase's internal stages;
    - ``visualize`` — post-Run result materialization;
    - ``phase_coverage`` — (formulation + srt) / session, the tiling
      check: ≈1.0 means the phase children fully account for the root.
    """
    totals = {
        SESSION: 0.0,
        PHASE_FORMULATION: 0.0,
        PHASE_RUN: 0.0,
        CAP_ADD_LEVEL: 0.0,
        CAP_PROCESS_EDGE: 0.0,
        POOL_PROBE: 0.0,
        RUN_DRAIN: 0.0,
        RUN_VERIFY_CAP: 0.0,
        RUN_ENUMERATE: 0.0,
        RUN_DEGRADE: 0.0,
        RESULT_VISUALIZE: 0.0,
    }
    counts = {name: 0 for name in totals}
    for r in records:
        name = r["name"]
        if name in totals:
            totals[name] += _duration(r)
            counts[name] += 1
    session = totals[SESSION]
    phases = totals[PHASE_FORMULATION] + totals[PHASE_RUN]
    return {
        "session": session,
        "formulation": totals[PHASE_FORMULATION],
        "srt": totals[PHASE_RUN],
        "cap_construction": totals[CAP_PROCESS_EDGE] + totals[CAP_ADD_LEVEL],
        "idle_probe": totals[POOL_PROBE],
        "drain": totals[RUN_DRAIN],
        "verify": totals[RUN_VERIFY_CAP],
        "enumeration": totals[RUN_ENUMERATE],
        "degrade": totals[RUN_DEGRADE],
        "visualize": totals[RESULT_VISUALIZE],
        "edges_processed": counts[CAP_PROCESS_EDGE],
        "pool_probes": counts[POOL_PROBE],
        "runs": counts[PHASE_RUN],
        "phase_coverage": (phases / session) if session > 0 else 0.0,
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_tree(
    records: Iterable[Mapping[str, Any]],
    max_depth: int | None = None,
    max_children: int = 40,
) -> str:
    """Indented ASCII timeline of a span forest (for ``repro obs dump``).

    Sibling lists longer than ``max_children`` are elided with a count
    so a thousand-edge formulation phase stays readable.
    """
    lines: list[str] = []

    def emit(node: Mapping[str, Any], depth: int) -> None:
        indent = "  " * depth
        attrs = node.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        flags = ""
        if node.get("error"):
            flags += f" !error={node['error']}"
        if node.get("open"):
            flags += " [open]"
        lines.append(
            f"{indent}{node['name']}  {_fmt_seconds(_duration(node))}"
            + (f"  {detail}" if detail else "")
            + flags
        )
        if max_depth is not None and depth + 1 > max_depth:
            return
        children = node.get("children", [])
        shown = children[:max_children]
        for child in shown:
            emit(child, depth + 1)
        if len(children) > len(shown):
            lines.append(
                f"{'  ' * (depth + 1)}... {len(children) - len(shown)} more "
                f"{shown[-1]['name'] if shown else 'span'} siblings elided"
            )

    for root in spans_to_tree(records):
        emit(root, 0)
    return "\n".join(lines)
