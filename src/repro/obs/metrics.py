"""Process-wide metrics: counters, gauges, histograms, text exposition.

One :class:`MetricsRegistry` per process (the module-level
:data:`metrics`) aggregates what every session, server thread, and
scheduler does: oracle calls, CAP entries, deferral decisions,
evictions, degradation-ladder drops, per-verb service latency.  The
registry is deliberately tiny and dependency-free:

* metrics are named like Prometheus series (``repro_oracle_calls_total``)
  with optional labels (``op="run"``) — one instrument per
  (name, labels) pair, created on first use and cached;
* updates are a single lock-guarded float add (``+=`` is not atomic
  across Python bytecode boundaries, and one server hosts many
  threads), cheap enough for per-request use.  The engine's *per-probe*
  hot path never touches the registry — :class:`EngineCounters` stay
  lock-free and are folded in once per Run
  (see :func:`record_run_counters`);
* :meth:`MetricsRegistry.snapshot` returns a plain dict,
  :meth:`MetricsRegistry.delta` diffs two snapshots (what benchmarks
  and the harness consume), and :meth:`MetricsRegistry.render_text`
  emits the Prometheus text exposition format for scrapers and the
  ``metrics`` service verb.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "record_run_counters",
    "DEFAULT_BUCKETS",
]

#: Histogram bucket upper bounds (seconds) tuned for service latencies:
#: sub-millisecond pings through multi-second degraded Runs.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, float("inf"),
)


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _snapshot(self) -> float:
        return self.value

    def _render(self, key: str) -> list[str]:
        return [f"{key} {_fmt(self.value)}"]


class Gauge:
    """A value that can go up and down (open sessions, CAP entries)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _snapshot(self) -> float:
        return self.value

    def _render(self, key: str) -> list[str]:
        return [f"{key} {_fmt(self.value)}"]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or buckets[-1] != float("inf"):
            buckets = tuple(buckets) + (float("inf"),)
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (e.g. a request latency in seconds)."""
        with self._lock:
            self._sum += value
            self._count += 1
            for i, upper in enumerate(self.buckets):
                if value <= upper:
                    self._counts[i] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            cumulative, running = [], 0
            for c in self._counts:
                running += c
                cumulative.append(running)
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": {
                    _le(upper): cum for upper, cum in zip(self.buckets, cumulative)
                },
            }

    def _render(self, key: str) -> list[str]:
        snap = self._snapshot()
        base, labels = self.name, self.labels
        lines = []
        for le, cum in snap["buckets"].items():
            lines.append(
                f"{_series_key(base + '_bucket', {**labels, 'le': le})} {cum}"
            )
        lines.append(f"{_series_key(base + '_sum', labels)} {_fmt(snap['sum'])}")
        lines.append(f"{_series_key(base + '_count', labels)} {snap['count']}")
        return lines


def _le(upper: float) -> str:
    return "+Inf" if upper == float("inf") else _fmt(upper)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named instruments with cheap atomic updates and snapshot export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[str, Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}

    # -- instrument access (get-or-create) -------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = _series_key(name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = Histogram(name, labels, buckets=buckets)
                self._register(key, name, help, series)
            elif not isinstance(series, Histogram):
                raise TypeError(f"{key} is a {series.kind}, not a histogram")
            return series

    def _get(self, cls, name: str, help: str, labels: Mapping[str, str]):
        key = _series_key(name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = cls(name, labels)
                self._register(key, name, help, series)
            elif not isinstance(series, cls):
                raise TypeError(f"{key} is a {series.kind}, not a {cls.kind}")
            return series

    def _register(self, key: str, name: str, help: str, series) -> None:
        self._series[key] = series
        if help and name not in self._help:
            self._help[name] = help

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Every series as a flat ``{series_key: value}`` dict.

        Counter/gauge values are numbers; histograms are
        ``{count, sum, buckets}`` dicts.  JSON-ready.
        """
        with self._lock:
            series = dict(self._series)
        return {key: s._snapshot() for key, s in sorted(series.items())}

    @staticmethod
    def delta(
        before: Mapping[str, Any], after: Mapping[str, Any]
    ) -> dict[str, Any]:
        """``after - before`` for numeric series and histogram counts.

        Series absent from ``before`` count from zero; gauges diff like
        counters (the caller knows which is which by name).
        """
        out: dict[str, Any] = {}
        for key, value in after.items():
            prior = before.get(key)
            if isinstance(value, dict):
                prior = prior if isinstance(prior, dict) else {}
                out[key] = {
                    "count": value["count"] - prior.get("count", 0),
                    "sum": value["sum"] - prior.get("sum", 0.0),
                }
            else:
                out[key] = value - (prior if isinstance(prior, (int, float)) else 0)
        return out

    def render_text(self) -> str:
        """Prometheus text exposition format (``# TYPE`` + samples)."""
        with self._lock:
            series = dict(self._series)
            helps = dict(self._help)
        by_name: dict[str, list[tuple[str, Counter | Gauge | Histogram]]] = {}
        for key, s in sorted(series.items()):
            by_name.setdefault(s.name, []).append((key, s))
        lines: list[str] = []
        for name, group in sorted(by_name.items()):
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} {group[0][1].kind}")
            for key, s in group:
                lines.extend(s._render(key))
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Forget every series (tests and bench isolation)."""
        with self._lock:
            self._series.clear()
            self._help.clear()


#: The process-wide registry (what the service ``metrics`` verb exports).
metrics = MetricsRegistry()


def record_run_counters(
    counters: Mapping[str, int],
    srt_seconds: float,
    cap_construction_seconds: float,
    outcome: str,
    fallback: str | None = None,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one completed Run's engine counters into the registry.

    Called once per Run by the blender, so the per-probe hot path (tens
    of thousands of oracle calls) costs zero registry locks; the
    aggregate still lands in ``repro_oracle_calls_total`` et al.
    """
    reg = registry if registry is not None else metrics
    reg.counter(
        "repro_oracle_calls_total", "distance-oracle queries issued"
    ).inc(counters.get("distance_queries", 0))
    reg.counter(
        "repro_oracle_python_calls_total",
        "interpreter-level oracle invocations (a batched kernel call "
        "answering many distances counts once)",
    ).inc(counters.get("oracle_calls", 0))
    reg.counter(
        "repro_cap_edges_processed_total", "query edges processed into the CAP"
    ).inc(counters.get("edges_processed", 0))
    reg.counter(
        "repro_cap_edges_deferred_total", "edges parked in the pool (Defer decisions)"
    ).inc(counters.get("edges_deferred", 0))
    reg.counter(
        "repro_pool_probes_total", "idle-window pool probes (Algorithm 10)"
    ).inc(counters.get("pool_probes", 0))
    reg.counter(
        "repro_cap_pairs_added_total", "AIVS pairs materialized"
    ).inc(counters.get("pairs_added", 0))
    reg.counter(
        "repro_runs_total", "Run clicks by outcome", outcome=outcome
    ).inc()
    if fallback is not None:
        reg.counter(
            "repro_degradation_drops_total",
            "degradation-ladder rungs that served matches",
            rung=fallback,
        ).inc()
    reg.histogram(
        "repro_run_srt_seconds", "engine-side SRT per Run"
    ).observe(srt_seconds)
    reg.histogram(
        "repro_cap_construction_seconds", "total CAP build time per Run"
    ).observe(cap_construction_seconds)
