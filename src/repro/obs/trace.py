"""Lightweight span tracing: parent/child nesting over the shared clock.

One :class:`Tracer` records one session's phase-attributed timeline —
effectively a machine-readable Figure-7 SRT decomposition per query.  A
span is opened with :meth:`Tracer.span` (a context manager) or
:meth:`Tracer.start` (manual close, for phases that outlive one call
frame, e.g. the formulation phase spanning many wire requests), carries
a name plus arbitrary attributes, and nests under whichever span is
open when it starts.  Completed spans land in a bounded ring buffer
(oldest dropped first, drop count kept), so a long-lived session cannot
grow without bound.

Balanced by construction
------------------------
``with tracer.span(...)`` closes on *any* exit, recording the exception
on the span; :meth:`Span.close` closes still-open descendants first
(marked ``truncated``) so the exported forest is always balanced — no
orphaned open spans survive a degradation-ladder fallback or a blown
deadline.  :meth:`Tracer.finish` force-closes whatever remains (used at
terminal session failure and export time).

Cost model
----------
The :data:`NULL_TRACER` is the default everywhere: ``span()`` returns a
shared no-op span, so an un-traced engine pays one attribute lookup and
one call per instrumentation point — a few dozen per query edge's worth
of real work.  ``benchmarks/bench_obs_overhead.py`` pins this below the
2% budget on the Figure-8 workload.  Hot *per-probe* events (PML oracle
calls) are never spanned; they flow through counters
(:mod:`repro.obs.metrics`) instead.

Threading: a tracer is deliberately lock-free and therefore not
thread-safe on its own.  Every writer must hold the owning session's
lock — which the service layer already guarantees (requests and
cross-session idle donations both run under the per-session lock).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from repro.obs import clock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "DEFAULT_CAPACITY"]

#: Ring-buffer capacity (closed spans retained per tracer).
DEFAULT_CAPACITY = 8192


class Span:
    """One open-or-closed span.  Created by :class:`Tracer`, never directly."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start", "end", "attrs", "error")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs = attrs
        self.error: str | None = None

    # -- annotations -----------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    @property
    def open(self) -> bool:
        """True until the span is closed."""
        return self.end is None

    @property
    def duration(self) -> float:
        """Seconds from start to end (to *now* while still open)."""
        end = self.end if self.end is not None else self.tracer._now()
        return end - self.start

    # -- lifecycle -------------------------------------------------------
    def close(self, error: str | None = None) -> "Span":
        """Close this span (idempotent), closing open descendants first."""
        if self.end is None:
            if error is not None:
                self.error = error
            self.tracer._close(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and self.error is None:
            self.error = f"{exc_type.__name__}: {exc}"
        self.close()
        return False

    # -- export ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Wire/JSON form of this span (times relative to the tracer epoch)."""
        record: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": (self.end - self.start) if self.end is not None else None,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.error is not None:
            record["error"] = self.error
        if self.end is None:
            record["open"] = True
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.duration * 1e3:.3f}ms"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class Tracer:
    """Per-session span recorder over the shared clock.

    Parameters
    ----------
    capacity:
        Ring-buffer size for *closed* spans; the oldest are dropped (and
        counted in :attr:`dropped`) once it fills.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self.epoch = clock.now()
        self._closed: deque[Span] = deque()
        self._stack: list[Span] = []
        self._next_id = 1
        self.started = 0  # spans ever opened
        self.dropped = 0  # closed spans evicted by the ring buffer

    # -- time ------------------------------------------------------------
    def _now(self) -> float:
        """Seconds since this tracer's epoch (shared clock)."""
        return clock.now() - self.epoch

    # -- span creation ----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the current one; use as ``with``."""
        return self.start(name, **attrs)

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span for manual :meth:`Span.close` (multi-call phases)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, self._next_id, parent, name, self._now(), attrs)
        self._next_id += 1
        self.started += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        """Pop ``span`` (and any still-open descendants) off the stack."""
        if span not in self._stack:  # already force-closed by an ancestor
            return
        while self._stack:
            top = self._stack.pop()
            if top is not span and top.end is None:
                # A descendant left open (caller skipped its close, e.g.
                # an exception unwound past it): close it here so the
                # exported tree stays balanced.
                top.end = self._now()
                top.attrs.setdefault("truncated", True)
                self._record(top)
            if top is span:
                break
        span.end = self._now()
        self._record(span)

    def _record(self, span: Span) -> None:
        if len(self._closed) >= self.capacity:
            self._closed.popleft()
            self.dropped += 1
        self._closed.append(span)

    # -- lifecycle ---------------------------------------------------------
    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 = balanced)."""
        return len(self._stack)

    def finish(self, error: str | None = None) -> int:
        """Force-close every open span (innermost first); returns count."""
        closed = 0
        while self._stack:
            span = self._stack[-1]
            if error is not None and span.error is None:
                span.error = error
            span.close()
            closed += 1
        return closed

    # -- export ------------------------------------------------------------
    def spans(self) -> Iterator[Span]:
        """Closed spans (oldest first), then still-open ones."""
        yield from self._closed
        yield from self._stack

    def export(self, include_open: bool = True) -> list[dict[str, Any]]:
        """All spans as JSON-ready records, ordered by start time."""
        source = self.spans() if include_open else iter(self._closed)
        return sorted(
            (s.to_dict() for s in source), key=lambda r: (r["start"], r["span_id"])
        )

    def clear(self) -> None:
        """Drop every recorded span (open spans are abandoned too)."""
        self._closed.clear()
        self._stack.clear()


class _NullSpan:
    """Shared do-nothing span: the entire cost of disabled tracing."""

    __slots__ = ()
    open = False
    duration = 0.0
    error = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def close(self, error: str | None = None) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def to_dict(self) -> dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every call is a no-op returning the shared span."""

    enabled = False
    capacity = 0
    epoch = 0.0
    started = 0
    dropped = 0
    open_depth = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def start(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, error: str | None = None) -> int:
        return 0

    def spans(self) -> Iterator[Span]:
        return iter(())

    def export(self, include_open: bool = True) -> list[dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass


#: The process-wide disabled tracer; the default on every engine.
NULL_TRACER = NullTracer()
