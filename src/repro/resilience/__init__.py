"""Resilience layer: retries, deadlines, CAP auditing, graceful degradation.

BOOMER's value proposition is that CAP construction hides inside GUI
latency — so a flaky distance oracle, a blown time budget, or a corrupted
CAP entry does not just fail a query, it breaks the interactive illusion
the paper measures.  This package is the defensive machinery that keeps
the illusion intact:

* :class:`RetryPolicy` — bounded, backoff-spaced retries around the
  per-edge CAP construction primitives;
* :class:`Deadline` — a :class:`~repro.utils.timing.TimeBudget` with
  cooperative cancellation checkpoints threaded through pool drain and
  ``V_Δ`` enumeration;
* :class:`CAPInvariantChecker` — integrity audit plus quarantine-and-
  rebuild repair of corrupted query-edge entries;
* :class:`ResilienceConfig` — the per-session bundle of all of the above,
  including the degradation ladder down to the BU baseline.

Fault *injection* (the attack side used by tests and experiments) lives in
the sibling package :mod:`repro.faults`; the two share nothing but the
error taxonomy in :mod:`repro.errors`, so production code never imports
the injectors.
"""

from repro.resilience.checker import CAPAuditReport, CAPInvariantChecker, CAPRepairReport
from repro.resilience.deadline import Deadline
from repro.resilience.policy import ResilienceConfig
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CAPAuditReport",
    "CAPInvariantChecker",
    "CAPRepairReport",
    "Deadline",
    "ResilienceConfig",
    "RetryPolicy",
]
