"""CAP index integrity auditing and quarantine-based repair.

Bit-rot, a crashed writer, or a buggy cache layer can corrupt CAP entries
in ways ordinary exception handling never sees: an AIVS pair dropped in one
direction only, a candidate deleted while neighbors still reference it, a
bogus pair whose endpoints violate the edge's upper bound.  Left alone,
each silently *changes query answers* — the worst failure mode an
interactive engine can have.

:class:`CAPInvariantChecker` makes corruption a detected, typed, repairable
event:

* :meth:`audit` runs the structural invariants of
  :meth:`repro.core.cap.CAPIndex.integrity_issues` plus (when a context is
  supplied) a seeded spot-check that sampled AIVS pairs actually satisfy
  their edge's upper bound through the distance oracle;
* :meth:`repair` quarantines each corrupted query-edge entry by rolling
  back its processed component (the same Algorithm 5 machinery query
  modification uses — see :func:`repro.core.modification.quarantine_edge`),
  re-pools the edges, rebuilds them, and re-audits;
* an unrepairable index raises :class:`~repro.errors.CAPCorruptionError`,
  which the degradation ladder turns into a BU-baseline fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.cap import CAPIndex
from repro.core.context import EngineContext
from repro.core.query import BPHQuery, canonical_edge
from repro.errors import CAPCorruptionError, CAPStateError
from repro.utils.rng import seeded_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blender import BlenderEngine

__all__ = ["CAPAuditReport", "CAPRepairReport", "CAPInvariantChecker"]


@dataclass
class CAPAuditReport:
    """Outcome of one integrity audit."""

    #: Canonical keys of query edges whose CAP entries are corrupt.
    corrupt_edges: list[tuple[int, int]] = field(default_factory=list)
    #: Human-readable description of each violation found.
    issues: list[str] = field(default_factory=list)
    edges_checked: int = 0
    pairs_sampled: int = 0

    @property
    def clean(self) -> bool:
        """True when no violation was found."""
        return not self.issues

    def note(self, edge: tuple[int, int] | None, message: str) -> None:
        """Record one violation (edge may be None for level-scoped issues)."""
        self.issues.append(message)
        if edge is not None:
            key = canonical_edge(*edge)
            if key not in self.corrupt_edges:
                self.corrupt_edges.append(key)


@dataclass
class CAPRepairReport:
    """What a quarantine + rebuild pass did."""

    quarantined: list[tuple[int, int]] = field(default_factory=list)
    dropped_stale: list[tuple[int, int]] = field(default_factory=list)
    rebuilt_edges: int = 0


class CAPInvariantChecker:
    """Validates CAP integrity and rebuilds corrupted query-edge entries.

    Parameters
    ----------
    sample_pairs:
        Upper-bound spot-check budget per processed edge: how many AIVS
        pairs to re-validate through the oracle.  0 disables oracle checks
        (structural audit only).
    seed:
        Seed for the sampling RNG — audits are deterministic.
    """

    def __init__(self, sample_pairs: int = 16, seed: int = 0) -> None:
        self.sample_pairs = sample_pairs
        self.seed = seed

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit(
        self,
        cap: CAPIndex,
        query: BPHQuery,
        ctx: EngineContext | None = None,
    ) -> CAPAuditReport:
        """Check ``cap`` against ``query``; never raises, returns findings."""
        report = CAPAuditReport()
        for edge, message in cap.integrity_issues(query):
            report.note(edge, message)
        if ctx is not None and self.sample_pairs > 0:
            self._spot_check_bounds(cap, query, ctx, report)
        report.edges_checked = len(cap.processed_edges())
        return report

    def _spot_check_bounds(
        self,
        cap: CAPIndex,
        query: BPHQuery,
        ctx: EngineContext,
        report: CAPAuditReport,
    ) -> None:
        """Sampled oracle validation: AIVS pairs must satisfy the upper bound."""
        rng = seeded_rng(self.seed)
        for qi, qj in sorted(cap.processed_edges()):
            if not query.has_edge(qi, qj):
                continue  # already flagged structurally
            upper = query.edge_between(qi, qj).upper
            pairs: list[tuple[int, int]] = []
            for vi in sorted(cap.candidates(qi)):
                try:
                    targets = cap.aivs(qi, qj, vi)
                except CAPStateError:
                    report.note(
                        (qi, qj),
                        f"candidate {vi} of level {qi} lacks an AIVS entry "
                        f"for edge ({qi}, {qj})",
                    )
                    continue
                pairs.extend((vi, vj) for vj in sorted(targets))
            if len(pairs) > self.sample_pairs:
                pairs = rng.sample(pairs, self.sample_pairs)
            for vi, vj in pairs:
                report.pairs_sampled += 1
                try:
                    valid = ctx.within(vi, vj, upper)
                except Exception as exc:
                    # A pair the oracle cannot even evaluate (e.g. a bogus
                    # vertex id the graph has never seen) is corrupt by
                    # definition; an oracle crash mid-audit also lands
                    # here, and the subsequent repair/rebuild — or the
                    # degradation ladder — sorts out which it was.
                    report.note(
                        (qi, qj),
                        f"AIVS pair ({vi}, {vj}) of edge ({qi}, {qj}) "
                        f"unverifiable: {type(exc).__name__}: {exc}",
                    )
                    continue
                if not valid:
                    report.note(
                        (qi, qj),
                        f"AIVS pair ({vi}, {vj}) of edge ({qi}, {qj}) violates "
                        f"upper bound {upper}",
                    )

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(
        self,
        engine: "BlenderEngine",
        report: CAPAuditReport | None = None,
    ) -> CAPRepairReport:
        """Quarantine + rebuild every corrupted entry; re-audit afterwards.

        Raises :class:`CAPCorruptionError` when the index is still dirty
        after the rebuild (e.g. the oracle died mid-repair), so callers can
        step down the degradation ladder.
        """
        from repro.core.modification import quarantine_edge

        if report is None:
            report = self.audit(engine.cap, engine.query, engine.ctx)
        repair = CAPRepairReport()
        if report.clean:
            return repair

        if not report.corrupt_edges:
            # Violations not attributable to a specific edge (e.g. a level
            # inconsistency): structural state is untrustworthy wholesale.
            raise CAPCorruptionError(
                "CAP integrity violated with no repairable edge entry: "
                + "; ".join(report.issues[:3]),
            )

        for key in report.corrupt_edges:
            if not engine.query.has_edge(*key):
                # Stale entry for an edge the query no longer has.
                engine.cap.drop_edge(*key)
                repair.dropped_stale.append(key)
            elif engine.cap.is_processed(*key):
                quarantine_edge(engine, *key)
                repair.quarantined.append(key)
            # else: an earlier quarantine already rolled this edge back
            # (same processed component) — the pool rebuild covers it.

        repair.rebuilt_edges = engine.drain_pool()

        post = self.audit(engine.cap, engine.query, engine.ctx)
        if not post.clean:
            raise CAPCorruptionError(
                "CAP repair failed; index still corrupt after rebuild: "
                + "; ".join(post.issues[:3]),
                corrupt_edges=post.corrupt_edges,
            )
        return repair
