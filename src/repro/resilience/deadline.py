"""Deadline-bounded computation with cooperative cancellation.

:class:`Deadline` extends :class:`repro.utils.timing.TimeBudget` with a
:meth:`checkpoint` that *raises* once the budget is spent.  The engine
threads checkpoints through every unbounded loop of the Run phase — pool
drain, CAP construction, and ``V_Δ`` enumeration — so a runaway query is
cancelled at the next loop iteration instead of holding the GUI hostage.

Cancellation is cooperative on purpose: the CAP index is only ever mutated
between checkpoints (a checkpoint never fires mid-``process_edge``), so a
:class:`~repro.errors.DeadlineExceededError` always leaves the index in a
consistent, resumable state.
"""

from __future__ import annotations

from repro.errors import DeadlineExceededError
from repro.utils.timing import TimeBudget

__all__ = ["Deadline"]


class Deadline(TimeBudget):
    """A :class:`TimeBudget` that can cancel cooperating loops.

    >>> deadline = Deadline(None)          # unlimited: checkpoints are no-ops
    >>> deadline.checkpoint("drain")
    >>> Deadline(0.0).exhausted
    True

    Parameters
    ----------
    seconds:
        Budget in wall-clock seconds; ``None`` means unlimited (every
        checkpoint passes).  ``0.0`` is exhausted immediately — useful to
        assert that cancellation paths fire.
    label:
        Default context used in the error message when no per-checkpoint
        context is given.
    """

    def __init__(self, seconds: float | None, label: str = "operation") -> None:
        super().__init__(seconds)
        self.label = label
        #: Number of checkpoints passed (instrumentation / tests).
        self.checkpoints = 0

    @classmethod
    def unlimited(cls, label: str = "operation") -> "Deadline":
        """A deadline that never fires (placeholder for disabled budgets)."""
        return cls(None, label=label)

    def checkpoint(self, context: str | None = None) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent.

        Cheap enough for per-iteration use: one ``perf_counter`` call when a
        limit is set, nothing otherwise.
        """
        if self.limit is None:
            return
        self.checkpoints += 1
        if self.exhausted:
            raise DeadlineExceededError(context or self.label, limit=self.limit)

    def subbudget(self, cap_seconds: float) -> TimeBudget:
        """A plain budget no larger than ``cap_seconds`` or what remains.

        Used to bound inner loops (e.g. one repair pass) without letting
        them outlive the enclosing deadline.
        """
        remaining = self.remaining()
        if remaining == float("inf"):
            return TimeBudget(cap_seconds)
        return TimeBudget(min(cap_seconds, remaining))
