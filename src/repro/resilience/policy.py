"""Session-level resilience configuration and the degradation ladder.

One :class:`ResilienceConfig` travels from the caller (CLI flag, session
harness, experiment) into :class:`repro.core.blender.Boomer` and controls
every defensive behavior:

* **retry** — transient oracle/component failures inside ``process_edge``
  are retried with backoff (see :class:`repro.resilience.RetryPolicy`);
* **deadline** — the Run phase (pool drain + enumeration) is bounded; a
  blown budget raises :class:`~repro.errors.DeadlineExceededError` at the
  next cooperative checkpoint;
* **verification** — the CAP index is audited (and repaired) before
  enumeration, so storage corruption cannot silently change answers;
* **degradation** — when the CAP path is unrecoverable the engine walks
  the ladder below instead of failing the query.

Degradation ladder
------------------
1. *CAP path* (normal): retries + repair keep the blended pipeline alive.
2. *BU with the session oracle*: correct-but-slower evaluation that needs
   no CAP index at all — survives arbitrary CAP corruption.
3. *BU with a fresh BFS oracle*: needs nothing but the raw graph —
   survives a permanently dead distance oracle too.

Every rung yields the *same* match set (BU and BOOMER agree by the
deferral-neutrality invariant), so degradation trades latency, never
correctness.  A run that degrades is flagged on its
:class:`~repro.core.blender.RunResult` so benchmarks can report
degraded-mode SRT separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.retry import RetryPolicy

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the resilience layer (immutable; share freely).

    Parameters
    ----------
    retry:
        Policy wrapped around per-edge CAP construction.
    deadline_seconds:
        Wall-clock budget for the Run phase (None = unbounded).
    degrade_to_bu:
        Walk the BU degradation ladder on unrecoverable CAP failure
        instead of raising.
    verify_cap_on_run:
        Audit (and if needed repair) the CAP index between pool drain and
        enumeration.  Off by default: it spends oracle queries, and the
        structural invariants are already property-tested; turn it on when
        the storage layer is untrusted.
    audit_sample_pairs:
        Per-edge oracle spot-check budget of the pre-enumeration audit.
    absorb_action_failures:
        Survive mid-formulation component failures by deferring the
        affected CAP work to Run (``failed-deferred`` action status).
        Off in the strict posture so failures stay loud.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline_seconds: float | None = None
    degrade_to_bu: bool = True
    verify_cap_on_run: bool = False
    audit_sample_pairs: int = 16
    absorb_action_failures: bool = True

    @classmethod
    def default(cls) -> "ResilienceConfig":
        """The standard production posture (retries + degradation)."""
        return cls()

    @classmethod
    def strict(cls) -> "ResilienceConfig":
        """Fail loudly: no retries, no degradation, no absorption."""
        return cls(
            retry=RetryPolicy(max_attempts=1),
            degrade_to_bu=False,
            absorb_action_failures=False,
        )

    @classmethod
    def paranoid(cls, deadline_seconds: float | None = None) -> "ResilienceConfig":
        """Everything on: retries, degradation, CAP verification, deadline."""
        return cls(
            deadline_seconds=deadline_seconds,
            degrade_to_bu=True,
            verify_cap_on_run=True,
        )
