"""Bounded retries with exponential backoff and deadline awareness.

A :class:`RetryPolicy` wraps one *operation* (a callable) and retries it on
transient failures — a flaky distance oracle, a remote index that timed
out — while refusing to retry errors that a retry cannot fix:

* :class:`~repro.errors.ReproError` subclasses are library-logic failures
  (invalid query, inconsistent CAP state); retrying would repeat the same
  deterministic failure, so they propagate immediately;
* once a :class:`~repro.resilience.Deadline` is exhausted, the policy stops
  early rather than burn the remaining attempts past the budget.

When attempts run out, the last underlying error is wrapped in a
:class:`~repro.errors.RetryExhaustedError` (with ``__cause__`` chained) so
callers can distinguish "the component is down" from "the retry machinery
gave up" without string matching.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.errors import DeadlineExceededError, ReproError, RetryExhaustedError
from repro.resilience.deadline import Deadline

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable retry configuration (share one instance across calls).

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (1 = no retries).
    base_delay:
        Sleep before the first retry; grows by ``backoff`` per attempt.
        The default is deliberately tiny — GUI latency windows are ~2 s,
        so backoff must stay well under them to remain invisible.
    backoff:
        Multiplier applied to the delay after each failed attempt.
    max_delay:
        Upper clamp on any single sleep.
    retry_on:
        Exception types considered transient.
    never_retry:
        Exception types that propagate immediately even if they match
        ``retry_on``.  Library-logic errors default to non-retryable.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    backoff: float = 2.0
    max_delay: float = 0.05
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    never_retry: tuple[type[BaseException], ...] = (ReproError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")

    def delay_for(self, attempt: int) -> float:
        """Backoff sleep after failed attempt ``attempt`` (1-based)."""
        return min(self.base_delay * (self.backoff ** (attempt - 1)), self.max_delay)

    def call(
        self,
        operation: Callable[..., T],
        *args: Any,
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
        label: str | None = None,
        **kwargs: Any,
    ) -> T:
        """Invoke ``operation`` under this policy and return its result.

        ``on_retry(attempt, error)`` is called before each re-attempt
        (instrumentation hook; exceptions from it are not caught).
        ``label`` names the operation in the exhaustion error.
        """
        name = label or getattr(operation, "__name__", "operation")
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.checkpoint(f"retrying {name}")
            try:
                return operation(*args, **kwargs)
            except self.never_retry:
                raise
            except self.retry_on as exc:
                last_error = exc
                if attempt == self.max_attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                self._sleep(self.delay_for(attempt), deadline, name)
        assert last_error is not None  # loop ran at least once
        raise RetryExhaustedError(name, self.max_attempts, last_error) from last_error

    def _sleep(self, seconds: float, deadline: Deadline | None, name: str) -> None:
        """Back off, but never sleep past the enclosing deadline."""
        if deadline is not None:
            remaining = deadline.remaining()
            if seconds >= remaining:
                # Sleeping would eat the whole budget: fail fast instead.
                raise DeadlineExceededError(f"backing off before retrying {name}",
                                            limit=deadline.limit)
        if seconds > 0:
            time.sleep(seconds)
