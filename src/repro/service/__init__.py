"""Multi-session query service: many visual sessions, one shared engine.

The paper's system is single-user by construction — one person sketching
one query.  The ROADMAP's north star is a server multiplexing *many*
concurrent formulations over one immutable data graph and one expensive
PML oracle.  This package is that layer:

* :class:`ManagedSession` — one hosted formulation: a
  :class:`~repro.core.blender.Boomer` plus the hybrid virtual timeline
  (:class:`~repro.gui.session.TimelineState`), advanced one wire request
  at a time instead of one batch replay at a time.
* :class:`IdleScheduler` — cooperative Defer-to-Idle multiplexer: the
  idle GUI window of *any* session is donated to the cheapest pending CAP
  work across *all* sessions, fair-share scheduled so a chatty session
  never starves another's cheap edges.
* :class:`SessionManager` — the host: admission control (session and
  CAP-entry budgets), LRU eviction of idle sessions under memory
  pressure, per-session accounting, and thread-safe dispatch.
* :class:`QueryServer` / :class:`ServiceClient` — a JSON-lines-over-TCP
  wire protocol (``python -m repro serve``) exposing create-session /
  action / run / results / stats.
* :class:`OverloadPolicy` — watermark backpressure: past configurable
  session/CAP/queue-depth watermarks the manager *sheds* work with the
  typed, retryable ``overloaded`` verdict (+ ``retry_after_ms`` hint)
  instead of queueing into collapse.
* :class:`SessionCheckpoint` / :class:`CheckpointStore` — eviction and
  drain capture the session (action log + virtual timeline + limits) so
  it resumes by id with byte-identical subsequent matches; CAP entries
  are rebuilt warm by the scheduler (deferral neutrality).  The store
  optionally writes through to disk, which is what lets restore survive
  a worker *process* dying, not just in-memory eviction.
* :class:`LocalDispatcher` / :class:`PoolDispatcher` — the server's
  backend seam: the former is the in-process threaded path, the latter
  fans sessions out across N worker processes sharing the engine basis
  zero-copy (``repro serve --workers N``; see :mod:`repro.service.pool`).

Layering: ``service`` sits *above* ``gui``/``core`` — it imports them,
never the reverse.  Everything below the manager is unchanged BOOMER; the
deferral-neutrality invariant is what makes cross-session scheduling safe
(moving CAP work between idle windows can never change ``V_Δ``).
"""

from repro.service.checkpoint import CheckpointStore, SessionCheckpoint
from repro.service.client import ServiceClient
from repro.service.dispatch import LocalDispatcher
from repro.service.manager import ManagerStats, SessionManager
from repro.service.overload import OverloadPolicy
from repro.service.pool import PoolDispatcher
from repro.service.protocol import PROTOCOL_VERSION, canonical_matches
from repro.service.scheduler import IdleScheduler
from repro.service.server import QueryServer
from repro.service.session import ManagedSession, SessionLimits

__all__ = [
    "ManagedSession",
    "SessionLimits",
    "IdleScheduler",
    "SessionManager",
    "ManagerStats",
    "QueryServer",
    "ServiceClient",
    "LocalDispatcher",
    "PoolDispatcher",
    "OverloadPolicy",
    "SessionCheckpoint",
    "CheckpointStore",
    "PROTOCOL_VERSION",
    "canonical_matches",
]
