"""Session checkpoint/restore: eviction as graceful degradation.

Before this module, LRU eviction was data loss: the evicted session's
query graph, virtual timeline, and CAP progress vanished, and the client
got :class:`~repro.errors.SessionEvictedError` — "recreate and replay
yourself".  A checkpoint captures everything needed to *resume the
session by id*:

* the **action log** (recording-format dicts, :mod:`repro.gui.recording`)
  — the formulation itself;
* the **virtual timeline** (:class:`~repro.gui.session.TimelineState`
  scalars) — arrival/busy horizon/QFT accounting;
* the **limits** — strategy, pruning, result cap, trace knobs, and the
  resilience posture (scalar fields; exception-type tuples are rebuilt
  from policy defaults);
* the session's service-side **accounting** (actions applied, donated /
  serviced idle seconds).

What is deliberately *not* captured: the CAP index.  Replaying the action
log with ``auto_idle=False`` re-pools every query edge, and the
**deferral-neutrality invariant** (Theorem: moving CAP work between idle
windows never changes ``V_Δ``) guarantees the restored session's Run
produces byte-identical matches to the uninterrupted original — the CAP
entries are rebuilt warm afterwards by the
:class:`~repro.service.scheduler.IdleScheduler` on other sessions' idle
donations, exactly like any cold session.  Checkpoints are therefore
small (a formulation is a handful of actions), JSON-portable, and cheap
enough to take on every eviction and drain.

Restore replays **outside any manager lock** (engine compute never runs
under service bookkeeping locks — lint rule R6) and re-registers the
session with the scheduler under its original id.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.core.actions import Run
from repro.errors import CheckpointError
from repro.gui.recording import action_from_dict, action_to_dict
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.service.session import ManagedSession, SessionLimits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import EngineContext

__all__ = [
    "SessionCheckpoint",
    "CheckpointStore",
    "checkpoint_session",
    "restore_session",
]

#: Bump when the checkpoint dict layout changes incompatibly.
CHECKPOINT_FORMAT = 1

#: Session states a checkpoint can capture.  ``failed`` is terminal by
#: contract (the engine refuses further work) and ``closed`` has already
#: dropped its state, so neither can round-trip.
_CHECKPOINTABLE_STATES = ("formulating", "ran")


# --------------------------------------------------------------------------
# Limits / resilience serialization
# --------------------------------------------------------------------------
def _retry_to_dict(policy: RetryPolicy) -> dict[str, object]:
    return {
        "max_attempts": policy.max_attempts,
        "base_delay": policy.base_delay,
        "backoff": policy.backoff,
        "max_delay": policy.max_delay,
    }


def _retry_from_dict(payload: dict[str, object]) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=int(payload["max_attempts"]),
        base_delay=float(payload["base_delay"]),
        backoff=float(payload["backoff"]),
        max_delay=float(payload["max_delay"]),
    )


def _resilience_to_dict(config: ResilienceConfig | None) -> dict | None:
    if config is None:
        return None
    return {
        "retry": _retry_to_dict(config.retry),
        "deadline_seconds": config.deadline_seconds,
        "degrade_to_bu": config.degrade_to_bu,
        "verify_cap_on_run": config.verify_cap_on_run,
        "audit_sample_pairs": config.audit_sample_pairs,
        "absorb_action_failures": config.absorb_action_failures,
    }


def _resilience_from_dict(payload: dict | None) -> ResilienceConfig | None:
    if payload is None:
        return None
    deadline = payload["deadline_seconds"]
    return ResilienceConfig(
        retry=_retry_from_dict(payload["retry"]),
        deadline_seconds=None if deadline is None else float(deadline),
        degrade_to_bu=bool(payload["degrade_to_bu"]),
        verify_cap_on_run=bool(payload["verify_cap_on_run"]),
        audit_sample_pairs=int(payload["audit_sample_pairs"]),
        absorb_action_failures=bool(payload["absorb_action_failures"]),
    )


def _limits_to_dict(limits: SessionLimits) -> dict[str, object]:
    return {
        "strategy": limits.strategy,
        "pruning": limits.pruning,
        "max_results": limits.max_results,
        "resilience": _resilience_to_dict(limits.resilience),
        "trace": limits.trace,
        "trace_capacity": limits.trace_capacity,
    }


def _limits_from_dict(payload: dict[str, object]) -> SessionLimits:
    max_results = payload["max_results"]
    return SessionLimits(
        strategy=str(payload["strategy"]),
        pruning=bool(payload["pruning"]),
        max_results=None if max_results is None else int(max_results),
        resilience=_resilience_from_dict(payload["resilience"]),
        trace=bool(payload["trace"]),
        trace_capacity=int(payload["trace_capacity"]),
    )


# --------------------------------------------------------------------------
# The checkpoint record
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SessionCheckpoint:
    """Everything needed to resume one hosted session by id."""

    session_id: str
    state: str  # "formulating" | "ran"
    reason: str  # why it was checkpointed ("CAP budget", "drain", ...)
    limits: dict = field(default_factory=dict)
    #: Recording-format action dicts, in application order; Run excluded
    #: (``state == "ran"`` records that Run happened).
    actions: tuple = ()
    #: TimelineState scalars: arrival, busy_until, formulation_busy,
    #: simulated_qft.
    timeline: dict = field(default_factory=dict)
    #: Service-side accounting carried across the gap.
    actions_applied: int = 0
    backlog_seconds: float = 0.0
    donated_idle_seconds: float = 0.0
    serviced_seconds: float = 0.0
    serviced_edges: int = 0

    # -- JSON round-trip -------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        out = asdict(self)
        out["actions"] = list(self.actions)
        out["format"] = CHECKPOINT_FORMAT
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "SessionCheckpoint":
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint payload must be a JSON object")
        version = payload.get("format")
        if version != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format {version!r} "
                f"(expected {CHECKPOINT_FORMAT})"
            )
        try:
            return cls(
                session_id=str(payload["session_id"]),
                state=str(payload["state"]),
                reason=str(payload["reason"]),
                limits=dict(payload["limits"]),
                actions=tuple(payload["actions"]),
                timeline=dict(payload["timeline"]),
                actions_applied=int(payload["actions_applied"]),
                backlog_seconds=float(payload["backlog_seconds"]),
                donated_idle_seconds=float(payload["donated_idle_seconds"]),
                serviced_seconds=float(payload["serviced_seconds"]),
                serviced_edges=int(payload["serviced_edges"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SessionCheckpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


# --------------------------------------------------------------------------
# Capture / restore
# --------------------------------------------------------------------------
def checkpoint_session(session: ManagedSession, reason: str) -> SessionCheckpoint:
    """Capture ``session`` into a checkpoint (caller holds its lock).

    Raises :class:`~repro.errors.CheckpointError` for terminal states —
    a ``failed`` engine refuses further work and a ``closed`` session has
    already dropped its state, so neither can resume.
    """
    if session.state not in _CHECKPOINTABLE_STATES:
        raise CheckpointError(
            f"session {session.id!r} is {session.state}; only "
            f"{'/'.join(_CHECKPOINTABLE_STATES)} sessions can checkpoint"
        )
    timeline = session.timeline
    return SessionCheckpoint(
        session_id=session.id,
        state=session.state,
        reason=reason,
        limits=_limits_to_dict(session.limits),
        actions=tuple(action_to_dict(a) for a in session.action_log),
        timeline={
            "arrival": timeline.arrival,
            "busy_until": timeline.busy_until,
            "formulation_busy": timeline.formulation_busy,
            "simulated_qft": timeline.simulated_qft,
        },
        actions_applied=session.actions_applied,
        backlog_seconds=session.backlog_seconds,
        donated_idle_seconds=session.donated_idle_seconds,
        serviced_seconds=session.serviced_seconds,
        serviced_edges=session.serviced_edges,
    )


def restore_session(
    checkpoint: SessionCheckpoint, base_ctx: "EngineContext"
) -> ManagedSession:
    """Rebuild a live :class:`ManagedSession` from ``checkpoint``.

    Replays the action log directly through the session's fresh engine
    (no idle probing: every query edge lands back in the Defer-to-Idle
    pool, to be rebuilt warm by the scheduler), then reinstates the
    virtual timeline and accounting scalars, and — for a ``ran``
    checkpoint — re-executes the Run click.  Deferral neutrality makes
    the resumed session's matches byte-identical to the uninterrupted
    original.

    Call **without** holding any manager lock: replay is engine compute.
    """
    limits = _limits_from_dict(checkpoint.limits)
    session = ManagedSession(checkpoint.session_id, base_ctx, limits)
    try:
        actions = [action_from_dict(item) for item in checkpoint.actions]
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint for {checkpoint.session_id!r} holds an unreadable "
            f"action log: {exc}"
        ) from exc
    try:
        for action in actions:
            session.boomer.apply(action)
            session.action_log.append(action)
    except Exception as exc:
        raise CheckpointError(
            f"cannot replay checkpoint for {checkpoint.session_id!r}: {exc}"
        ) from exc
    # Reinstate the hybrid clock exactly where the original left it; the
    # replay above deliberately did not advance it (resume must not
    # re-charge think time or compute that already happened).
    session.timeline.arrival = float(checkpoint.timeline["arrival"])
    session.timeline.busy_until = float(checkpoint.timeline["busy_until"])
    session.timeline.formulation_busy = float(
        checkpoint.timeline["formulation_busy"]
    )
    session.timeline.simulated_qft = float(checkpoint.timeline["simulated_qft"])
    session.actions_applied = checkpoint.actions_applied
    session.donated_idle_seconds = checkpoint.donated_idle_seconds
    session.serviced_seconds = checkpoint.serviced_seconds
    session.serviced_edges = checkpoint.serviced_edges
    session.restored = True
    if checkpoint.state == "ran":
        session.backlog_seconds = checkpoint.backlog_seconds
        try:
            session.boomer.apply(Run())
        except Exception as exc:
            raise CheckpointError(
                f"cannot re-execute Run for {checkpoint.session_id!r}: {exc}"
            ) from exc
        session.state = "ran"
    return session


# --------------------------------------------------------------------------
# The store
# --------------------------------------------------------------------------
#: Session ids safe to use verbatim as checkpoint file stems.  Anything
#: else (ids are client-supplied on ``restore``) skips the disk tier
#: rather than risking a path escape.
_SAFE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,128}$")

_CKPT_SUFFIX = ".ckpt.json"


class CheckpointStore:
    """Bounded, thread-safe holding pen for evicted/drained sessions.

    Insertion order doubles as age; past ``capacity`` the oldest
    checkpoint is dropped (and counted), mirroring the manager's bounded
    evicted-id memory — a session evicted long ago eventually becomes
    unrestorable, and the client falls back to recreate-and-replay.

    With ``directory`` set the store is **write-through to disk**: every
    ``put`` also lands as ``<session_id>.ckpt.json`` (written to a temp
    file then atomically renamed, so readers never observe a torn
    checkpoint), and ``get``/``pop`` fall back to disk on a memory miss.
    That is what lets session restore survive a worker *process* dying:
    a respawned worker — or a different healthy worker the dispatcher
    requeues the session onto — opens a fresh store over the same
    directory and finds every checkpoint its predecessor wrote.  The
    in-memory capacity bound does **not** evict disk files; disk is the
    durable tier, bounded only by explicit ``pop``/``clear_disk``.
    """

    def __init__(self, capacity: int = 256, directory: str | None = None) -> None:
        if capacity < 1:
            raise CheckpointError("checkpoint store capacity must be >= 1")
        self.capacity = capacity
        self.directory = directory
        self._lock = threading.Lock()
        self._checkpoints: OrderedDict[str, SessionCheckpoint] = OrderedDict()
        self.stored_total = 0
        self.dropped_total = 0
        self.disk_writes_total = 0
        self.disk_hits_total = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -- disk tier -------------------------------------------------------
    def _path_for(self, session_id: str) -> str | None:
        if self.directory is None or not _SAFE_ID_RE.match(session_id):
            return None
        return os.path.join(self.directory, session_id + _CKPT_SUFFIX)

    def _write_disk(self, checkpoint: SessionCheckpoint) -> None:
        path = self._path_for(checkpoint.session_id)
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(checkpoint.to_json())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.disk_writes_total += 1

    def _read_disk(self, session_id: str) -> SessionCheckpoint | None:
        path = self._path_for(session_id)
        if path is None:
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        try:
            checkpoint = SessionCheckpoint.from_json(text)
        except CheckpointError:
            # A corrupt file is unrestorable; leave it for forensics but
            # report a miss so the client falls back to recreate.
            return None
        self.disk_hits_total += 1
        return checkpoint

    def _remove_disk(self, session_id: str) -> None:
        path = self._path_for(session_id)
        if path is None:
            return
        try:
            os.remove(path)
        except OSError:
            pass

    def _disk_ids(self) -> list[str]:
        if self.directory is None:
            return []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [
            name[: -len(_CKPT_SUFFIX)]
            for name in names
            if name.endswith(_CKPT_SUFFIX)
        ]

    # -- store API -------------------------------------------------------
    def put(self, checkpoint: SessionCheckpoint) -> None:
        with self._lock:
            self._checkpoints.pop(checkpoint.session_id, None)
            self._checkpoints[checkpoint.session_id] = checkpoint
            self.stored_total += 1
            while len(self._checkpoints) > self.capacity:
                # Memory-tier eviction only; the disk copy (if any)
                # keeps the session restorable.
                self._checkpoints.popitem(last=False)
                self.dropped_total += 1
            self._write_disk(checkpoint)

    def pop(self, session_id: str) -> SessionCheckpoint | None:
        """Remove and return the checkpoint for ``session_id`` (or None)."""
        with self._lock:
            checkpoint = self._checkpoints.pop(session_id, None)
            if checkpoint is None:
                checkpoint = self._read_disk(session_id)
            self._remove_disk(session_id)
            return checkpoint

    def get(self, session_id: str) -> SessionCheckpoint | None:
        with self._lock:
            checkpoint = self._checkpoints.get(session_id)
            if checkpoint is None:
                checkpoint = self._read_disk(session_id)
            return checkpoint

    def ids(self) -> list[str]:
        with self._lock:
            known = dict.fromkeys(self._checkpoints)
            for session_id in self._disk_ids():
                known.setdefault(session_id, None)
            return list(known)

    def clear_disk(self) -> int:
        """Delete every on-disk checkpoint; returns how many were removed."""
        with self._lock:
            removed = 0
            for session_id in self._disk_ids():
                self._remove_disk(session_id)
                removed += 1
            return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "held": len(self._checkpoints),
                "capacity": self.capacity,
                "stored_total": self.stored_total,
                "dropped_total": self.dropped_total,
                "on_disk": len(self._disk_ids()),
                "disk_writes_total": self.disk_writes_total,
                "disk_hits_total": self.disk_hits_total,
            }
