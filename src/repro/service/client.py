"""In-repo client for the ``repro serve`` wire protocol.

Blocking, line-oriented, dependency-free — the reference implementation
of the protocol in docs/SERVICE.md and the driver used by the CI smoke
job, the concurrency tests, and ``benchmarks/bench_service_throughput``.

    with ServiceClient(host, port) as client:
        sid = client.create_session(strategy="DI")
        for action in actions:        # recording-format dicts or Actions
            client.action(sid, action)
        summary = client.run(sid)
        matches = client.matches(sid)

Server-side failures surface as :class:`RemoteServiceError` carrying the
stable v2 error code (``error.code``), the original exception class name
(``error.remote_type``), and whether the server considers the condition
retryable (eviction, admission refusals, overload sheds).

Resilience knobs (both optional, both off by default so existing callers
see exactly the old behavior):

* ``retry_policy`` — a :class:`~repro.resilience.RetryPolicy`; retryable
  server verdicts (``overloaded``, ``admission_refused``) are retried
  under it, honoring the server's ``retry_after_ms`` back-off hint.
  Transport timeouts are *not* silently retried — after a timeout the
  byte stream is undefined (a late response would misalign correlation
  ids), so they surface as the typed, retryable
  :class:`~repro.errors.ServiceTimeoutError` and the caller reconnects.
* ``auto_restore`` — on a ``session_evicted`` verdict whose checkpoint
  is still held server-side (``details.restorable``), issue
  ``restore_session`` and retry the original request transparently.

The client speaks protocol v2 (``v``/``req_id`` envelope) but understands
v1-shaped error payloads too, so it can talk to a pre-envelope server.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.core.actions import Action
from repro.errors import (
    RetryExhaustedError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.resilience import RetryPolicy
from repro.service import protocol

__all__ = ["ServiceClient", "RemoteServiceError"]


class _TransientServiceFailure(Exception):
    """Internal retry carrier.

    :class:`~repro.resilience.RetryPolicy` never retries
    :class:`~repro.errors.ReproError` (library-logic failures repeat
    deterministically) — but a remote ``overloaded`` verdict is the one
    ReproError that is transient *by contract*.  Wrapping it in a plain
    Exception lets the unmodified policy retry it; the loop unwraps the
    typed error again before it ever reaches the caller.
    """

    def __init__(self, error: ServiceError) -> None:
        super().__init__(str(error))
        self.error = error


class RemoteServiceError(ServiceError):
    """A failure response from the service, rehydrated client-side.

    Accepts both error dialects: the v2 typed envelope (``code`` +
    ``details.type``) and the deprecated v1 shape (bare ``type``).
    """

    def __init__(self, payload: dict[str, Any]) -> None:
        details = payload.get("details")
        details = details if isinstance(details, dict) else {}
        self.code = str(payload.get("code", "")) or None
        self.remote_type = str(
            details.get("type") or payload.get("type") or "UnknownError"
        )
        self.retryable = bool(payload.get("retryable", False))
        self.payload = payload
        super().__init__(f"{self.remote_type}: {payload.get('message', '')}")


class ServiceClient:
    """One connection to a :class:`~repro.service.server.QueryServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        auto_restore: bool = False,
    ) -> None:
        self.timeout = timeout
        self.retry_policy = retry_policy
        self.auto_restore = auto_restore
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._dirty = False  # stream undefined after a timeout

    # -- plumbing --------------------------------------------------------
    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one v2 request, wait for its response, return ``result``.

        Without a ``retry_policy`` this is one round-trip, exactly the
        pre-backpressure behavior.  With one, retryable verdicts are
        retried under the policy (sleeping the server's ``retry_after_ms``
        hint first); on exhaustion the *typed* last error is raised, not
        the policy's wrapper, so callers always switch on stable codes.
        """
        if self.retry_policy is None:
            try:
                return self._attempt(op, params)
            except _TransientServiceFailure as exc:
                raise exc.error from exc.error.__cause__
        try:
            return self.retry_policy.call(
                self._attempt,
                op,
                params,
                on_retry=self._sleep_server_hint,
                label=f"service op {op!r}",
            )
        except RetryExhaustedError as exc:
            if isinstance(exc.last_error, _TransientServiceFailure):
                raise exc.last_error.error from exc
            raise

    def _attempt(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        """One request round-trip, with retryable verdicts wrapped."""
        try:
            return self._request_once(op, params)
        except RemoteServiceError as exc:
            if exc.code == "session_evicted":
                session = params.get("session")
                if (
                    self.auto_restore
                    and op != "restore_session"
                    and isinstance(session, str)
                    and self._details(exc).get("restorable")
                ):
                    # Resume the evicted session by id, then let the
                    # policy re-issue the original request against it.
                    self._request_once("restore_session", {"session": session})
                    raise _TransientServiceFailure(exc) from exc
                raise
            if exc.retryable:
                raise _TransientServiceFailure(exc) from exc
            raise

    def _request_once(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        if self._dirty:
            raise ServiceError(
                "connection state undefined after a timeout; reconnect"
            )
        self._next_id += 1
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "req_id": self._next_id,
            "op": op,
            **params,
        }
        try:
            self._file.write(protocol.encode_line(payload))
            self._file.flush()
            line = self._file.readline()
        except TimeoutError as exc:  # socket.timeout: hung/partitioned peer
            self._dirty = True
            raise ServiceTimeoutError(op, self.timeout) from exc
        if not line:
            raise ServiceError("server closed the connection mid-request")
        response = protocol.decode_response(line)
        echoed = response.get("req_id", response.get("id"))
        if echoed != self._next_id:
            raise ServiceError(
                f"response id {echoed!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            raise RemoteServiceError(response.get("error") or {})
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    @staticmethod
    def _details(exc: "RemoteServiceError") -> dict[str, Any]:
        """Exception extras in either dialect (v2 ``details`` or v1 flat)."""
        details = exc.payload.get("details")
        return details if isinstance(details, dict) else exc.payload

    def _sleep_server_hint(self, attempt: int, exc: BaseException) -> None:
        """Honor the server's ``retry_after_ms`` before the policy backoff."""
        error = getattr(exc, "error", exc)
        if isinstance(error, RemoteServiceError):
            hint = self._details(error).get("retry_after_ms")
            if isinstance(hint, (int, float)) and hint > 0:
                time.sleep(float(hint) / 1000.0)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations ------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def create_session(
        self,
        strategy: str | None = None,
        pruning: bool | None = None,
        max_results: int | None = None,
        resilience: str | None = None,
        deadline_seconds: float | None = None,
        trace: bool | None = None,
    ) -> str:
        """Create a session; returns its id."""
        params: dict[str, Any] = {}
        if strategy is not None:
            params["strategy"] = strategy
        if pruning is not None:
            params["pruning"] = pruning
        if max_results is not None:
            params["max_results"] = max_results
        if resilience is not None:
            params["resilience"] = resilience
        if deadline_seconds is not None:
            params["deadline_seconds"] = deadline_seconds
        if trace is not None:
            params["trace"] = trace
        return str(self.request("create_session", **params)["session"])

    def action(self, session: str, action: Action | dict[str, Any]) -> dict[str, Any]:
        """Apply one formulation action (an Action or a recording dict)."""
        payload = (
            protocol.action_payload(action)
            if isinstance(action, Action)
            else action
        )
        return self.request("action", session=session, action=payload)

    def run(self, session: str) -> dict[str, Any]:
        """Click Run; returns the run summary (SRT, degradation, sizes)."""
        return self.request("run", session=session)

    def matches(self, session: str) -> list[list[list[int]]]:
        """Canonicalized ``V_Δ`` of a completed session."""
        return self.request("matches", session=session)["matches"]

    def results(self, session: str, limit: int | None = None) -> list[dict[str, Any]]:
        """Validated result subgraphs (assignment + displayed paths)."""
        params: dict[str, Any] = {"session": session}
        if limit is not None:
            params["limit"] = limit
        return self.request("results", **params)["results"]

    def stats(self, session: str | None = None) -> dict[str, Any]:
        """Service-level stats, or one session's when ``session`` given."""
        if session is None:
            return self.request("stats")
        return self.request("stats", session=session)

    def trace(self, session: str, include_open: bool = True) -> dict[str, Any]:
        """A session's span timeline: spans + summary + SRT decomposition."""
        return self.request("trace", session=session, include_open=include_open)

    def metrics(self, format: str | None = None) -> dict[str, Any]:
        """The process-wide metrics registry (snapshot, or text exposition)."""
        if format is None:
            return self.request("metrics")
        return self.request("metrics", format=format)

    def update(self, kind: str, u: int, v: int) -> dict[str, Any]:
        """Apply one data-graph edge update (``kind`` is insert/delete).

        Returns the server's :class:`~repro.updates.UpdateReport` payload
        (new epoch, maintenance strategy, label/cache churn).  In-flight
        requests finish on the old epoch; requests issued after this call
        returns see the new one.  A busy server may shed the update with
        the retryable ``overloaded`` verdict; behind a worker pool the
        verb is refused outright (``worker_pool``).
        """
        return self.request("update", kind=kind, edge=[int(u), int(v)])

    def close_session(self, session: str) -> dict[str, Any]:
        return self.request("close_session", session=session)

    def restore_session(self, session: str) -> dict[str, Any]:
        """Resume an evicted/drained session by id from its checkpoint."""
        return self.request("restore_session", session=session)

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop after acknowledging.

        The read is bounded by the connection's socket timeout: a server
        that hangs instead of acking surfaces as the typed, retryable
        :class:`~repro.errors.ServiceTimeoutError` rather than blocking
        this client forever.
        """
        return self.request("shutdown")

    # -- conveniences ----------------------------------------------------
    def scripted_session(
        self,
        actions: list[Action] | list[dict[str, Any]],
        **session_params: Any,
    ) -> dict[str, Any]:
        """Create → formulate → Run in one call.

        ``actions`` must *not* include the final Run (the server's ``run``
        op is the Run click).  Returns ``{"session", "run", "matches"}``.
        """
        sid = self.create_session(**session_params)
        for action in actions:
            self.action(sid, action)
        summary = self.run(sid)
        matches = self.matches(sid)
        return {"session": sid, "run": summary, "matches": matches}
