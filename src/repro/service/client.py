"""In-repo client for the ``repro serve`` wire protocol.

Blocking, line-oriented, dependency-free — the reference implementation
of the protocol in docs/SERVICE.md and the driver used by the CI smoke
job, the concurrency tests, and ``benchmarks/bench_service_throughput``.

    with ServiceClient(host, port) as client:
        sid = client.create_session(strategy="DI")
        for action in actions:        # recording-format dicts or Actions
            client.action(sid, action)
        summary = client.run(sid)
        matches = client.matches(sid)

Server-side failures surface as :class:`RemoteServiceError` carrying the
stable v2 error code (``error.code``), the original exception class name
(``error.remote_type``), and whether the server considers the condition
retryable (eviction, admission refusals).

The client speaks protocol v2 (``v``/``req_id`` envelope) but understands
v1-shaped error payloads too, so it can talk to a pre-envelope server.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.core.actions import Action
from repro.errors import ServiceError
from repro.service import protocol

__all__ = ["ServiceClient", "RemoteServiceError"]


class RemoteServiceError(ServiceError):
    """A failure response from the service, rehydrated client-side.

    Accepts both error dialects: the v2 typed envelope (``code`` +
    ``details.type``) and the deprecated v1 shape (bare ``type``).
    """

    def __init__(self, payload: dict[str, Any]) -> None:
        details = payload.get("details")
        details = details if isinstance(details, dict) else {}
        self.code = str(payload.get("code", "")) or None
        self.remote_type = str(
            details.get("type") or payload.get("type") or "UnknownError"
        )
        self.retryable = bool(payload.get("retryable", False))
        self.payload = payload
        super().__init__(f"{self.remote_type}: {payload.get('message', '')}")


class ServiceClient:
    """One connection to a :class:`~repro.service.server.QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing --------------------------------------------------------
    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one v2 request, wait for its response, return ``result``."""
        self._next_id += 1
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "req_id": self._next_id,
            "op": op,
            **params,
        }
        self._file.write(protocol.encode_line(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection mid-request")
        response = protocol.decode_response(line)
        echoed = response.get("req_id", response.get("id"))
        if echoed != self._next_id:
            raise ServiceError(
                f"response id {echoed!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            raise RemoteServiceError(response.get("error") or {})
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations ------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def create_session(
        self,
        strategy: str | None = None,
        pruning: bool | None = None,
        max_results: int | None = None,
        resilience: str | None = None,
        deadline_seconds: float | None = None,
        trace: bool | None = None,
    ) -> str:
        """Create a session; returns its id."""
        params: dict[str, Any] = {}
        if strategy is not None:
            params["strategy"] = strategy
        if pruning is not None:
            params["pruning"] = pruning
        if max_results is not None:
            params["max_results"] = max_results
        if resilience is not None:
            params["resilience"] = resilience
        if deadline_seconds is not None:
            params["deadline_seconds"] = deadline_seconds
        if trace is not None:
            params["trace"] = trace
        return str(self.request("create_session", **params)["session"])

    def action(self, session: str, action: Action | dict[str, Any]) -> dict[str, Any]:
        """Apply one formulation action (an Action or a recording dict)."""
        payload = (
            protocol.action_payload(action)
            if isinstance(action, Action)
            else action
        )
        return self.request("action", session=session, action=payload)

    def run(self, session: str) -> dict[str, Any]:
        """Click Run; returns the run summary (SRT, degradation, sizes)."""
        return self.request("run", session=session)

    def matches(self, session: str) -> list[list[list[int]]]:
        """Canonicalized ``V_Δ`` of a completed session."""
        return self.request("matches", session=session)["matches"]

    def results(self, session: str, limit: int | None = None) -> list[dict[str, Any]]:
        """Validated result subgraphs (assignment + displayed paths)."""
        params: dict[str, Any] = {"session": session}
        if limit is not None:
            params["limit"] = limit
        return self.request("results", **params)["results"]

    def stats(self, session: str | None = None) -> dict[str, Any]:
        """Service-level stats, or one session's when ``session`` given."""
        if session is None:
            return self.request("stats")
        return self.request("stats", session=session)

    def trace(self, session: str, include_open: bool = True) -> dict[str, Any]:
        """A session's span timeline: spans + summary + SRT decomposition."""
        return self.request("trace", session=session, include_open=include_open)

    def metrics(self, format: str | None = None) -> dict[str, Any]:
        """The process-wide metrics registry (snapshot, or text exposition)."""
        if format is None:
            return self.request("metrics")
        return self.request("metrics", format=format)

    def close_session(self, session: str) -> dict[str, Any]:
        return self.request("close_session", session=session)

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop after acknowledging."""
        return self.request("shutdown")

    # -- conveniences ----------------------------------------------------
    def scripted_session(
        self,
        actions: list[Action] | list[dict[str, Any]],
        **session_params: Any,
    ) -> dict[str, Any]:
        """Create → formulate → Run in one call.

        ``actions`` must *not* include the final Run (the server's ``run``
        op is the Run click).  Returns ``{"session", "run", "matches"}``.
        """
        sid = self.create_session(**session_params)
        for action in actions:
            self.action(sid, action)
        summary = self.run(sid)
        matches = self.matches(sid)
        return {"session": sid, "run": summary, "matches": matches}
