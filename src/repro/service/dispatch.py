"""The backend seam between the socket front end and session hosting.

:class:`QueryServer` used to call a :class:`SessionManager` directly;
the worker pool needs the same wire surface to fan out across processes
instead.  This module names the seam: a **backend** is anything with

* ``dispatch(request) -> result dict`` — execute one decoded wire
  request (everything except protocol framing, which stays in the
  server, and ``shutdown`` plumbing, which stays in the server);
* ``drain(timeout) -> summary`` — refuse new mutating work, wait out
  in-flight requests, checkpoint sessions;
* ``close()`` — release process-level resources (worker processes,
  shared-memory segments); idempotent;
* ``graph_name`` — for the ``ping`` payload.

:class:`LocalDispatcher` is the in-process backend: the exact dispatch
body that lived in ``QueryServer._dispatch``, verb for verb, so
``--workers 0`` is bit-for-bit today's threaded path.  The pool backend
lives in :mod:`repro.service.pool.dispatcher`.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ProtocolError
from repro.obs.metrics import metrics
from repro.service import protocol
from repro.service.manager import SessionManager

__all__ = ["LocalDispatcher"]


class LocalDispatcher:
    """In-process backend: one :class:`SessionManager`, no pipes."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager

    @property
    def graph_name(self) -> str:
        return self.manager.base_ctx.graph.name

    # -- backend API -----------------------------------------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request["op"]
        manager = self.manager
        if op == "ping":
            return {
                "pong": True,
                "protocol": protocol.PROTOCOL_VERSION,
                "supported_protocols": list(protocol.SUPPORTED_VERSIONS),
                "graph": self.graph_name,
            }
        if op == "create_session":
            session = manager.create_session(
                strategy=request.get("strategy"),
                pruning=request.get("pruning"),
                max_results=request.get("max_results"),
                resilience=request.get("resilience"),
                deadline_seconds=request.get("deadline_seconds"),
                trace=request.get("trace"),
            )
            return {"session": session.id, "strategy": session.limits.strategy}
        if op == "metrics":
            if request.get("format") == "text":
                return {"text": metrics.render_text()}
            return {"metrics": metrics.snapshot()}
        if op == "stats":
            session_id = request.get("session")
            if session_id is None:
                return manager.stats()
            session = manager.get(str(session_id))
            with session.lock:
                return session.stats()
        if op == "shutdown":
            return {"stopping": True}
        if op == "update":
            kind = request.get("kind")
            if kind not in ("insert", "delete"):
                raise ProtocolError(
                    f"update 'kind' must be 'insert' or 'delete', got {kind!r}"
                )
            # The endpoints ride in an "edge" pair — a bare "v" key would
            # collide with the envelope's protocol-version field.
            edge = request.get("edge")
            if (
                not isinstance(edge, (list, tuple))
                or len(edge) != 2
                or any(isinstance(e, bool) or not isinstance(e, int) for e in edge)
            ):
                raise ProtocolError(
                    "update requires 'edge': a pair of integer vertex ids"
                )
            report = manager.apply_update(kind, edge[0], edge[1])
            return report.as_dict()

        # Everything else addresses one session.
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ProtocolError(f"op {op!r} requires a 'session' string")
        if op == "restore_session":
            session = manager.restore_session(session_id)
            return {
                "session": session.id,
                "state": session.state,
                "strategy": session.limits.strategy,
                "restored": True,
            }
        if op == "action":
            report = manager.apply_action(
                session_id, protocol.wire_action(request.get("action"))
            )
            return protocol.report_payload(report)
        if op == "run":
            result = manager.run(session_id)
            session = manager.get(session_id)
            return protocol.run_payload(result, session.backlog_seconds)
        if op == "matches":
            return {
                "matches": protocol.canonical_matches(manager.matches(session_id))
            }
        if op == "results":
            limit = request.get("limit")
            subgraphs = manager.results(
                session_id, limit=int(limit) if limit is not None else None
            )
            return {"results": [protocol.subgraph_payload(s) for s in subgraphs]}
        if op == "trace":
            return manager.trace(
                session_id, include_open=bool(request.get("include_open", True))
            )
        if op == "close_session":
            manager.close_session(session_id)
            return {"closed": session_id}
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def drain(self, timeout: float | None = 5.0) -> dict[str, object]:
        return self.manager.drain(timeout=timeout)

    def close(self) -> None:
        """Nothing process-level to release in-process."""
