"""The session host: admission, accounting, eviction, dispatch.

One :class:`SessionManager` owns one immutable engine basis — data graph,
shared PML oracle, two-hop counts, cost model — and hosts many
:class:`~repro.service.session.ManagedSession`\\ s over it.  Contexts are
cheap per-session shells (fresh counters over shared indexes), so the
expensive preprocessing is paid once per process, not once per user.

Resource model
--------------
The retained state of a session is its CAP index (candidates + AIVS
pairs) plus its pooled edges; :meth:`ManagedSession.cap_entries` counts
exactly that.  The manager enforces two budgets:

* ``max_sessions`` — a hard bound on concurrently open sessions;
* ``cap_entry_budget`` — a bound on total CAP entries across sessions.

When either would be exceeded, the manager evicts **idle** sessions in
LRU order (least-recently-touched first; a session being operated on is
never idle — idleness is a non-blocking lock probe, not a wall-clock
timer, so behavior is deterministic).  If nothing evictable remains, the
request is refused with :class:`~repro.errors.AdmissionError` — the
service degrades by shedding load, never by swapping.

Evicted ids are remembered (bounded) so clients get the distinct
:class:`~repro.errors.SessionEvictedError` — "recreate and replay" — and
not a confusing "no such session".

Threading
---------
A manager-level lock guards the session table and LRU bookkeeping only;
engine compute runs under the *per-session* lock, so different sessions'
requests execute genuinely concurrently (the shared oracle is read-only
or internally locked — see :mod:`repro.indexing.oracle`).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.actions import Action
from repro.core.blender import ActionReport, RunResult
from repro.core.context import EngineContext
from repro.errors import (
    AdmissionError,
    CheckpointError,
    GraphMutationError,
    SessionEvictedError,
    SessionNotFoundError,
)
from repro.obs.metrics import metrics
from repro.resilience import ResilienceConfig
from repro.service.checkpoint import (
    CheckpointStore,
    checkpoint_session as _capture_checkpoint,
    restore_session as _rebuild_from_checkpoint,
)
from repro.service.overload import OverloadPolicy
from repro.service.scheduler import IdleScheduler
from repro.service.session import ManagedSession, SessionLimits
from repro.updates import UpdateReport, delete_edge, insert_edge

__all__ = ["SessionManager", "ManagerStats"]

_POSTURES = {
    "off": lambda: None,
    "default": ResilienceConfig.default,
    "strict": ResilienceConfig.strict,
    "paranoid": ResilienceConfig.paranoid,
}


@dataclass
class ManagerStats:
    """Counters the service exposes on the wire ``stats`` op."""

    sessions_created: int = 0
    sessions_closed: int = 0
    sessions_evicted: int = 0
    admission_rejections: int = 0
    requests_shed: int = 0
    sessions_checkpointed: int = 0
    sessions_restored: int = 0
    runs_completed: int = 0
    runs_degraded: int = 0
    runs_failed: int = 0
    updates_applied: int = 0
    eviction_log: list[str] = field(default_factory=list)

    def snapshot(self) -> dict[str, object]:
        return {
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "admission_rejections": self.admission_rejections,
            "requests_shed": self.requests_shed,
            "sessions_checkpointed": self.sessions_checkpointed,
            "sessions_restored": self.sessions_restored,
            "runs_completed": self.runs_completed,
            "runs_degraded": self.runs_degraded,
            "runs_failed": self.runs_failed,
            "updates_applied": self.updates_applied,
            "recent_evictions": list(self.eviction_log[-16:]),
        }


class SessionManager:
    """Hosts concurrent :class:`ManagedSession`\\ s over one shared context."""

    def __init__(
        self,
        base_ctx: EngineContext,
        max_sessions: int = 64,
        cap_entry_budget: int | None = 1_000_000,
        default_limits: SessionLimits | None = None,
        overload: OverloadPolicy | None = None,
        checkpoint_capacity: int = 256,
        checkpoint_dir: str | None = None,
        checkpoint_on_mutate: bool = False,
        session_prefix: str = "s",
    ) -> None:
        if max_sessions < 1:
            raise AdmissionError("max_sessions must be at least 1")
        self.base_ctx = base_ctx
        self.max_sessions = max_sessions
        self.cap_entry_budget = cap_entry_budget
        self.default_limits = default_limits or SessionLimits()
        #: Watermark backpressure; None disables shedding (hard budgets
        #: and :class:`AdmissionError` still apply, as before).
        self.overload = overload
        #: Verdict builder for drain refusals even when shedding is off.
        self._shed_policy = overload or OverloadPolicy()
        self.checkpoints = CheckpointStore(
            capacity=checkpoint_capacity, directory=checkpoint_dir
        )
        #: Write-through mode: checkpoint after every successful mutating
        #: op, so a SIGKILL'd worker process loses at most the request it
        #: was servicing (which the client retries).  Used by the pool.
        self.checkpoint_on_mutate = checkpoint_on_mutate
        #: Session-id namespace — worker ``k`` of a pool uses ``w{k}s``
        #: so ids never collide across the fleet's managers.
        self.session_prefix = session_prefix
        self.scheduler = IdleScheduler()
        self.stats_counters = ManagerStats()
        self._lock = threading.RLock()
        #: Signalled whenever an in-flight request retires (drain waits).
        self._idle_cv = threading.Condition(self._lock)
        self._inflight = 0
        self._draining = False
        self._sessions: dict[str, ManagedSession] = {}
        self._evicted: dict[str, str] = {}  # id -> reason (bounded)
        self._id_counter = itertools.count(1)
        self._touch_counter = itertools.count(1)

    # -- backpressure ------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` ran; new work is refused."""
        with self._lock:
            return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently dispatched into engine work."""
        with self._lock:
            return self._inflight

    def _shed(self, reason: str, detail: str, admission: bool = False) -> None:
        """Refuse work with the typed retryable verdict (and count it).

        ``admission=True`` marks sheds that refused a *session admission*
        (create/restore past a watermark): those also count as
        ``admission_rejections``, so overload refusals no longer bypass
        the admission counter and read 0 under load.
        """
        self.stats_counters.requests_shed += 1
        metrics.counter(
            "repro_requests_shed_total",
            "requests refused by backpressure",
            reason=reason,
        ).inc()
        if admission:
            self.stats_counters.admission_rejections += 1
            metrics.counter(
                "repro_admission_rejections_total",
                "session creations refused for lack of budget",
            ).inc()
        raise self._shed_policy.shed(reason, detail)

    @contextmanager
    def _track_request(self, mutating: bool = True):
        """Count one dispatched request; shed at the door when over load.

        Mutating verbs (create/action/run/restore) shed while draining
        and past the queue-depth watermark; read-only verbs (results,
        matches, trace) always pass — clients must be able to collect
        answers from a server that is backing off or going away — but
        still count as in-flight so drain waits for them.
        """
        with self._lock:
            if mutating:
                if self._draining:
                    self._shed("draining", "server is draining for shutdown")
                limit = (
                    self.overload.max_inflight
                    if self.overload is not None
                    else None
                )
                if limit is not None and self._inflight >= limit:
                    self._shed(
                        "queue",
                        f"{self._inflight} requests in flight (limit {limit})",
                    )
            self._inflight += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                self._idle_cv.notify_all()

    # -- lifecycle -------------------------------------------------------
    def create_session(
        self,
        strategy: str | None = None,
        pruning: bool | None = None,
        max_results: int | None = None,
        resilience: str | ResilienceConfig | None = None,
        deadline_seconds: float | None = None,
        trace: bool | None = None,
    ) -> ManagedSession:
        """Admit a new session (evicting idle LRU sessions if needed).

        With an :class:`OverloadPolicy` set, admissions past the session
        or CAP watermarks first try to reclaim idle sessions (which now
        checkpoints them) and, failing that, *shed* with the retryable
        :class:`~repro.errors.ServiceOverloadedError` — the hard
        :class:`~repro.errors.AdmissionError` is reserved for a budget
        that is exhausted outright.
        """
        limits = self._build_limits(
            strategy, pruning, max_results, resilience, deadline_seconds, trace
        )
        with self._track_request(), self._lock:
            if len(self._sessions) >= self.max_sessions:
                self._evict_lru(
                    need_sessions=1, reason="session budget", active=None
                )
            if len(self._sessions) >= self.max_sessions:
                self.stats_counters.admission_rejections += 1
                metrics.counter(
                    "repro_admission_rejections_total",
                    "session creations refused for lack of budget",
                ).inc()
                raise AdmissionError(
                    f"session budget exhausted ({self.max_sessions} open, "
                    "none evictable)"
                )
            if self.overload is not None:
                threshold = self.overload.session_threshold(self.max_sessions)
                if len(self._sessions) >= threshold:
                    self._evict_lru(
                        need_sessions=len(self._sessions) - threshold + 1,
                        reason="session watermark",
                        active=None,
                    )
                if len(self._sessions) >= threshold:
                    self._shed(
                        "sessions",
                        f"{len(self._sessions)} open sessions "
                        f"(watermark {threshold}/{self.max_sessions})",
                        admission=True,
                    )
                cap_threshold = self.overload.cap_threshold(self.cap_entry_budget)
                if cap_threshold is not None:
                    in_use = self.total_cap_entries()
                    if in_use >= cap_threshold:
                        self._evict_lru(
                            need_entries=in_use - cap_threshold + 1,
                            reason="CAP watermark",
                            active=None,
                        )
                        in_use = self.total_cap_entries()
                    if in_use >= cap_threshold:
                        self._shed(
                            "cap",
                            f"{in_use} CAP entries in use "
                            f"(watermark {cap_threshold}/{self.cap_entry_budget})",
                            admission=True,
                        )
            session_id = f"{self.session_prefix}{next(self._id_counter)}"
            session = ManagedSession(session_id, self.base_ctx, limits)
            session.touch_seq = next(self._touch_counter)
            self._sessions[session_id] = session
            self.scheduler.register(session)
            self.stats_counters.sessions_created += 1
            metrics.counter(
                "repro_sessions_created_total", "sessions admitted"
            ).inc()
            metrics.gauge(
                "repro_sessions_open", "currently hosted sessions"
            ).set(len(self._sessions))
        if self.checkpoint_on_mutate:
            with session.lock:
                self._write_through(session)
        return session

    def _build_limits(
        self,
        strategy: str | None,
        pruning: bool | None,
        max_results: int | None,
        resilience: str | ResilienceConfig | None,
        deadline_seconds: float | None,
        trace: bool | None = None,
    ) -> SessionLimits:
        base = self.default_limits
        config: ResilienceConfig | None
        if isinstance(resilience, ResilienceConfig):
            config = resilience
        elif isinstance(resilience, str):
            try:
                config = _POSTURES[resilience]()
            except KeyError:
                raise AdmissionError(
                    f"unknown resilience posture {resilience!r} "
                    f"(choose from {sorted(_POSTURES)})"
                ) from None
        else:
            config = base.resilience
        if deadline_seconds is not None:
            from dataclasses import replace as _replace

            config = config or ResilienceConfig.default()
            config = _replace(config, deadline_seconds=deadline_seconds)
        return SessionLimits(
            strategy=strategy if strategy is not None else base.strategy,
            pruning=pruning if pruning is not None else base.pruning,
            max_results=max_results if max_results is not None else base.max_results,
            resilience=config,
            trace=trace if trace is not None else base.trace,
            trace_capacity=base.trace_capacity,
        )

    def close_session(self, session_id: str) -> None:
        """Client-initiated teardown; frees the session's budget share."""
        session = self.get(session_id)
        with session.lock:
            session.close()
        if self.checkpoint_on_mutate:
            # An explicitly closed session must not come back from disk.
            self.checkpoints.pop(session_id)
        with self._lock:
            self._sessions.pop(session_id, None)
            self.scheduler.unregister(session_id)
            self.stats_counters.sessions_closed += 1
            metrics.gauge(
                "repro_sessions_open", "currently hosted sessions"
            ).set(len(self._sessions))

    def get(self, session_id: str) -> ManagedSession:
        """Look up a live session; typed errors for evicted vs unknown."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                return session
            if session_id in self._evicted:
                error = SessionEvictedError(session_id, self._evicted[session_id])
                # Tell the client whether restore-by-id can still work or
                # it must fall back to recreate-and-replay.
                error.restorable = self.checkpoints.get(session_id) is not None
                raise error
        # Unknown to *this* process, but a disk checkpoint exists: the id
        # belonged to a manager that died (worker SIGKILL) or was
        # requeued here.  Evicted-and-restorable is the truthful verdict;
        # the client's auto-restore path then resumes it transparently.
        if self.checkpoints.get(session_id) is not None:
            error = SessionEvictedError(session_id, "process restart")
            error.restorable = True
            raise error
        raise SessionNotFoundError(session_id)

    # -- request dispatch ------------------------------------------------
    def apply_action(self, session_id: str, action: Action) -> ActionReport:
        """Apply one formulation action; idle time goes to the scheduler."""
        with self._track_request():
            session = self.get(session_id)
            with session.lock:
                self._touch(session)
                report = session.apply(
                    action,
                    idle_sink=lambda idle: self.scheduler.donate(session, idle),
                )
                if self.checkpoint_on_mutate:
                    self._write_through(session)
            self._enforce_cap_budget(active=session_id)
            return report

    def run(self, session_id: str) -> RunResult:
        """Execute the session's Run click."""
        with self._track_request():
            session = self.get(session_id)
            with session.lock:
                self._touch(session)
                try:
                    result = session.run()
                except Exception:
                    with self._lock:
                        self.stats_counters.runs_failed += 1
                    raise
                if self.checkpoint_on_mutate:
                    self._write_through(session)
            with self._lock:
                self.stats_counters.runs_completed += 1
                if result.degraded:
                    self.stats_counters.runs_degraded += 1
            self._enforce_cap_budget(active=session_id)
            return result

    def apply_update(
        self, kind: str, u: int, v: int, timeout: float | None = 30.0
    ) -> UpdateReport:
        """Apply one data-graph edge update under a quiet window.

        Graph mutation is the one operation that touches the *shared*
        basis every session reads, so it runs alone: this request counts
        itself in flight (shedding applies while draining, like any
        mutating verb), then waits on the idle condition until it is the
        only in-flight request.  In-flight runs therefore finish on the
        old epoch; requests arriving during the mutation queue behind
        the manager lock and see the new one.  If the service does not
        go quiet within ``timeout`` seconds the update is refused with
        the retryable overload verdict — a busy service sheds updates
        rather than stalling them indefinitely.

        The mutation itself is :mod:`repro.updates` orchestration —
        epoch bump, incremental PML patch (insert) or conservative
        rebuild (delete), two-hop repair, distance-cache invalidation —
        so a refusal (:class:`~repro.errors.GraphMutationError`,
        :class:`~repro.errors.StaleIndexError` for stored bases) leaves
        graph and indexes exactly as they were.
        """
        apply_one = {"insert": insert_edge, "delete": delete_edge}.get(kind)
        if apply_one is None:
            raise GraphMutationError(f"unknown update kind {kind!r}")
        with self._track_request():
            with self._idle_cv:
                quiet = self._idle_cv.wait_for(
                    lambda: self._inflight == 1, timeout=timeout
                )
                if not quiet:
                    self._shed(
                        "update",
                        f"{self._inflight - 1} requests still in flight "
                        f"after waiting {timeout}s for a quiet window",
                    )
                report = apply_one(self.base_ctx, int(u), int(v))
                self.stats_counters.updates_applied += 1
            return report

    def results(self, session_id: str, limit: int | None = None):
        """Validated result subgraphs of a completed session."""
        with self._track_request(mutating=False):
            session = self.get(session_id)
            with session.lock:
                self._touch(session)
                return session.results(limit=limit)

    def matches(self, session_id: str) -> list[dict[int, int]]:
        """Raw ``V_Δ`` of a completed session."""
        with self._track_request(mutating=False):
            session = self.get(session_id)
            with session.lock:
                self._touch(session)
                return session.matches()

    def trace(self, session_id: str, include_open: bool = True) -> dict[str, object]:
        """One session's span timeline (the wire ``trace`` verb)."""
        with self._track_request(mutating=False):
            session = self.get(session_id)
            with session.lock:
                self._touch(session)
                return session.trace_export(include_open=include_open)

    # -- accounting / eviction -------------------------------------------
    def _touch(self, session: ManagedSession) -> None:
        with self._lock:
            session.touch_seq = next(self._touch_counter)

    def total_cap_entries(self) -> int:
        """Live CAP entries across all hosted sessions (best effort).

        Sessions mid-request are sized without their lock; a torn read can
        only skew the *stat* for one enforcement round, never corrupt the
        CAP itself, so a failed concurrent size walk counts as zero rather
        than stalling accounting behind engine compute.
        """
        with self._lock:
            sessions = list(self._sessions.values())
        total = 0
        for session in sessions:
            try:
                total += session.cap_entries()
            except RuntimeError:  # dict resized mid-walk by its own thread
                continue
        return total

    def _enforce_cap_budget(self, active: str | None) -> None:
        """Evict idle LRU sessions until the CAP-entry budget holds.

        ``active`` (the session servicing the current request) is never
        evicted; a single session legitimately larger than the whole
        budget is allowed to finish — load shedding targets *other*
        tenants' retained state, not the request in flight.
        """
        if self.cap_entry_budget is None:
            return
        with self._lock:
            if self.total_cap_entries() <= self.cap_entry_budget:
                return
            overshoot = self.total_cap_entries() - self.cap_entry_budget
            self._evict_lru(
                need_entries=overshoot, reason="CAP budget", active=active
            )

    def _evict_lru(
        self,
        reason: str,
        active: str | None,
        need_sessions: int = 0,
        need_entries: int = 0,
    ) -> None:
        """Reclaim idle sessions, least-recently-touched first.

        Caller holds the manager lock.  Stops once the requested headroom
        (session slots and/or CAP entries) is reclaimed or nothing idle
        remains.
        """
        freed_sessions = 0
        freed_entries = 0
        for session in sorted(self._sessions.values(), key=lambda s: s.touch_seq):
            if freed_sessions >= need_sessions and freed_entries >= need_entries:
                break
            if session.id == active or not session.evictable:
                continue
            freed_entries += session.cap_entries()
            freed_sessions += 1
            self._checkpoint_quietly(session, reason)
            session.close()
            del self._sessions[session.id]
            self.scheduler.unregister(session.id)
            if len(self._evicted) >= 1024:
                self._evicted.pop(next(iter(self._evicted)))
            self._evicted[session.id] = reason
            self.stats_counters.sessions_evicted += 1
            self.stats_counters.eviction_log.append(
                f"{session.id}: {reason}"
            )
            metrics.counter(
                "repro_sessions_evicted_total",
                "idle sessions reclaimed by budget enforcement",
                reason=reason.replace(" ", "_"),
            ).inc()

    # -- checkpoint / restore --------------------------------------------
    def _checkpoint_quietly(self, session: ManagedSession, reason: str) -> None:
        """Best-effort capture before reclaiming ``session``.

        Terminal sessions (failed/closed) cannot round-trip; they evict
        exactly as before this layer existed.  Capture reads bookkeeping
        only — no engine compute — so it is safe under the manager lock.
        """
        try:
            checkpoint = _capture_checkpoint(session, reason)
        except CheckpointError:
            return
        self.checkpoints.put(checkpoint)
        self.stats_counters.sessions_checkpointed += 1
        metrics.counter(
            "repro_sessions_checkpointed_total",
            "sessions checkpointed at eviction or drain",
        ).inc()

    def _write_through(self, session: ManagedSession) -> None:
        """Checkpoint after a successful mutating op (caller holds the
        session lock).

        The capture happens *after* the op applied, so a crash mid-op
        leaves the previous checkpoint intact — the failed request is not
        in it, and the client's retry against the restored session is
        exactly-once.  Terminal states simply skip (same contract as
        eviction capture).
        """
        try:
            checkpoint = _capture_checkpoint(session, "write-through")
        except CheckpointError:
            return
        self.checkpoints.put(checkpoint)
        metrics.counter(
            "repro_checkpoint_writethrough_total",
            "write-through checkpoints taken after mutating ops",
        ).inc()

    def restore_session(self, session_id: str) -> ManagedSession:
        """Resume an evicted/drained session by id from its checkpoint.

        Replays the checkpointed action log on a fresh engine **outside**
        the manager lock (replay is engine compute), then re-admits the
        session under its original id.  Deferral neutrality guarantees
        the resumed session's subsequent matches are byte-identical to
        the uninterrupted original.
        """
        with self._track_request():
            with self._lock:
                existing = self._sessions.get(session_id)
                if existing is not None:
                    return existing  # restore raced another client: done
                checkpoint = self.checkpoints.pop(session_id)
                if checkpoint is None:
                    if session_id in self._evicted:
                        raise SessionEvictedError(
                            session_id,
                            f"{self._evicted[session_id]}; checkpoint expired",
                        )
                    raise SessionNotFoundError(session_id)
            try:
                session = _rebuild_from_checkpoint(checkpoint, self.base_ctx)
            except CheckpointError:
                self.checkpoints.put(checkpoint)  # leave it restorable
                raise
            with self._lock:
                if len(self._sessions) >= self.max_sessions:
                    self._evict_lru(
                        need_sessions=1, reason="session budget", active=None
                    )
                if len(self._sessions) >= self.max_sessions:
                    self.checkpoints.put(checkpoint)
                    self._shed(
                        "sessions",
                        f"no session slot free to restore {session_id!r}",
                        admission=True,
                    )
                session.touch_seq = next(self._touch_counter)
                self._sessions[session_id] = session
                self._evicted.pop(session_id, None)
                self.scheduler.register(session)
                self.stats_counters.sessions_restored += 1
                metrics.counter(
                    "repro_sessions_restored_total",
                    "sessions resumed from a checkpoint",
                ).inc()
                metrics.gauge(
                    "repro_sessions_open", "currently hosted sessions"
                ).set(len(self._sessions))
            if self.checkpoint_on_mutate:
                # ``pop`` consumed the stored checkpoint; re-arm so the
                # restored session survives another process death even
                # if no further mutation ever lands.
                with session.lock:
                    self._write_through(session)
            self._enforce_cap_budget(active=session_id)
            return session

    # -- drain -----------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting mutating work; in-flight requests keep running."""
        with self._lock:
            self._draining = True

    def end_drain(self) -> None:
        """Re-open admission (a restarted server reusing this manager)."""
        with self._lock:
            self._draining = False

    def drain(self, timeout: float | None = 5.0) -> dict[str, object]:
        """Graceful drain: refuse new work, wait out in-flight requests,
        checkpoint every idle session instead of dropping it.

        In-flight runs are not interrupted — they complete (or hit their
        own cooperative :class:`~repro.resilience.Deadline` checkpoint)
        and retire through :meth:`_track_request`, which signals the
        condition this method waits on.  Returns a summary of what was
        checkpointed and what (if anything) was still busy at timeout.
        """
        self.begin_drain()
        with self._idle_cv:
            self._idle_cv.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )
            remaining = self._inflight
            sessions = sorted(
                self._sessions.values(), key=lambda s: s.touch_seq
            )
        checkpointed: list[str] = []
        skipped: list[str] = []
        for session in sessions:
            if not session.lock.acquire(blocking=False):
                skipped.append(session.id)  # still busy past timeout
                continue
            try:
                before = self.checkpoints.stats()["stored_total"]
                self._checkpoint_quietly(session, "drain")
                captured = (
                    self.checkpoints.stats()["stored_total"] > before
                )
                session.close()
            finally:
                session.lock.release()
            with self._lock:
                self._sessions.pop(session.id, None)
                self.scheduler.unregister(session.id)
                if len(self._evicted) >= 1024:
                    self._evicted.pop(next(iter(self._evicted)))
                self._evicted[session.id] = "drain"
                if captured:
                    checkpointed.append(session.id)
            metrics.counter(
                "repro_sessions_drained_total",
                "sessions checkpointed and closed by drain",
            ).inc()
        with self._lock:
            metrics.gauge(
                "repro_sessions_open", "currently hosted sessions"
            ).set(len(self._sessions))
        return {
            "checkpointed": checkpointed,
            "busy": skipped,
            "inflight_at_timeout": remaining,
        }

    # -- introspection ---------------------------------------------------
    def session_ids(self) -> list[str]:
        """Ids of currently hosted sessions."""
        with self._lock:
            return list(self._sessions)

    def stats(self) -> dict[str, object]:
        """Service-level statistics (wire ``stats`` op without a session)."""
        with self._lock:
            open_sessions = len(self._sessions)
            inflight = self._inflight
            draining = self._draining
        oracle = self.base_ctx.oracle
        out: dict[str, object] = {
            "open_sessions": open_sessions,
            "max_sessions": self.max_sessions,
            "cap_entry_budget": self.cap_entry_budget,
            "cap_entries_in_use": self.total_cap_entries(),
            "inflight": inflight,
            "draining": draining,
            "overload": (
                None
                if self.overload is None
                else {
                    "session_watermark": self.overload.session_watermark,
                    "cap_watermark": self.overload.cap_watermark,
                    "max_inflight": self.overload.max_inflight,
                    "retry_after_ms": self.overload.retry_after_ms,
                }
            ),
            "checkpoints": self.checkpoints.stats(),
            "graph": {
                "name": self.base_ctx.graph.name,
                "num_vertices": self.base_ctx.graph.num_vertices,
                "num_edges": self.base_ctx.graph.num_edges,
                "epoch": self.base_ctx.graph.epoch,
            },
            "scheduler": self.scheduler.stats(),
            **self.stats_counters.snapshot(),
        }
        count = getattr(oracle, "query_count", None)
        if count is not None:
            out["oracle_query_count"] = count
        return out
