"""The session host: admission, accounting, eviction, dispatch.

One :class:`SessionManager` owns one immutable engine basis — data graph,
shared PML oracle, two-hop counts, cost model — and hosts many
:class:`~repro.service.session.ManagedSession`\\ s over it.  Contexts are
cheap per-session shells (fresh counters over shared indexes), so the
expensive preprocessing is paid once per process, not once per user.

Resource model
--------------
The retained state of a session is its CAP index (candidates + AIVS
pairs) plus its pooled edges; :meth:`ManagedSession.cap_entries` counts
exactly that.  The manager enforces two budgets:

* ``max_sessions`` — a hard bound on concurrently open sessions;
* ``cap_entry_budget`` — a bound on total CAP entries across sessions.

When either would be exceeded, the manager evicts **idle** sessions in
LRU order (least-recently-touched first; a session being operated on is
never idle — idleness is a non-blocking lock probe, not a wall-clock
timer, so behavior is deterministic).  If nothing evictable remains, the
request is refused with :class:`~repro.errors.AdmissionError` — the
service degrades by shedding load, never by swapping.

Evicted ids are remembered (bounded) so clients get the distinct
:class:`~repro.errors.SessionEvictedError` — "recreate and replay" — and
not a confusing "no such session".

Threading
---------
A manager-level lock guards the session table and LRU bookkeeping only;
engine compute runs under the *per-session* lock, so different sessions'
requests execute genuinely concurrently (the shared oracle is read-only
or internally locked — see :mod:`repro.indexing.oracle`).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.core.actions import Action
from repro.core.blender import ActionReport, RunResult
from repro.core.context import EngineContext
from repro.errors import (
    AdmissionError,
    SessionEvictedError,
    SessionNotFoundError,
)
from repro.obs.metrics import metrics
from repro.resilience import ResilienceConfig
from repro.service.scheduler import IdleScheduler
from repro.service.session import ManagedSession, SessionLimits

__all__ = ["SessionManager", "ManagerStats"]

_POSTURES = {
    "off": lambda: None,
    "default": ResilienceConfig.default,
    "strict": ResilienceConfig.strict,
    "paranoid": ResilienceConfig.paranoid,
}


@dataclass
class ManagerStats:
    """Counters the service exposes on the wire ``stats`` op."""

    sessions_created: int = 0
    sessions_closed: int = 0
    sessions_evicted: int = 0
    admission_rejections: int = 0
    runs_completed: int = 0
    runs_degraded: int = 0
    runs_failed: int = 0
    eviction_log: list[str] = field(default_factory=list)

    def snapshot(self) -> dict[str, object]:
        return {
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "admission_rejections": self.admission_rejections,
            "runs_completed": self.runs_completed,
            "runs_degraded": self.runs_degraded,
            "runs_failed": self.runs_failed,
            "recent_evictions": list(self.eviction_log[-16:]),
        }


class SessionManager:
    """Hosts concurrent :class:`ManagedSession`\\ s over one shared context."""

    def __init__(
        self,
        base_ctx: EngineContext,
        max_sessions: int = 64,
        cap_entry_budget: int | None = 1_000_000,
        default_limits: SessionLimits | None = None,
    ) -> None:
        if max_sessions < 1:
            raise AdmissionError("max_sessions must be at least 1")
        self.base_ctx = base_ctx
        self.max_sessions = max_sessions
        self.cap_entry_budget = cap_entry_budget
        self.default_limits = default_limits or SessionLimits()
        self.scheduler = IdleScheduler()
        self.stats_counters = ManagerStats()
        self._lock = threading.RLock()
        self._sessions: dict[str, ManagedSession] = {}
        self._evicted: dict[str, str] = {}  # id -> reason (bounded)
        self._id_counter = itertools.count(1)
        self._touch_counter = itertools.count(1)

    # -- lifecycle -------------------------------------------------------
    def create_session(
        self,
        strategy: str | None = None,
        pruning: bool | None = None,
        max_results: int | None = None,
        resilience: str | ResilienceConfig | None = None,
        deadline_seconds: float | None = None,
        trace: bool | None = None,
    ) -> ManagedSession:
        """Admit a new session (evicting idle LRU sessions if needed)."""
        limits = self._build_limits(
            strategy, pruning, max_results, resilience, deadline_seconds, trace
        )
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                self._evict_lru(
                    need_sessions=1, reason="session budget", active=None
                )
            if len(self._sessions) >= self.max_sessions:
                self.stats_counters.admission_rejections += 1
                metrics.counter(
                    "repro_admission_rejections_total",
                    "session creations refused for lack of budget",
                ).inc()
                raise AdmissionError(
                    f"session budget exhausted ({self.max_sessions} open, "
                    "none evictable)"
                )
            session_id = f"s{next(self._id_counter)}"
            session = ManagedSession(session_id, self.base_ctx, limits)
            session.touch_seq = next(self._touch_counter)
            self._sessions[session_id] = session
            self.scheduler.register(session)
            self.stats_counters.sessions_created += 1
            metrics.counter(
                "repro_sessions_created_total", "sessions admitted"
            ).inc()
            metrics.gauge(
                "repro_sessions_open", "currently hosted sessions"
            ).set(len(self._sessions))
            return session

    def _build_limits(
        self,
        strategy: str | None,
        pruning: bool | None,
        max_results: int | None,
        resilience: str | ResilienceConfig | None,
        deadline_seconds: float | None,
        trace: bool | None = None,
    ) -> SessionLimits:
        base = self.default_limits
        config: ResilienceConfig | None
        if isinstance(resilience, ResilienceConfig):
            config = resilience
        elif isinstance(resilience, str):
            try:
                config = _POSTURES[resilience]()
            except KeyError:
                raise AdmissionError(
                    f"unknown resilience posture {resilience!r} "
                    f"(choose from {sorted(_POSTURES)})"
                ) from None
        else:
            config = base.resilience
        if deadline_seconds is not None:
            from dataclasses import replace as _replace

            config = config or ResilienceConfig.default()
            config = _replace(config, deadline_seconds=deadline_seconds)
        return SessionLimits(
            strategy=strategy if strategy is not None else base.strategy,
            pruning=pruning if pruning is not None else base.pruning,
            max_results=max_results if max_results is not None else base.max_results,
            resilience=config,
            trace=trace if trace is not None else base.trace,
            trace_capacity=base.trace_capacity,
        )

    def close_session(self, session_id: str) -> None:
        """Client-initiated teardown; frees the session's budget share."""
        session = self.get(session_id)
        with session.lock:
            session.close()
        with self._lock:
            self._sessions.pop(session_id, None)
            self.scheduler.unregister(session_id)
            self.stats_counters.sessions_closed += 1
            metrics.gauge(
                "repro_sessions_open", "currently hosted sessions"
            ).set(len(self._sessions))

    def get(self, session_id: str) -> ManagedSession:
        """Look up a live session; typed errors for evicted vs unknown."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                return session
            if session_id in self._evicted:
                raise SessionEvictedError(session_id, self._evicted[session_id])
        raise SessionNotFoundError(session_id)

    # -- request dispatch ------------------------------------------------
    def apply_action(self, session_id: str, action: Action) -> ActionReport:
        """Apply one formulation action; idle time goes to the scheduler."""
        session = self.get(session_id)
        with session.lock:
            self._touch(session)
            report = session.apply(
                action,
                idle_sink=lambda idle: self.scheduler.donate(session, idle),
            )
        self._enforce_cap_budget(active=session_id)
        return report

    def run(self, session_id: str) -> RunResult:
        """Execute the session's Run click."""
        session = self.get(session_id)
        with session.lock:
            self._touch(session)
            try:
                result = session.run()
            except Exception:
                with self._lock:
                    self.stats_counters.runs_failed += 1
                raise
        with self._lock:
            self.stats_counters.runs_completed += 1
            if result.degraded:
                self.stats_counters.runs_degraded += 1
        self._enforce_cap_budget(active=session_id)
        return result

    def results(self, session_id: str, limit: int | None = None):
        """Validated result subgraphs of a completed session."""
        session = self.get(session_id)
        with session.lock:
            self._touch(session)
            return session.results(limit=limit)

    def matches(self, session_id: str) -> list[dict[int, int]]:
        """Raw ``V_Δ`` of a completed session."""
        session = self.get(session_id)
        with session.lock:
            self._touch(session)
            return session.matches()

    def trace(self, session_id: str, include_open: bool = True) -> dict[str, object]:
        """One session's span timeline (the wire ``trace`` verb)."""
        session = self.get(session_id)
        with session.lock:
            self._touch(session)
            return session.trace_export(include_open=include_open)

    # -- accounting / eviction -------------------------------------------
    def _touch(self, session: ManagedSession) -> None:
        with self._lock:
            session.touch_seq = next(self._touch_counter)

    def total_cap_entries(self) -> int:
        """Live CAP entries across all hosted sessions (best effort).

        Sessions mid-request are sized without their lock; a torn read can
        only skew the *stat* for one enforcement round, never corrupt the
        CAP itself, so a failed concurrent size walk counts as zero rather
        than stalling accounting behind engine compute.
        """
        with self._lock:
            sessions = list(self._sessions.values())
        total = 0
        for session in sessions:
            try:
                total += session.cap_entries()
            except RuntimeError:  # dict resized mid-walk by its own thread
                continue
        return total

    def _enforce_cap_budget(self, active: str | None) -> None:
        """Evict idle LRU sessions until the CAP-entry budget holds.

        ``active`` (the session servicing the current request) is never
        evicted; a single session legitimately larger than the whole
        budget is allowed to finish — load shedding targets *other*
        tenants' retained state, not the request in flight.
        """
        if self.cap_entry_budget is None:
            return
        with self._lock:
            if self.total_cap_entries() <= self.cap_entry_budget:
                return
            overshoot = self.total_cap_entries() - self.cap_entry_budget
            self._evict_lru(
                need_entries=overshoot, reason="CAP budget", active=active
            )

    def _evict_lru(
        self,
        reason: str,
        active: str | None,
        need_sessions: int = 0,
        need_entries: int = 0,
    ) -> None:
        """Reclaim idle sessions, least-recently-touched first.

        Caller holds the manager lock.  Stops once the requested headroom
        (session slots and/or CAP entries) is reclaimed or nothing idle
        remains.
        """
        freed_sessions = 0
        freed_entries = 0
        for session in sorted(self._sessions.values(), key=lambda s: s.touch_seq):
            if freed_sessions >= need_sessions and freed_entries >= need_entries:
                break
            if session.id == active or not session.evictable:
                continue
            freed_entries += session.cap_entries()
            freed_sessions += 1
            session.close()
            del self._sessions[session.id]
            self.scheduler.unregister(session.id)
            if len(self._evicted) >= 1024:
                self._evicted.pop(next(iter(self._evicted)))
            self._evicted[session.id] = reason
            self.stats_counters.sessions_evicted += 1
            self.stats_counters.eviction_log.append(
                f"{session.id}: {reason}"
            )
            metrics.counter(
                "repro_sessions_evicted_total",
                "idle sessions reclaimed by budget enforcement",
                reason=reason.replace(" ", "_"),
            ).inc()

    # -- introspection ---------------------------------------------------
    def session_ids(self) -> list[str]:
        """Ids of currently hosted sessions."""
        with self._lock:
            return list(self._sessions)

    def stats(self) -> dict[str, object]:
        """Service-level statistics (wire ``stats`` op without a session)."""
        with self._lock:
            open_sessions = len(self._sessions)
        oracle = self.base_ctx.oracle
        out: dict[str, object] = {
            "open_sessions": open_sessions,
            "max_sessions": self.max_sessions,
            "cap_entry_budget": self.cap_entry_budget,
            "cap_entries_in_use": self.total_cap_entries(),
            "graph": {
                "name": self.base_ctx.graph.name,
                "num_vertices": self.base_ctx.graph.num_vertices,
                "num_edges": self.base_ctx.graph.num_edges,
            },
            "scheduler": self.scheduler.stats(),
            **self.stats_counters.snapshot(),
        }
        count = getattr(oracle, "query_count", None)
        if count is not None:
            out["oracle_query_count"] = count
        return out
