"""Admission backpressure: watermarks, shedding verdicts, retry hints.

Hard admission control (:class:`~repro.errors.AdmissionError`) only fires
once the session budget is *exhausted and unevictable* — by then every
tenant is already paying queueing delay.  :class:`OverloadPolicy` adds the
earlier, softer layer: configurable **watermarks** on the three resources
that actually saturate a hosting process —

* **open sessions** (fraction of ``max_sessions``),
* **CAP-entry usage** (fraction of ``cap_entry_budget``) — retained
  state, the quantity LRU eviction reclaims,
* **in-flight requests** (queue depth across all wire verbs) — the GIL-
  bound compute the service cannot parallelize past hardware,

— past which the :class:`~repro.service.manager.SessionManager` *sheds*
work with a typed, retryable :class:`~repro.errors.ServiceOverloadedError`
carrying a ``retry_after_ms`` hint, instead of queueing it into collapse.
Shedding is load-dependent and transient; clients holding a
:class:`~repro.resilience.RetryPolicy` (see
:class:`~repro.service.client.ServiceClient`) retry after the hint and
normally succeed, which is what the soak harness (:mod:`repro.soak`)
asserts: **every shed request either succeeds on retry or fails with a
typed retryable error** — never an untyped hang or a wrong answer.

The same verdict type (reason ``"draining"``) refuses new work during a
graceful :meth:`~repro.service.manager.SessionManager.drain`, so one
client-side code path handles both "busy now" and "going away".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import OverloadConfigError, ServiceOverloadedError

__all__ = ["OverloadPolicy"]


@dataclass(frozen=True)
class OverloadPolicy:
    """Watermark configuration for load shedding (immutable; share freely).

    Parameters
    ----------
    session_watermark:
        Fraction of ``max_sessions`` past which *new-session* admissions
        shed once nothing idle is evictable (1.0 keeps the pre-overload
        behavior of refusing only at the hard budget).
    cap_watermark:
        Fraction of ``cap_entry_budget`` past which new-session
        admissions shed (existing sessions keep working — shedding
        targets load growth, never the request in flight).
    max_inflight:
        Maximum concurrently dispatched requests (queue depth) before
        session-mutating verbs shed.  ``None`` disables the queue-depth
        watermark.
    retry_after_ms:
        Base client back-off hint attached to every shed verdict.
    retry_after_draining_ms:
        Hint used while draining (typically longer: the process is going
        away, the client should re-resolve and talk to another instance
        or wait out the restart).
    """

    session_watermark: float = 0.85
    cap_watermark: float = 0.9
    max_inflight: int | None = None
    retry_after_ms: int = 50
    retry_after_draining_ms: int = 250

    def __post_init__(self) -> None:
        if not 0.0 < self.session_watermark <= 1.0:
            raise OverloadConfigError("session_watermark must be in (0, 1]")
        if not 0.0 < self.cap_watermark <= 1.0:
            raise OverloadConfigError("cap_watermark must be in (0, 1]")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise OverloadConfigError("max_inflight must be >= 1 (or None)")
        if self.retry_after_ms < 0 or self.retry_after_draining_ms < 0:
            raise OverloadConfigError("retry hints must be >= 0")

    # -- watermark arithmetic -------------------------------------------
    def session_threshold(self, max_sessions: int) -> int:
        """Open-session count at which creations start shedding."""
        return max(1, math.ceil(self.session_watermark * max_sessions))

    def cap_threshold(self, cap_entry_budget: int | None) -> int | None:
        """CAP-entry usage at which creations start shedding (None = off)."""
        if cap_entry_budget is None:
            return None
        return max(1, math.ceil(self.cap_watermark * cap_entry_budget))

    # -- verdict construction -------------------------------------------
    def shed(self, reason: str, detail: str) -> ServiceOverloadedError:
        """The typed, retryable verdict for one shed decision."""
        hint = (
            self.retry_after_draining_ms
            if reason == "draining"
            else self.retry_after_ms
        )
        return ServiceOverloadedError(
            f"load shed ({reason}): {detail}",
            reason=reason,
            retry_after_ms=hint,
        )
