"""Multi-process worker pool: the service past the GIL ceiling.

The threaded :class:`~repro.service.manager.SessionManager` tops out at
one core — BENCH_service.json's collapse from ~169 sessions/s at 1
concurrent session to ~10/s at 32 is the GIL, not the engine.  This
package splits the service into a **dispatcher** (socket front end +
routing, still threads) and **N worker processes**, each running the
unchanged single-process stack over a shared, zero-copy engine basis:

* :mod:`repro.service.pool.shm` — publish/attach of the immutable CSR
  graph and finalized PML label arrays via
  ``multiprocessing.shared_memory``;
* :mod:`repro.service.pool.worker` — the child-process entry point (one
  manager + :class:`~repro.service.dispatch.LocalDispatcher` behind a
  pipe);
* :mod:`repro.service.pool.dispatcher` — :class:`PoolDispatcher`, the
  :class:`~repro.service.server.QueryServer` backend: sticky routing,
  metrics/stats fan-out, and worker-death repair (respawn + checkpoint
  requeue).

``repro serve --workers N`` selects this backend; ``--workers 0`` keeps
the in-process threaded path bit-for-bit.
"""

from repro.service.pool.dispatcher import PoolDispatcher
from repro.service.pool.shm import (
    SharedContextSpec,
    SharedPML,
    attach_context,
    publish_context,
    unlink_segments,
)
from repro.service.pool.worker import WorkerConfig, worker_main

__all__ = [
    "PoolDispatcher",
    "SharedContextSpec",
    "SharedPML",
    "attach_context",
    "publish_context",
    "unlink_segments",
    "WorkerConfig",
    "worker_main",
]
