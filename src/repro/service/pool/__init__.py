"""Multi-process worker pool: the service past the GIL ceiling.

The threaded :class:`~repro.service.manager.SessionManager` tops out at
one core — BENCH_service.json's collapse from ~169 sessions/s at 1
concurrent session to ~10/s at 32 is the GIL, not the engine.  This
package splits the service into a **dispatcher** (socket front end +
routing, still threads) and **N worker processes**, each running the
unchanged single-process stack over a shared engine basis published
through :mod:`repro.storage`:

* :mod:`repro.service.pool.dispatcher` — :class:`PoolDispatcher`, the
  :class:`~repro.service.server.QueryServer` backend: sticky routing,
  metrics/stats fan-out, worker-death repair (respawn + checkpoint
  requeue), and the ``storage="shm"|"mmap"`` choice of basis transport
  (zero-copy shared-memory segments, or a shared on-disk mmap basis);
* :mod:`repro.service.pool.worker` — the child-process entry point (one
  manager + :class:`~repro.service.dispatch.LocalDispatcher` behind a
  pipe) attaching whatever spec the dispatcher published via the
  backend-generic :func:`repro.storage.attach`;
* :mod:`repro.service.pool.shm` — deprecation shim re-exporting the
  historical publish/attach names over :mod:`repro.storage.shm`.

``repro serve --workers N`` selects this backend; ``--workers 0`` keeps
the in-process threaded path bit-for-bit, and ``--storage mmap`` swaps
the transport under the same wire surface.
"""

from repro.service.pool.dispatcher import PoolDispatcher
from repro.service.pool.shm import (
    SharedContextSpec,
    SharedPML,
    attach_context,
    publish_context,
    unlink_segments,
)
from repro.service.pool.worker import WorkerConfig, worker_main

__all__ = [
    "PoolDispatcher",
    "SharedContextSpec",
    "SharedPML",
    "attach_context",
    "publish_context",
    "unlink_segments",
    "WorkerConfig",
    "worker_main",
]
