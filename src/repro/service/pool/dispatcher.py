"""The pool backend: sticky routing, fan-out verbs, worker-death repair.

:class:`PoolDispatcher` implements the backend seam of
:mod:`repro.service.dispatch` over N spawned worker processes:

* **Sticky session→worker routing.**  ``create_session`` picks the
  least-loaded live worker (ties to the lowest index — deterministic),
  and every later request for that session id goes to the same worker,
  so its action log, CAP warm state, and IdleScheduler accounting stay
  process-local.  A session id the dispatcher has never seen routes by
  CRC32 of the id — also deterministic — and the worker answers with the
  usual typed verdicts (evicted-and-restorable if a disk checkpoint
  exists).
* **Fan-out verbs.**  ``metrics`` pulls every worker's registry snapshot
  over the pipe and folds them through :mod:`repro.obs.aggregate` (plus
  the dispatcher's own registry), so the wire surface still shows one
  coherent registry; ``stats`` sums worker manager stats recursively and
  adds a ``pool`` section; ``ping`` answers locally.
* **Worker death folds into the resilience ladder.**  A dead pipe fails
  that worker's in-flight requests with the *retryable*
  :class:`~repro.errors.WorkerDiedError` (clients already retry typed
  retryable verdicts), a replacement worker is spawned at the same index
  (next id generation, so fresh ids never collide with the dead
  fleet's), and every session that was routed to the corpse is requeued:
  restored from its write-through disk checkpoint onto a healthy worker
  and remapped.  Deferral neutrality makes the restored session's
  subsequent matches byte-identical — the same guarantee the eviction
  ladder already gives, now covering SIGKILL.

The dispatcher owns the published shared-memory segments and the
checkpoint directory (when it created one); ``close()`` retires workers,
then unlinks both — no segment survives a drained pool.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing as mp
import os
import shutil
import tempfile
import threading
import zlib
from typing import Any

from repro.core.context import EngineContext
from repro.errors import (
    ProtocolError,
    RelayedError,
    StorageError,
    WorkerDiedError,
    WorkerPoolError,
)
from repro.obs.aggregate import merge_snapshots, render_merged_text
from repro.obs.metrics import metrics
from repro.service import protocol
from repro.storage import (
    StorageBackend,
    basis_from_context,
    open_backend,
    publish_basis,
    unlink_segments,
)
from repro.service.pool.worker import WorkerConfig, worker_main

__all__ = ["PoolDispatcher"]

#: Verbs that address one session and simply route to its worker.
_ROUTED_OPS = (
    "action",
    "run",
    "matches",
    "results",
    "trace",
    "close_session",
)


class _Pending:
    """One in-flight pipe request awaiting its reply (or the worker's death)."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: dict[str, Any] | None = None
        self.error: BaseException | None = None


class _WorkerHandle:
    """Dispatcher-side view of one worker process."""

    def __init__(self, index: int, generation: int, process, conn) -> None:
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending: dict[int, _Pending] = {}
        self.pending_lock = threading.Lock()
        self.alive = True
        self.retiring = False  # clean exit requested; EOF is not a death
        self.reader: threading.Thread | None = None


class PoolDispatcher:
    """Dispatcher + N worker processes behind the QueryServer seam."""

    def __init__(
        self,
        base_ctx: EngineContext,
        workers: int = 2,
        max_sessions: int = 64,
        cap_entry_budget: int | None = 1_000_000,
        default_limits: Any = None,
        overload: Any = None,
        checkpoint_capacity: int = 256,
        checkpoint_dir: str | None = None,
        respawn: bool = True,
        storage: str = "shm",
        basis_dir: str | None = None,
        storage_budget_bytes: int | None = None,
    ) -> None:
        if workers < 1:
            raise WorkerPoolError("worker pool needs at least 1 worker")
        if storage not in ("shm", "mmap"):
            raise WorkerPoolError(
                f"pool storage must be 'shm' or 'mmap', got {storage!r}"
            )
        self.workers = workers
        self.respawn = respawn
        self.storage = storage
        self._mp = mp.get_context("spawn")
        try:
            basis = basis_from_context(base_ctx)
        except StorageError as exc:
            raise WorkerPoolError(str(exc)) from exc
        self._basis_backend: StorageBackend | None = None
        if storage == "mmap":
            # Workers open the same read-only npy files instead of
            # attaching copies through shm; the kernel page cache is the
            # shared medium, so fleet residency stays one basis deep.
            # open_backend reuses a valid saved basis already in
            # basis_dir (restart / materialize_basis) instead of
            # rewriting it.
            self._basis_backend = open_backend(
                "mmap",
                basis=basis,
                directory=basis_dir,
                budget_bytes=storage_budget_bytes,
            )
            self._spec = self._basis_backend.spec()
            self._segments = []
        else:
            self._spec, self._segments = publish_basis(basis)
        if checkpoint_dir is None:
            checkpoint_dir = tempfile.mkdtemp(prefix="repro-pool-ckpt-")
            self._owns_checkpoint_dir = True
        else:
            os.makedirs(checkpoint_dir, exist_ok=True)
            self._owns_checkpoint_dir = False
        self.checkpoint_dir = checkpoint_dir
        #: The fleet session budget; each worker hosts its even share.
        self._config = WorkerConfig(
            max_sessions=max(1, math.ceil(max_sessions / workers)),
            cap_entry_budget=cap_entry_budget,
            default_limits=default_limits,
            overload=overload,
            checkpoint_capacity=checkpoint_capacity,
            checkpoint_dir=checkpoint_dir,
        )
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._route: dict[str, int] = {}  # session id -> worker index
        self._handles: list[_WorkerHandle] = []
        self._closing = False
        self._draining = False
        self._deaths = 0
        self._respawns = 0
        self._requeued = 0
        self._requeue_failures = 0
        try:
            for index in range(workers):
                self._handles.append(self._spawn(index, generation=0))
        except Exception:
            self.close()
            raise

    @property
    def graph_name(self) -> str:
        return self._spec.graph_name

    # -- worker lifecycle ------------------------------------------------
    def _spawn(self, index: int, generation: int) -> _WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        # Generation tags keep a respawned worker's fresh session ids
        # (``w0g1s1`` ...) disjoint from its dead predecessor's (``w0s1``),
        # which may live on — requeued onto another worker.
        tag = str(index) if generation == 0 else f"{index}g{generation}"
        process = self._mp.Process(
            target=worker_main,
            args=(tag, self._spec, self._config, child_conn),
            name=f"repro-pool-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(index, generation, process, parent_conn)
        reader = threading.Thread(
            target=self._read_loop,
            args=(handle,),
            name=f"repro-pool-reader-{index}",
            daemon=True,
        )
        handle.reader = reader
        reader.start()
        metrics.counter(
            "repro_pool_workers_spawned_total", "worker processes started"
        ).inc()
        return handle

    def _read_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind, seq, body = message
            with handle.pending_lock:
                pending = handle.pending.pop(seq, None)
            if pending is None:
                continue  # reply raced a death verdict; already failed
            if kind == "ok":
                pending.result = body
            else:
                pending.error = RelayedError(
                    body["code"], body["payload"], retryable=body["retryable"]
                )
            pending.event.set()
        self._on_worker_exit(handle)

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        with handle.pending_lock:
            doomed = list(handle.pending.values())
            handle.pending.clear()
        for pending in doomed:
            pending.error = WorkerDiedError(handle.index)
            pending.event.set()
        with self._lock:
            closing = self._closing
        if handle.retiring or closing:
            return
        self._deaths += 1
        metrics.counter(
            "repro_pool_worker_deaths_total", "worker processes lost unexpectedly"
        ).inc()
        # Repair off the reader thread: respawn, then requeue the corpse's
        # sessions from their disk checkpoints.
        threading.Thread(
            target=self._repair,
            args=(handle,),
            name=f"repro-pool-repair-{handle.index}",
            daemon=True,
        ).start()

    def _repair(self, dead: _WorkerHandle) -> None:
        try:
            dead.process.join(timeout=1.0)
        except Exception:
            pass
        with self._lock:
            if self._closing:
                return
            if self.respawn:
                replacement = self._spawn(dead.index, dead.generation + 1)
                self._handles[dead.index] = replacement
                self._respawns += 1
                metrics.counter(
                    "repro_pool_workers_respawned_total",
                    "replacement workers started after a death",
                ).inc()
            orphans = [
                sid for sid, idx in self._route.items() if idx == dead.index
            ]
            for sid in orphans:
                del self._route[sid]
        for sid in orphans:
            try:
                target = self._pick_worker()
                result = self._call(
                    target, {"op": "restore_session", "session": sid}
                )
            except Exception:
                # No checkpoint (or the restore shed): the session is
                # gone the same way a dropped checkpoint already loses
                # one — the client's typed-error path handles it.
                self._requeue_failures += 1
                metrics.counter(
                    "repro_pool_requeue_failures_total",
                    "orphaned sessions that could not be restored",
                ).inc()
                continue
            with self._lock:
                self._route[str(result.get("session", sid))] = target.index
            self._requeued += 1
            metrics.counter(
                "repro_pool_sessions_requeued_total",
                "sessions restored onto a healthy worker after a death",
            ).inc()

    # -- pipe RPC ---------------------------------------------------------
    def _call(
        self, handle: _WorkerHandle, request: dict[str, Any]
    ) -> dict[str, Any]:
        if not handle.alive:
            raise WorkerDiedError(handle.index)
        seq = next(self._seq)
        pending = _Pending()
        with handle.pending_lock:
            handle.pending[seq] = pending
        try:
            with handle.send_lock:
                handle.conn.send(("req", seq, request))
        except (BrokenPipeError, OSError):
            with handle.pending_lock:
                handle.pending.pop(seq, None)
            raise WorkerDiedError(handle.index) from None
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def _alive(self) -> list[_WorkerHandle]:
        with self._lock:
            alive = [h for h in self._handles if h.alive]
        if not alive:
            raise WorkerPoolError("no live workers in the pool")
        return alive

    def _pick_worker(self) -> _WorkerHandle:
        """Least mapped sessions among live workers; ties to lowest index."""
        alive = self._alive()
        with self._lock:
            load = {h.index: 0 for h in alive}
            for idx in self._route.values():
                if idx in load:
                    load[idx] += 1
        return min(alive, key=lambda h: (load[h.index], h.index))

    def _worker_for(self, session_id: str) -> _WorkerHandle:
        """Sticky lookup; unseen ids hash deterministically onto the fleet."""
        with self._lock:
            idx = self._route.get(session_id)
            if idx is not None and self._handles[idx].alive:
                return self._handles[idx]
        alive = self._alive()
        return alive[zlib.crc32(session_id.encode()) % len(alive)]

    # -- backend API ------------------------------------------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request["op"]
        if op == "ping":
            return {
                "pong": True,
                "protocol": protocol.PROTOCOL_VERSION,
                "supported_protocols": list(protocol.SUPPORTED_VERSIONS),
                "graph": self.graph_name,
                "workers": len(self._alive()),
            }
        if op == "metrics":
            merged = self._merged_metrics()
            if request.get("format") == "text":
                return {"text": render_merged_text(merged)}
            return {"metrics": merged}
        if op == "stats":
            session_id = request.get("session")
            if session_id is None:
                return self._merged_stats()
            return self._call(self._worker_for(str(session_id)), request)
        if op == "shutdown":
            return {"stopping": True}
        if op == "update":
            # Workers attach the basis arrays read-only (shm segments or
            # mmap pages shared across processes) — an in-place edge
            # update cannot reach the whole fleet coherently.  Refuse
            # with the typed pool verdict; graph updates require the
            # in-process backend (--workers 0) or a basis rebuild.
            raise WorkerPoolError(
                "graph updates are not supported behind a worker pool: "
                "the shared basis is immutable across workers; run with "
                "--workers 0 or rebuild the basis"
            )
        if op == "create_session":
            target = self._pick_worker()
            result = self._call(target, request)
            sid = result.get("session")
            if isinstance(sid, str):
                with self._lock:
                    self._route[sid] = target.index
            result["worker"] = target.index
            return result

        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ProtocolError(f"op {op!r} requires a 'session' string")
        if op == "restore_session":
            target = self._worker_for(session_id)
            result = self._call(target, request)
            with self._lock:
                self._route[session_id] = target.index
            result["worker"] = target.index
            return result
        if op in _ROUTED_OPS:
            target = self._worker_for(session_id)
            result = self._call(target, request)
            if op == "close_session":
                with self._lock:
                    self._route.pop(session_id, None)
            return result
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    # -- fan-out verbs ----------------------------------------------------
    def _merged_metrics(self) -> dict[str, Any]:
        snapshots: list[dict[str, Any]] = [metrics.snapshot()]
        for handle in self._alive():
            try:
                reply = self._call(handle, {"op": "metrics"})
            except (WorkerDiedError, RelayedError):
                continue  # a dying worker's snapshot is not worth failing for
            snapshots.append(reply.get("metrics", {}))
        return merge_snapshots(snapshots)

    def _merged_stats(self) -> dict[str, Any]:
        per_worker: dict[str, dict[str, Any]] = {}
        for handle in self._alive():
            try:
                per_worker[str(handle.index)] = self._call(
                    handle, {"op": "stats"}
                )
            except (WorkerDiedError, RelayedError):
                continue
        merged: dict[str, Any] = {}
        for stats in per_worker.values():
            _sum_into(merged, stats)
        merged["draining"] = self._draining
        with self._lock:
            alive_count = sum(1 for h in self._handles if h.alive)
            routed_sessions = len(self._route)
            respawned = self._respawns
        merged["pool"] = {
            "storage": self.storage,
            "workers": self.workers,
            "alive": alive_count,
            "routed_sessions": routed_sessions,
            "worker_deaths": self._deaths,
            "workers_respawned": respawned,
            "sessions_requeued": self._requeued,
            "requeue_failures": self._requeue_failures,
            "checkpoint_dir": self.checkpoint_dir,
        }
        merged["per_worker"] = per_worker
        return merged

    def drain(self, timeout: float | None = 5.0) -> dict[str, object]:
        """Graceful fleet drain: every worker drains; summaries merge."""
        self._draining = True
        checkpointed: list[str] = []
        busy: list[str] = []
        inflight = 0
        for handle in self._alive():
            seq = next(self._seq)
            pending = _Pending()
            with handle.pending_lock:
                handle.pending[seq] = pending
            try:
                with handle.send_lock:
                    handle.conn.send(("drain", seq, timeout))
            except (BrokenPipeError, OSError):
                with handle.pending_lock:
                    handle.pending.pop(seq, None)
                continue
            pending.event.wait()
            if pending.error is not None or pending.result is None:
                continue
            summary = pending.result
            checkpointed.extend(summary.get("checkpointed", []))
            busy.extend(summary.get("busy", []))
            inflight += int(summary.get("inflight_at_timeout", 0))
        return {
            "checkpointed": sorted(checkpointed),
            "busy": sorted(busy),
            "inflight_at_timeout": inflight,
        }

    def close(self) -> None:
        """Retire the fleet and destroy every shared segment (idempotent)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            handles = list(self._handles)
        for handle in handles:
            handle.retiring = True
            if not handle.alive:
                continue
            try:
                with handle.send_lock:
                    handle.conn.send(("exit", next(self._seq)))
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            if handle.process.is_alive():
                handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # refused to go; force it
                handle.process.kill()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        unlink_segments(self._segments)
        self._segments = []
        if self._basis_backend is not None:
            self._basis_backend.close()
        if self._owns_checkpoint_dir:
            shutil.rmtree(self.checkpoint_dir, ignore_errors=True)

    # -- introspection (tests / soak) -------------------------------------
    def session_worker(self, session_id: str) -> int | None:
        """The worker index a session is currently routed to (or None)."""
        with self._lock:
            return self._route.get(session_id)

    def worker_pids(self) -> dict[int, int]:
        """Live worker index -> OS pid (chaos harness kill targets)."""
        with self._lock:
            return {
                h.index: h.process.pid
                for h in self._handles
                if h.alive and h.process.pid is not None
            }

    def segment_names(self) -> list[str]:
        """Names of the published shared-memory segments (leak checks)."""
        return self._spec.segment_names()


def _sum_into(into: dict[str, Any], stats: dict[str, Any]) -> None:
    """Recursively fold one worker's stats dict into the aggregate.

    Numbers sum (bools excluded), dicts merge recursively, lists
    concatenate; strings and None keep the first worker's value — the
    fleet shares one graph and one overload policy, so they agree.
    """
    for key, value in stats.items():
        if isinstance(value, bool):
            into.setdefault(key, value)
        elif isinstance(value, (int, float)):
            prior = into.get(key, 0)
            into[key] = (prior if isinstance(prior, (int, float)) else 0) + value
        elif isinstance(value, dict):
            slot = into.setdefault(key, {})
            if isinstance(slot, dict):
                _sum_into(slot, value)
        elif isinstance(value, list):
            slot = into.setdefault(key, [])
            if isinstance(slot, list):
                slot.extend(value)
        else:
            into.setdefault(key, value)
