"""Zero-copy engine-basis publication over ``multiprocessing.shared_memory``.

The expensive, immutable part of an :class:`~repro.core.context.EngineContext`
is a handful of flat numpy arrays: the CSR graph (``offsets``/``neighbors``),
the finalized PML label CSR (``label_offsets``/``ranks``/``dists`` plus the
landmark ``order``), and the two-hop counts.  The dispatcher **publishes**
each array once into a named ``SharedMemory`` segment and hands every worker
a small picklable :class:`SharedContextSpec` (segment names + dtypes +
shapes + the scalar leftovers: labels, cost-model constants).  A worker
**attaches** lazily on its first real request: mapping the segments costs
page-table entries, not copies, so per-worker memory for the basis is ~zero
regardless of N.

Two deliberate asymmetries:

* **Ownership.** Only the publisher unlinks.  Attaching processes must also
  tell *their* ``resource_tracker`` to forget the segment — CPython
  registers every ``SharedMemory(name=...)`` attach for leak-tracking and
  would otherwise *destroy* the shared segments when the first worker
  exits, yanking the graph out from under its siblings (bpo-39959).
* **Label lists, not arrays.**  PML's scalar hot path wants per-vertex
  Python lists; materializing all of them per worker would undo the
  zero-copy win.  :class:`SharedPML` keeps the CSR arrays shared and wraps
  them in :class:`_LazyLabels`, which materializes a vertex's scalar list
  on first touch and caches it — workers pay only for their sessions' hot
  set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.errors import WorkerPoolError
from repro.graph.graph import Graph
from repro.indexing.pml import PrunedLandmarkLabeling

__all__ = [
    "SharedContextSpec",
    "SharedPML",
    "publish_context",
    "attach_context",
    "unlink_segments",
]


@dataclass(frozen=True)
class _ArraySpec:
    """One published array: where it lives and how to view it."""

    segment: str
    dtype: str
    shape: tuple[int, ...]


@dataclass(frozen=True)
class SharedContextSpec:
    """Everything a worker needs to rebuild the engine basis, picklable.

    The arrays travel by *name* (shared segments); only the scalars — the
    per-vertex label list, graph name, cost-model constants — travel by
    value in the spawn pickle.
    """

    graph_name: str
    labels: tuple
    arrays: dict[str, _ArraySpec] = field(default_factory=dict)
    cost_model: dict[str, float] = field(default_factory=dict)
    avg_label: float = 0.0
    scan_override: str | None = None
    batch_enabled: bool = True

    def segment_names(self) -> list[str]:
        return [spec.segment for spec in self.arrays.values()]


class _LazyLabels:
    """Sequence view of per-vertex label columns over the shared CSR.

    ``labels[v]`` materializes ``column[offsets[v]:offsets[v+1]]`` as a
    plain Python list on first access and caches it — the tight scalar
    merge join keeps its list-of-ints speed, but a worker only ever pays
    for the vertices its sessions actually touch.
    """

    __slots__ = ("_offsets", "_column", "_cache")

    def __init__(self, offsets: np.ndarray, column: np.ndarray) -> None:
        self._offsets = offsets
        self._column = column
        self._cache: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, v: int) -> list[int]:
        hit = self._cache.get(v)
        if hit is None:
            start, end = int(self._offsets[v]), int(self._offsets[v + 1])
            hit = self._column[start:end].tolist()
            self._cache[v] = hit
        return hit


class SharedPML(PrunedLandmarkLabeling):
    """A PML index whose backing arrays live in shared memory.

    Built via ``__new__`` from already-finalized CSR arrays — never by
    :meth:`~repro.indexing.pml.PrunedLandmarkLabeling.build`.  Query
    behavior is bit-identical to the original index (same arrays, same
    kernels); only storage differs, so the label-size introspection
    reads the shared offsets instead of walking materialized lists.
    """

    @classmethod
    def from_shared(
        cls,
        graph: Graph,
        label_offsets: np.ndarray,
        label_ranks_arr: np.ndarray,
        label_dists_arr: np.ndarray,
        order: np.ndarray,
        avg_label: float,
    ) -> "SharedPML":
        pml = cls.__new__(cls)
        pml._graph = graph
        pml._order = order
        pml.query_count = 0
        pml._label_offsets = label_offsets
        pml._label_ranks_arr = label_ranks_arr
        pml._label_dists_arr = label_dists_arr
        pml._avg_label = avg_label
        pml._label_ranks = _LazyLabels(label_offsets, label_ranks_arr)
        pml._label_dists = _LazyLabels(label_offsets, label_dists_arr)
        return pml

    def label_size(self, v: int) -> int:
        self._graph._check_vertex(v)
        return int(self._label_offsets[v + 1] - self._label_offsets[v])

    def total_label_entries(self) -> int:
        return int(self._label_offsets[-1])


# --------------------------------------------------------------------------
# Publish (dispatcher side)
# --------------------------------------------------------------------------
def _publish_array(
    arr: np.ndarray, segments: list[shared_memory.SharedMemory]
) -> _ArraySpec:
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    segments.append(shm)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return _ArraySpec(segment=shm.name, dtype=str(arr.dtype), shape=arr.shape)


def publish_context(
    ctx: EngineContext,
) -> tuple[SharedContextSpec, list[shared_memory.SharedMemory]]:
    """Publish ``ctx``'s immutable basis; returns (spec, owned segments).

    The caller owns the returned segments: keep them referenced for the
    pool's lifetime, then :func:`unlink_segments` exactly once.  Requires
    a PML oracle (the pool shares *finalized label arrays*; a BFS oracle
    has no frozen index to share).
    """
    oracle = ctx.oracle
    if not isinstance(oracle, PrunedLandmarkLabeling):
        raise WorkerPoolError(
            f"worker pool requires a PML oracle to publish; got "
            f"{type(oracle).__name__}"
        )
    if not hasattr(oracle, "_label_offsets"):
        oracle._finalize_labels()
    offsets, neighbors = ctx.graph.raw_csr()
    segments: list[shared_memory.SharedMemory] = []
    try:
        arrays = {
            "graph_offsets": _publish_array(offsets, segments),
            "graph_neighbors": _publish_array(neighbors, segments),
            "pml_offsets": _publish_array(oracle._label_offsets, segments),
            "pml_ranks": _publish_array(oracle._label_ranks_arr, segments),
            "pml_dists": _publish_array(oracle._label_dists_arr, segments),
            "pml_order": _publish_array(np.asarray(oracle._order), segments),
            "two_hop": _publish_array(np.asarray(ctx.two_hop), segments),
        }
    except Exception:
        unlink_segments(segments)
        raise
    cost = ctx.cost_model
    spec = SharedContextSpec(
        graph_name=ctx.graph.name,
        labels=tuple(ctx.graph.labels()),
        arrays=arrays,
        cost_model={
            "t_avg": cost.t_avg,
            "t_lat": cost.t_lat,
            "mean_degree": cost.mean_degree,
            "mean_two_hop": cost.mean_two_hop,
        },
        avg_label=float(oracle._avg_label),
        scan_override=ctx.scan_override,
        batch_enabled=ctx.batch_enabled,
    )
    return spec, segments


def unlink_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Close and destroy published segments (publisher side, idempotent)."""
    for shm in segments:
        try:
            shm.close()
        except OSError:
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


# --------------------------------------------------------------------------
# Attach (worker side)
# --------------------------------------------------------------------------
def _attach_array(
    spec: _ArraySpec, attached: list[shared_memory.SharedMemory]
) -> np.ndarray:
    # CPython registers every attach with the resource_tracker, which the
    # spawned workers *share* with the publisher — so a worker's attach
    # registration (and the automatic cleanup it implies) would fight the
    # publisher's ownership: the tracker would unlink segments while
    # siblings still map them, or double-book the name (bpo-39959).
    # Suppress registration for the attach: only the publisher owns the
    # segment's lifetime.
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=spec.segment)
    finally:
        resource_tracker.register = original_register
    attached.append(shm)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


def attach_context(
    spec: SharedContextSpec,
) -> tuple[EngineContext, list[shared_memory.SharedMemory]]:
    """Rebuild a full :class:`EngineContext` over the published segments.

    Returns the context plus the attached handles — the caller must keep
    them referenced as long as the context lives (the numpy views borrow
    their buffers) and ``close()`` (never ``unlink()``) them at exit.
    """
    attached: list[shared_memory.SharedMemory] = []
    views = {
        name: _attach_array(arr_spec, attached)
        for name, arr_spec in spec.arrays.items()
    }
    graph = Graph(
        offsets=views["graph_offsets"],
        neighbors=views["graph_neighbors"],
        labels=list(spec.labels),
        name=spec.graph_name,
    )
    pml = SharedPML.from_shared(
        graph,
        label_offsets=views["pml_offsets"],
        label_ranks_arr=views["pml_ranks"],
        label_dists_arr=views["pml_dists"],
        order=views["pml_order"],
        avg_label=spec.avg_label,
    )
    ctx = EngineContext(
        graph=graph,
        oracle=pml,
        two_hop=views["two_hop"],
        cost_model=CostModel(**spec.cost_model),
        scan_override=spec.scan_override,
        batch_enabled=spec.batch_enabled,
    )
    return ctx, attached
