"""Deprecation shim over :mod:`repro.storage` — the pool's old shm API.

The zero-copy publish/attach machinery that used to live here is now
the storage layer's shm backend (:mod:`repro.storage.shm`), one of the
three interchangeable :class:`~repro.storage.basis.EngineBasis`
backends.  This module keeps the historical pool-flavored names
importable:

* :class:`SharedContextSpec` / :func:`unlink_segments` — re-exported
  unchanged (they simply moved);
* :class:`SharedPML` — alias of :class:`repro.storage.basis.StoredPML`
  (the index works over *any* backend's arrays, not just shm, so the
  generic name won);
* :func:`publish_context` / :func:`attach_context` — shims that accept
  the new ``basis=`` keyword and emit a :class:`DeprecationWarning` for
  the bespoke array-plumbing signatures.  New code publishes a basis
  (``publish_basis(basis_from_context(ctx))``) and attaches through the
  backend-generic :func:`repro.storage.attach`.
"""

from __future__ import annotations

import warnings
from multiprocessing import shared_memory

from repro.core.context import EngineContext
from repro.errors import StorageError, WorkerPoolError
from repro.storage.basis import (
    EngineBasis,
    StoredPML as SharedPML,
    basis_from_context,
    context_from_basis,
)
from repro.storage.shm import (
    SharedContextSpec,
    attach_basis,
    publish_basis,
    unlink_segments,
)

__all__ = [
    "SharedContextSpec",
    "SharedPML",
    "publish_context",
    "attach_context",
    "unlink_segments",
]


def publish_context(
    ctx: EngineContext | None = None,
    *,
    basis: EngineBasis | None = None,
) -> tuple[SharedContextSpec, list[shared_memory.SharedMemory]]:
    """Publish an engine basis into shared memory; returns (spec, segments).

    Pass ``basis=`` (the supported signature).  The historical positional
    ``ctx`` form still works but is deprecated: it re-extracts the basis
    on every call, and the extraction lives in
    :func:`repro.storage.basis.basis_from_context` now.
    """
    if basis is None:
        if ctx is None:
            raise WorkerPoolError("publish_context needs a context or a basis")
        warnings.warn(
            "publish_context(ctx) is deprecated; pass "
            "basis=repro.storage.basis_from_context(ctx) or publish through "
            "repro.storage.ShmBackend",
            DeprecationWarning,
            stacklevel=2,
        )
        try:
            basis = basis_from_context(ctx)
        except StorageError as exc:
            # Historical contract: pool-side publication failures surface
            # as WorkerPoolError (the pool soak's leak checks key on it).
            raise WorkerPoolError(str(exc)) from exc
    return publish_basis(basis)


def attach_context(
    spec: SharedContextSpec | None = None,
    *,
    basis: EngineBasis | None = None,
) -> tuple[EngineContext, list[shared_memory.SharedMemory]]:
    """Rebuild an :class:`EngineContext`; returns (context, attached handles).

    Pass ``basis=`` to build over an already-attached basis (no new
    handles).  The historical positional ``spec`` form still works but
    is deprecated in favor of the backend-generic
    :func:`repro.storage.attach`, which also understands mmap specs.
    """
    if basis is not None:
        return context_from_basis(basis), []
    if spec is None:
        raise WorkerPoolError("attach_context needs a spec or a basis")
    warnings.warn(
        "attach_context(spec) is deprecated; use repro.storage.attach(spec), "
        "which dispatches over every storage backend",
        DeprecationWarning,
        stacklevel=2,
    )
    attached_basis, handles = attach_basis(spec)
    return context_from_basis(attached_basis), handles
