"""Worker-process entry point: one manager, one pipe, shared basis.

A worker is deliberately just today's single-process service stack —
:class:`~repro.service.manager.SessionManager` behind a
:class:`~repro.service.dispatch.LocalDispatcher` — re-hosted behind a
duplex pipe instead of a socket.  Everything the threaded path guarantees
(per-session locking, IdleScheduler idle donation, overload shedding,
drain semantics) holds verbatim *inside* each worker; the pool only adds
process boundaries between groups of sessions.

Wire format on the pipe (picklable tuples):

* parent → worker: ``("req", seq, request)`` — one decoded wire request;
  ``("drain", seq, timeout)`` — graceful drain; ``("exit", seq)`` — stop.
* worker → parent: ``("ok", seq, result)`` or ``("err", seq, verdict)``
  where ``verdict`` is ``{"code", "retryable", "payload"}`` built by
  :func:`~repro.service.protocol.error_code` /
  :func:`~repro.service.protocol.error_payload` — exceptions cross the
  boundary as *data*, not pickles (exception ``__init__`` signatures are
  fragile across versions), and rehydrate dispatcher-side as
  :class:`~repro.errors.RelayedError` so clients see identical codes and
  retry hints with ``--workers 0`` and ``--workers N``.

Requests run on their own thread (the pipe reader never blocks on engine
compute), replies are serialized by a send lock.  The shared basis is
attached **lazily on the first request** — spawning N workers costs N
interpreter startups, not N graph copies.

Distinct per-process state that stays local by design: the action logs and
IdleScheduler warm state of this worker's sessions (sticky routing keeps
a session here for life), the process-wide
:data:`~repro.indexing.batch.shared_distance_cache`, and the metrics
registry (snapshots flow back over the pipe via the ``metrics`` op and are
merged by :mod:`repro.obs.aggregate`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.storage import attach as attach_storage

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable per-worker manager configuration (spawn-shipped)."""

    max_sessions: int = 64
    cap_entry_budget: int | None = 1_000_000
    default_limits: Any = None  # SessionLimits | None
    overload: Any = None  # OverloadPolicy | None
    checkpoint_capacity: int = 256
    #: Shared across the fleet: where write-through checkpoints land, and
    #: where a replacement worker finds its predecessor's sessions.
    checkpoint_dir: str | None = None
    #: Write-through checkpointing is what makes SIGKILL survivable; the
    #: pool leaves it on.  (Off reproduces eviction/drain-only capture.)
    checkpoint_on_mutate: bool = True


def _error_verdict(exc: BaseException) -> dict[str, Any]:
    """Serialize a failure as plain data for the pipe."""
    from repro.service import protocol

    payload = protocol.error_payload(exc)
    return {
        "code": protocol.error_code(exc),
        "retryable": bool(payload.get("retryable", False)),
        "payload": payload,
    }


def worker_main(
    index: int | str, spec: Any, config: WorkerConfig, conn: Any
) -> None:
    """Run one worker until ``exit`` (or the dispatcher's pipe closes)."""
    from repro.service.dispatch import LocalDispatcher
    from repro.service.manager import SessionManager

    send_lock = threading.Lock()
    attached: list[Any] = []
    dispatcher: LocalDispatcher | None = None
    init_lock = threading.Lock()

    def _send(message: tuple) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # dispatcher died; we follow
                raise SystemExit(0)

    def _backend() -> LocalDispatcher:
        nonlocal dispatcher
        with init_lock:
            if dispatcher is None:
                ctx, handles = attach_storage(spec)
                attached.extend(handles)
                manager = SessionManager(
                    ctx,
                    max_sessions=config.max_sessions,
                    cap_entry_budget=config.cap_entry_budget,
                    default_limits=config.default_limits,
                    overload=config.overload,
                    checkpoint_capacity=config.checkpoint_capacity,
                    checkpoint_dir=config.checkpoint_dir,
                    checkpoint_on_mutate=config.checkpoint_on_mutate,
                    session_prefix=f"w{index}s",
                )
                dispatcher = LocalDispatcher(manager)
        return dispatcher

    def _handle(seq: int, request: dict[str, Any]) -> None:
        try:
            result = _backend().dispatch(request)
        except Exception as exc:
            _send(("err", seq, _error_verdict(exc)))
            return
        _send(("ok", seq, result))

    def _drain(seq: int, timeout: float | None) -> None:
        try:
            summary = (
                _backend().drain(timeout=timeout)
                if dispatcher is not None
                else {"checkpointed": [], "busy": [], "inflight_at_timeout": 0}
            )
        except Exception as exc:
            _send(("err", seq, _error_verdict(exc)))
            return
        _send(("ok", seq, summary))

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # dispatcher went away
            kind = message[0]
            if kind == "req":
                _, seq, request = message
                threading.Thread(
                    target=_handle,
                    args=(seq, request),
                    name=f"repro-worker{index}-req{seq}",
                    daemon=True,
                ).start()
            elif kind == "drain":
                _, seq, timeout = message
                threading.Thread(
                    target=_drain,
                    args=(seq, timeout),
                    name=f"repro-worker{index}-drain",
                    daemon=True,
                ).start()
            elif kind == "exit":
                _, seq = message
                _send(("ok", seq, {"exited": index}))
                return
    finally:
        for shm in attached:
            try:
                shm.close()  # close our mapping only; publisher unlinks
            except OSError:
                pass
        try:
            conn.close()
        except OSError:
            pass
