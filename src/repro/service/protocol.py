"""JSON-lines wire protocol shared by :mod:`server` and :mod:`client`.

One request per line, one response per line, UTF-8 JSON (no framing
beyond the newline — every payload the service produces is newline-free).
Requests::

    {"id": 7, "op": "action", "session": "s1",
     "action": {"kind": "NewVertex", "vertex_id": 0, "label": "A"}}

Responses echo the request id::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"type": "SessionEvictedError",
                                     "message": "...", "retryable": true}}

Actions on the wire reuse the session-recording dict format
(:mod:`repro.gui.recording`), so a recorded formulation replays over the
network byte-for-byte.

Match sets travel canonicalized (:func:`canonical_matches`): each match
is a sorted ``[query_vertex, data_vertex]`` pair list and the match list
itself is sorted — two runs produced the same ``V_Δ`` iff the encoded
JSON strings are identical.  The determinism tests and the serve
acceptance check compare exactly these bytes.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.actions import Action
from repro.core.blender import ActionReport, RunResult
from repro.core.lowerbound import ResultSubgraph
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    SessionEvictedError,
    SessionNotFoundError,
)
from repro.gui.recording import action_from_dict, action_to_dict

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "canonical_matches",
    "encode_line",
    "decode_request",
    "best_effort_id",
    "decode_response",
    "error_payload",
    "action_payload",
    "report_payload",
    "run_payload",
    "subgraph_payload",
    "wire_action",
]

PROTOCOL_VERSION = 1

#: Every operation the server understands (documented in docs/SERVICE.md).
OPS = (
    "ping",
    "create_session",
    "action",
    "run",
    "results",
    "matches",
    "stats",
    "close_session",
    "shutdown",
)

#: Error types a client may retry (after recreating state if needed);
#: everything else is a caller bug or a terminal server verdict.
_RETRYABLE = (SessionEvictedError, AdmissionError)


def canonical_matches(matches) -> list[list[list[int]]]:
    """``V_Δ`` in canonical wire form: sorted pairs, sorted matches."""
    return sorted(
        [[int(q), int(v)] for q, v in sorted(m.items())] for m in matches
    )


def encode_line(payload: dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line: bytes | str) -> dict[str, Any]:
    """Parse one request line; typed :class:`ProtocolError` on junk."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    return payload


def best_effort_id(line: bytes | str) -> Any:
    """The ``id`` of a request line that failed validation, if any.

    Error responses should still echo the id whenever the line was at
    least well-formed JSON, so pipelining clients can correlate them.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    return payload.get("id") if isinstance(payload, dict) else None


def decode_response(line: bytes | str) -> dict[str, Any]:
    """Parse one response line (client side)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("response must be a JSON object with 'ok'")
    return payload


def wire_action(payload: Any) -> Action:
    """Decode the ``action`` field of an ``action`` request."""
    if not isinstance(payload, dict):
        raise ProtocolError("'action' must be an object in recording format")
    try:
        return action_from_dict(payload)
    except ReproError as exc:
        raise ProtocolError(str(exc)) from exc


def action_payload(action: Action) -> dict[str, Any]:
    """Encode an action for the wire (recording format)."""
    return action_to_dict(action)


def error_payload(exc: BaseException) -> dict[str, Any]:
    """The ``error`` object of a failure response."""
    payload: dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": isinstance(exc, _RETRYABLE),
    }
    if isinstance(exc, DeadlineExceededError):
        payload["deadline_context"] = exc.context
    if isinstance(exc, (SessionNotFoundError, SessionEvictedError)):
        payload["session"] = exc.session_id
    return payload


def report_payload(report: ActionReport) -> dict[str, Any]:
    """Wire form of one :class:`ActionReport`."""
    return {
        "status": report.status,
        "processed_now": report.processed_now,
        "compute_seconds": report.compute_seconds,
        "error": report.error,
    }


def run_payload(result: RunResult, backlog_seconds: float) -> dict[str, Any]:
    """Wire form of a Run outcome (resilience status included)."""
    return {
        "num_matches": result.num_matches,
        "truncated": result.matches.truncated,
        "srt_seconds": backlog_seconds + result.srt_seconds,
        "backlog_seconds": backlog_seconds,
        "enumeration_seconds": result.enumeration_seconds,
        "cap_construction_seconds": result.cap_construction_seconds,
        "cap_size": result.cap_size.total,
        "cap_peak_size": result.cap_peak_size,
        "strategy": result.strategy,
        "degraded": result.degraded,
        "degradation_reason": result.degradation_reason,
        "fallback": result.fallback,
        "cap_repaired_edges": result.cap_repaired_edges,
    }


def subgraph_payload(subgraph: ResultSubgraph) -> dict[str, Any]:
    """Wire form of one validated result subgraph."""
    return {
        "assignment": [[int(q), int(v)] for q, v in sorted(subgraph.assignment.items())],
        "paths": [
            {"edge": [int(u), int(v)], "path": [int(x) for x in path]}
            for (u, v), path in sorted(subgraph.paths.items())
        ],
    }
