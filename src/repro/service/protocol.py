"""JSON-lines wire protocol shared by :mod:`server` and :mod:`client`.

One request per line, one response per line, UTF-8 JSON (no framing
beyond the newline — every payload the service produces is newline-free).

**Protocol v2** (current) puts a versioned envelope on every frame::

    {"v": 2, "req_id": 7, "op": "action", "session": "s1",
     "action": {"kind": "NewVertex", "vertex_id": 0, "label": "A"}}

    {"v": 2, "req_id": 7, "ok": true, "result": {...}}
    {"v": 2, "req_id": 7, "ok": false,
     "error": {"code": "session_evicted", "message": "...",
               "retryable": true, "details": {"type": "SessionEvictedError",
                                              "session": "s1"}}}

Every failure uses that single typed error envelope: a stable ``code``
from :data:`ERROR_CODES` (what programs switch on), a human ``message``,
a ``retryable`` hint, and ``details`` carrying the originating exception
class plus any exception-specific extras.

**Protocol v1** (deprecated, still accepted) is the pre-envelope dialect:
requests carry ``id`` and no ``v``; responses echo ``id`` and errors are
the ad-hoc ``{"type", "message", "retryable", ...}`` shape.  The server
answers each request in the dialect it arrived in, so old clients keep
round-tripping unchanged — see docs/SERVICE.md for the migration notes.

Actions on the wire reuse the session-recording dict format
(:mod:`repro.gui.recording`), so a recorded formulation replays over the
network byte-for-byte.

Match sets travel canonicalized (:func:`canonical_matches`): each match
is a sorted ``[query_vertex, data_vertex]`` pair list and the match list
itself is sorted — two runs produced the same ``V_Δ`` iff the encoded
JSON strings are identical.  The determinism tests and the serve
acceptance check compare exactly these bytes.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.actions import Action
from repro.core.blender import ActionReport, RunResult
from repro.core.lowerbound import ResultSubgraph
from repro.errors import (
    ActionError,
    AdmissionError,
    AnalysisError,
    BasisFormatError,
    CAPCorruptionError,
    CheckpointError,
    DeadlineExceededError,
    DegradedModeError,
    GraphMutationError,
    LatencyConfigError,
    LintUsageError,
    LockOrderViolationError,
    OverloadConfigError,
    ProtocolError,
    QueryFileError,
    RelayedError,
    ReproError,
    RetryExhaustedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    SessionError,
    SessionEvictedError,
    SessionNotFoundError,
    StaleIndexError,
    StorageError,
    WorkerDiedError,
    WorkerPoolError,
)
from repro.gui.recording import action_from_dict, action_to_dict

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "OPS",
    "ERROR_CODES",
    "canonical_matches",
    "encode_line",
    "decode_request",
    "request_version",
    "request_id",
    "best_effort_id",
    "decode_response",
    "ok_response",
    "error_response",
    "error_code",
    "error_payload",
    "action_payload",
    "report_payload",
    "run_payload",
    "subgraph_payload",
    "wire_action",
]

PROTOCOL_VERSION = 2

#: Dialects the server still answers.  v1 is deprecated: it predates the
#: envelope (no ``v``, ``id`` instead of ``req_id``, ad-hoc error shapes).
SUPPORTED_VERSIONS = (1, 2)

#: Every operation the server understands (documented in docs/SERVICE.md).
OPS = (
    "ping",
    "create_session",
    "restore_session",
    "action",
    "run",
    "results",
    "matches",
    "stats",
    "trace",
    "metrics",
    "update",
    "close_session",
    "shutdown",
)

#: Error types a client may retry (after recreating state if needed);
#: everything else is a caller bug or a terminal server verdict.
#: :class:`ServiceOverloadedError` is the backpressure verdict — retry
#: after its ``retry_after_ms`` hint and the shed normally clears.
_RETRYABLE = (
    SessionEvictedError,
    AdmissionError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    WorkerDiedError,
)

#: Stable v2 error codes by exception type — what client programs switch
#: on (exception class names are an implementation detail carried in
#: ``details.type``).  First match wins, so subclasses precede bases.
ERROR_CODES: tuple[tuple[type, str], ...] = (
    (ProtocolError, "bad_request"),
    (SessionNotFoundError, "session_not_found"),
    (SessionEvictedError, "session_evicted"),
    (ServiceOverloadedError, "overloaded"),
    (CheckpointError, "checkpoint_invalid"),
    (WorkerDiedError, "worker_died"),
    (WorkerPoolError, "worker_pool"),
    (AdmissionError, "admission_refused"),
    (DeadlineExceededError, "deadline_exceeded"),
    (DegradedModeError, "degraded_mode"),
    (CAPCorruptionError, "cap_corrupted"),
    (RetryExhaustedError, "retry_exhausted"),
    (GraphMutationError, "graph_mutation_invalid"),
    (StaleIndexError, "stale_index"),
    (ActionError, "bad_action"),
    (LatencyConfigError, "latency_config_invalid"),
    (SessionError, "session_state"),
    (QueryFileError, "query_file_invalid"),
    (OverloadConfigError, "overload_config"),
    (ServiceTimeoutError, "service_timeout"),
    (BasisFormatError, "basis_format_invalid"),
    (StorageError, "storage_error"),
    (LintUsageError, "lint_usage_invalid"),
    (LockOrderViolationError, "lock_order_inversion"),
    (AnalysisError, "analysis_error"),
    (ReproError, "engine_error"),
)


def error_code(exc: BaseException) -> str:
    """The stable v2 ``code`` for an exception (``internal_error`` fallback).

    A :class:`~repro.errors.RelayedError` — a worker-side failure
    rehydrated by the pool dispatcher — passes its original code through
    unchanged, so clients see identical codes with ``--workers 0`` and
    ``--workers N``.
    """
    if isinstance(exc, RelayedError):
        return exc.code
    for cls, code in ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return "internal_error"


def error_retryable(exc: BaseException) -> bool:
    """Whether a client may retry after this failure.

    A :class:`~repro.errors.RelayedError` carries the worker-side
    verdict through verbatim — an ``overloaded`` shed must read
    retryable with ``--workers N`` exactly as it does with
    ``--workers 0``.
    """
    if isinstance(exc, RelayedError):
        return bool(exc.retryable)
    return isinstance(exc, _RETRYABLE)


def canonical_matches(matches) -> list[list[list[int]]]:
    """``V_Δ`` in canonical wire form: sorted pairs, sorted matches."""
    return sorted(
        [[int(q), int(v)] for q, v in sorted(m.items())] for m in matches
    )


def encode_line(payload: dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line: bytes | str) -> dict[str, Any]:
    """Parse one request line; typed :class:`ProtocolError` on junk.

    Negotiation happens here: a frame without ``v`` is a deprecated v1
    request; ``v`` must otherwise name a supported dialect.  The raw
    payload is returned — read the dialect back with
    :func:`request_version` and the correlation id with
    :func:`request_id`.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    version = payload.get("v", 1)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    return payload


def request_version(request: dict[str, Any]) -> int:
    """The dialect a decoded request arrived in (absent ``v`` = 1)."""
    version = request.get("v", 1)
    return version if version in SUPPORTED_VERSIONS else 1


def request_id(request: dict[str, Any]) -> Any:
    """The correlation id of a decoded request (``req_id`` or legacy ``id``)."""
    if "req_id" in request:
        return request["req_id"]
    return request.get("id")


def best_effort_id(line: bytes | str) -> tuple[Any, int]:
    """``(correlation id, version)`` of a request line that failed validation.

    Error responses should still echo the id (in the right dialect)
    whenever the line was at least well-formed JSON, so pipelining
    clients can correlate them.  Anything that did not explicitly claim
    a v2+ envelope — junk included — is answered in the legacy v1 shape,
    which every client understands.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None, 1
    if not isinstance(payload, dict):
        return None, 1
    version = payload.get("v", 1)
    if not isinstance(version, int) or version not in SUPPORTED_VERSIONS:
        version = PROTOCOL_VERSION if isinstance(version, int) and version >= 2 else 1
    return request_id(payload), version


def ok_response(version: int, req_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    """A success frame in the dialect the request arrived in."""
    if version >= 2:
        return {"v": version, "req_id": req_id, "ok": True, "result": result}
    return {"id": req_id, "ok": True, "result": result}


def error_response(version: int, req_id: Any, exc: BaseException) -> dict[str, Any]:
    """A failure frame in the dialect the request arrived in.

    v2 uses the typed envelope (``code``/``message``/``retryable`` +
    ``details``); v1 keeps its exact legacy error shape.
    """
    if version >= 2:
        legacy = error_payload(exc)
        details = {"type": legacy.pop("type")}
        legacy.pop("message", None)
        legacy.pop("retryable", None)
        details.update(legacy)  # exception-specific extras
        return {
            "v": version,
            "req_id": req_id,
            "ok": False,
            "error": {
                "code": error_code(exc),
                "message": str(exc),
                "retryable": error_retryable(exc),
                "details": details,
            },
        }
    return {"id": req_id, "ok": False, "error": error_payload(exc)}


def decode_response(line: bytes | str) -> dict[str, Any]:
    """Parse one response line (client side)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("response must be a JSON object with 'ok'")
    return payload


def wire_action(payload: Any) -> Action:
    """Decode the ``action`` field of an ``action`` request."""
    if not isinstance(payload, dict):
        raise ProtocolError("'action' must be an object in recording format")
    try:
        return action_from_dict(payload)
    except ReproError as exc:
        raise ProtocolError(str(exc)) from exc


def action_payload(action: Action) -> dict[str, Any]:
    """Encode an action for the wire (recording format)."""
    return action_to_dict(action)


def error_payload(exc: BaseException) -> dict[str, Any]:
    """The ``error`` object of a failure response."""
    if isinstance(exc, RelayedError):
        # Worker-side failure: re-emit the exact payload the worker
        # built, bit-compatible with the in-process path.
        return dict(exc.payload)
    payload: dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": error_retryable(exc),
    }
    if isinstance(exc, WorkerDiedError):
        payload["worker"] = exc.worker
    if isinstance(exc, DeadlineExceededError):
        payload["deadline_context"] = exc.context
    if isinstance(exc, (SessionNotFoundError, SessionEvictedError)):
        payload["session"] = exc.session_id
    if isinstance(exc, SessionEvictedError):
        # Restore-by-id is possible while the checkpoint survives; after
        # that the client falls back to recreate-and-replay.
        payload["restorable"] = bool(getattr(exc, "restorable", False))
    if isinstance(exc, ServiceOverloadedError):
        payload["retry_after_ms"] = exc.retry_after_ms
        payload["reason"] = exc.reason
    return payload


def report_payload(report: ActionReport) -> dict[str, Any]:
    """Wire form of one :class:`ActionReport`."""
    return {
        "status": report.status,
        "processed_now": report.processed_now,
        "compute_seconds": report.compute_seconds,
        "error": report.error,
    }


def run_payload(result: RunResult, backlog_seconds: float) -> dict[str, Any]:
    """Wire form of a Run outcome (resilience status included)."""
    return {
        "num_matches": result.num_matches,
        "truncated": result.matches.truncated,
        "srt_seconds": backlog_seconds + result.srt_seconds,
        "backlog_seconds": backlog_seconds,
        "enumeration_seconds": result.enumeration_seconds,
        "cap_construction_seconds": result.cap_construction_seconds,
        "cap_size": result.cap_size.total,
        "cap_peak_size": result.cap_peak_size,
        "strategy": result.strategy,
        "degraded": result.degraded,
        "degradation_reason": result.degradation_reason,
        "fallback": result.fallback,
        "cap_repaired_edges": result.cap_repaired_edges,
    }


def subgraph_payload(subgraph: ResultSubgraph) -> dict[str, Any]:
    """Wire form of one validated result subgraph."""
    return {
        "assignment": [[int(q), int(v)] for q, v in sorted(subgraph.assignment.items())],
        "paths": [
            {"edge": [int(u), int(v)], "path": [int(x) for x in path]}
            for (u, v), path in sorted(subgraph.paths.items())
        ],
    }
