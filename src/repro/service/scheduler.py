"""Cooperative cross-session Defer-to-Idle scheduling.

In the single-user system, Defer-to-Idle spends a session's leftover GUI
latency probing *its own* edge pool (Algorithm 10).  With many hosted
sessions that is wasteful: one user's engine sits idle inside a latency
window while another user's cheap edges wait in a pool.  The
:class:`IdleScheduler` generalizes the probe — every idle window is
*donated* to the scheduler, which spends it on pending CAP work across
all sessions:

1. the donor's own pool is probed first (preserving exact single-session
   DI behavior when the service hosts one session);
2. the remainder goes to other sessions' pools, cheapest-edge-fits-first
   among the sessions with the least service received so far (fair share,
   so a chatty session cannot starve a quiet one), one edge per pick so
   priorities are re-evaluated as candidate sets shrink.

Only *timing* moves between sessions — never correctness: by deferral
neutrality (ARCHITECTURE.md invariant 3), the CAP fixpoint and therefore
``V_Δ`` are independent of where and when pooled edges get processed.

Sessions being operated on by another thread are skipped via a
non-blocking lock probe, so donation never deadlocks with a concurrent
request on the beneficiary.

Restored sessions (:mod:`repro.service.checkpoint`) re-register here on
re-admission: their checkpoints carry no CAP entries, so the scheduler
is what rebuilds their deferred work *warm*, inside whatever idle
windows the traffic donates next — deferral neutrality again guarantees
the rebuilt fixpoint, and hence ``V_Δ``, is the one the session would
have reached uninterrupted.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.obs.clock import now
from repro.obs.metrics import metrics
from repro.utils.timing import TimeBudget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import ManagedSession

__all__ = ["IdleScheduler"]

#: Safety margin on a cost estimate before it is believed to fit the
#: remaining window (estimates are optimistic; the budget still hard-stops
#: overdraw at the next probe iteration).
_FIT_MARGIN = 1.0


class IdleScheduler:
    """Fair-share multiplexer of donated idle time over session pools."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, "ManagedSession"] = {}
        self.donations = 0
        self.donated_seconds = 0.0
        self.cross_session_seconds = 0.0
        self.cross_session_edges = 0

    # -- registry --------------------------------------------------------
    def register(self, session: "ManagedSession") -> None:
        """Make ``session`` eligible to receive donated idle time."""
        with self._lock:
            self._sessions[session.id] = session

    def unregister(self, session_id: str) -> None:
        """Remove a closed/evicted session from scheduling."""
        with self._lock:
            self._sessions.pop(session_id, None)

    # -- the donation path ----------------------------------------------
    def donate(self, donor: "ManagedSession", idle_seconds: float) -> float:
        """Spend ``donor``'s idle window across all pools; returns the
        compute seconds spent on the *donor's own* engine.

        Only the donor-local share is returned because only it advances
        the donor's virtual ``busy_until``; cross-session work happens on
        other engines and is accounted on the beneficiaries
        (``serviced_seconds``/``serviced_edges``).
        """
        if idle_seconds <= 0.0:
            return 0.0
        with self._lock:
            self.donations += 1
            self.donated_seconds += idle_seconds
        donor.donated_idle_seconds += idle_seconds
        metrics.counter(
            "repro_idle_donated_seconds_total",
            "GUI-latency idle seconds donated to the scheduler",
        ).inc(idle_seconds)

        budget = TimeBudget(idle_seconds)
        # 1. Donor first: identical to plain DI when alone (caller already
        #    holds the donor's lock).
        own_spent = donor.boomer.probe_idle(idle_seconds)

        # 2. Remainder to the least-serviced sessions, one edge per pick.
        skip = {donor.id}
        while not budget.exhausted:
            target = self._pick(budget.remaining(), skip=skip)
            if target is None:
                break
            if not target.lock.acquire(blocking=False):
                # Busy serving its own request; it needs no charity now.
                skip.add(target.id)
                continue
            try:
                start = now()
                processed = target.boomer.engine.probe_one(budget.remaining())
                spent = now() - start
                if processed == 0:
                    # Its cheapest edge no longer fits this window; another
                    # session's might, so only this target is retired.
                    skip.add(target.id)
                    continue
                target.serviced_seconds += spent
                target.serviced_edges += processed
                with self._lock:
                    self.cross_session_seconds += spent
                    self.cross_session_edges += processed
                metrics.counter(
                    "repro_idle_cross_session_edges_total",
                    "pooled edges processed with another session's idle time",
                ).inc(processed)
            finally:
                target.lock.release()
        return own_spent

    def _edge_cost(self, session: "ManagedSession") -> float:
        engine = session.boomer.engine
        cost = engine.pool.cheapest_cost(engine.cap, engine.cost_model)
        return cost if cost is not None else 0.0

    def _pick(
        self, remaining: float, skip: set[str]
    ) -> "ManagedSession | None":
        """Least-serviced session whose cheapest pooled edge fits."""
        with self._lock:
            candidates = [
                s
                for s in self._sessions.values()
                if s.id not in skip and s.state == "formulating"
            ]
        best: "ManagedSession | None" = None
        best_key: tuple[float, int, str] | None = None
        for session in candidates:
            engine = session.boomer.engine
            if not engine.pool:
                continue
            cost = self._edge_cost(session)
            if cost > remaining * _FIT_MARGIN:
                continue
            # Fairness first, then cheapest work, then stable id order so
            # scheduling (and hence stats) is deterministic under tests.
            key = (session.serviced_seconds, session.serviced_edges, session.id)
            if best_key is None or key < best_key:
                best, best_key = session, key
        return best

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Scheduler-level counters for the wire ``stats`` op."""
        with self._lock:
            return {
                "registered_sessions": len(self._sessions),
                "donations": self.donations,
                "donated_seconds": self.donated_seconds,
                "cross_session_seconds": self.cross_session_seconds,
                "cross_session_edges": self.cross_session_edges,
            }
