"""JSON-lines-over-TCP front end for the :class:`SessionManager`.

A deliberately thin layer: sockets and framing only — every decision
(admission, scheduling, eviction, resilience) lives in the manager so it
is testable without a socket in sight.  One OS thread per connection
(:class:`socketserver.ThreadingTCPServer`); concurrency across sessions
comes from the manager's per-session locking, so two clients formulating
different queries genuinely overlap on the shared oracle.

Start one with ``python -m repro serve`` (see :mod:`repro.cli`) or embed
it::

    server = QueryServer(manager, host="127.0.0.1", port=0)
    server.start()                   # background thread
    ... ServiceClient(*server.address) ...
    server.stop()

The ``shutdown`` op stops the whole server after acknowledging — that is
what gives scripted drivers (CI smoke job, benchmarks) a clean,
assertable exit.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any

from repro.obs import clock
from repro.obs.metrics import metrics
from repro.service import protocol
from repro.service.dispatch import LocalDispatcher
from repro.service.manager import SessionManager

__all__ = ["QueryServer"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "_TCPServer"

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed the connection
            if not line.strip():
                continue
            response = self.server.query_server.handle_line(line)
            try:
                self.wfile.write(protocol.encode_line(response))
                self.wfile.flush()
            except (ConnectionError, OSError):
                return
            if response.pop("_close", False):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    query_server: "QueryServer"


class QueryServer:
    """The ``repro serve`` engine: a manager behind a line protocol."""

    def __init__(
        self,
        manager: SessionManager | Any,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float | None = 5.0,
    ) -> None:
        if isinstance(manager, SessionManager):
            #: The in-process path: today's threaded manager, verbatim.
            self.backend = LocalDispatcher(manager)
            self.manager: SessionManager | None = manager
        else:
            # Any backend implementing the dispatch/drain/close seam
            # (repro.service.dispatch) — notably the worker pool.
            self.backend = manager
            self.manager = getattr(manager, "manager", None)
        #: How long :meth:`stop` waits for in-flight requests to retire
        #: before checkpointing idle sessions (None = wait forever).
        self.drain_timeout = drain_timeout
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.query_server = self
        self._thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()
        #: Guards the serve/stop handshake: ``_serving`` is only read or
        #: written under it, which closes the startup race where stop()
        #: would call ``_tcp.shutdown()`` before ``serve_forever`` ever
        #: ran (socketserver's shutdown handshake waits on an event only
        #: the serve loop sets — calling it on a never-started server
        #: blocks forever).
        self._lifecycle = threading.Lock()
        self._serving = False
        #: Serializes concurrent stop() calls (second becomes a no-op).
        self._stop_lock = threading.Lock()
        self._stopped = False
        self._drain_summary: dict[str, object] | None = None

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` or a ``shutdown`` op."""
        with self._lifecycle:
            if self._shutdown_requested.is_set():
                # stop() won the race: never enter the accept loop.
                self._tcp.server_close()
                return
            self._serving = True
        try:
            self._tcp.serve_forever(poll_interval=0.05)
        finally:
            self._tcp.server_close()

    def start(self) -> "QueryServer":
        """Serve on a daemon thread (embedding / tests); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> dict[str, object] | None:
        """Stop the server (idempotent; safe to race ``serve_forever``).

        With ``drain=True`` (default) the first stop() runs the graceful
        sequence before the accept loop unwinds: the manager refuses new
        mutating work (typed retryable ``draining`` sheds), in-flight
        requests retire at their own pace — a long Run still hits its
        cooperative :class:`~repro.resilience.Deadline` checkpoint —
        bounded by :attr:`drain_timeout`, and every idle session is
        checkpointed for restore-by-id instead of dropped.  Returns the
        drain summary on the stop() that performed it, else None.

        Subsequent stop() calls (including stop() after the wire
        ``shutdown`` op already unwound the loop, or stop() on a server
        whose ``serve_forever`` never started) are safe no-ops.
        """
        with self._stop_lock:
            first = not self._stopped
            self._stopped = True
            self._shutdown_requested.set()
            if first:
                if drain:
                    self._drain_summary = self.backend.drain(
                        timeout=self.drain_timeout
                    )
                self.backend.close()
            summary = self._drain_summary if first else None
            with self._lifecycle:
                if self._serving:
                    # Safe even if the accept loop is not in its while
                    # body yet: socketserver latches the shutdown request
                    # and the loop exits on entry.
                    self._tcp.shutdown()
                else:
                    self._tcp.server_close()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
            self._thread = None
        return summary

    @property
    def shutdown_requested(self) -> bool:
        """True once a client sent the ``shutdown`` op (or stop() ran)."""
        return self._shutdown_requested.is_set()

    # -- dispatch --------------------------------------------------------
    def handle_line(self, line: bytes) -> dict[str, Any]:
        """Decode one request line and produce the response payload.

        The response speaks whatever protocol dialect the request arrived
        in (v2 envelope, or the deprecated v1 shapes), and every request —
        success or failure — lands in the per-verb service latency
        histogram ``repro_service_request_seconds``.
        """
        started = clock.now()
        op = "invalid"
        request: dict[str, Any] | None = None
        try:
            request = protocol.decode_request(line)
            op = request["op"]
            version = protocol.request_version(request)
            req_id = protocol.request_id(request)
            result = self.backend.dispatch(request)
        except Exception as exc:
            # ReproError: typed service verdicts. Anything else: an engine
            # bug — still reported, the server stays up.
            if request is None:
                req_id, version = protocol.best_effort_id(line)
            self._observe(op, started, ok=False)
            return protocol.error_response(version, req_id, exc)
        self._observe(op, started, ok=True)
        response = protocol.ok_response(version, req_id, result)
        if op == "shutdown":
            response["_close"] = True
            # Ack first, then run the full graceful stop (drain +
            # checkpoint + accept-loop unwind) from another thread —
            # serve_forever cannot be stopped from a handler thread it
            # itself is blocking, and the requester deserves its ack
            # before admission closes.
            self._shutdown_requested.set()
            threading.Thread(target=self.stop, daemon=True).start()
        return response

    @staticmethod
    def _observe(op: str, started: float, ok: bool) -> None:
        metrics.counter(
            "repro_service_requests_total",
            "wire requests by verb and outcome",
            op=op,
            ok=str(ok).lower(),
        ).inc()
        metrics.histogram(
            "repro_service_request_seconds",
            "service-side latency per wire verb",
            op=op,
        ).observe(clock.now() - started)
